//! The one dispatch point for [`OracleKind`]: [`ConfiguredOracle`] resolves
//! the estimator knob of a `DysimConfig` to a concrete
//! [`SpreadOracle`]/[`RefreshableOracle`] implementation.
//!
//! `imdpp-core` owns the drivers but cannot construct the RR sketch without
//! a dependency cycle, so the knob is honoured *here* and consumed by the
//! `imdpp-engine` `Engine`:
//!
//! * [`OracleKind::MonteCarlo`] — the owned forward Monte-Carlo oracle
//!   ([`MonteCarloOracle`]), the paper's reference estimator,
//! * [`OracleKind::RrSketch`] — a [`SketchOracle`] with a fixed pool per
//!   item, built once and *refreshed* through the sample-reuse paths when
//!   the world drifts.
//!
//! # Example
//!
//! ```
//! use imdpp_core::{OracleKind, SpreadOracle};
//! use imdpp_diffusion::scenario::toy_scenario;
//! use imdpp_graph::{ItemId, UserId};
//! use imdpp_sketch::dispatch::ConfiguredOracle;
//!
//! let scenario = toy_scenario();
//! let mc = ConfiguredOracle::build(&scenario, OracleKind::MonteCarlo, 8, 7);
//! let sk = ConfiguredOracle::build(
//!     &scenario,
//!     OracleKind::RrSketch { sets_per_item: 512, shards: 2, threads: 0 },
//!     8,
//!     7,
//! );
//! let nominees = [(UserId(0), ItemId(0))];
//! assert!(mc.static_spread(&nominees) >= 1.0);
//! assert!(sk.static_spread(&nominees) >= 1.0);
//! ```

use crate::{SketchConfig, SketchOracle};
use imdpp_core::nominees::Nominee;
use imdpp_core::oracle::{OracleKind, RefreshStats, RefreshableOracle, ScenarioUpdate};
use imdpp_core::{MonteCarloOracle, SpreadOracle};
use imdpp_diffusion::Scenario;
use imdpp_obs::Telemetry;

/// The sketch configuration an [`OracleKind::RrSketch`] knob resolves to: a
/// fixed pool (adaptive growth disabled so refreshes stay bit-identical to
/// rebuilds) seeded from the run's base seed, partitioned across `shards`
/// shards per item (`0` is clamped to `1`, the flat store) and built /
/// refreshed by `threads` workers (`0` = auto; see
/// [`SketchConfig::threads`] — results are thread-count-independent).
pub fn sketch_config_for(
    base_seed: u64,
    sets_per_item: usize,
    shards: usize,
    threads: usize,
) -> SketchConfig {
    SketchConfig::fixed(sets_per_item)
        .with_base_seed(base_seed)
        .with_shards(shards.max(1))
        .with_threads(threads)
}

/// A concrete estimator resolved from an [`OracleKind`] knob.
///
/// Both variants implement [`SpreadOracle`] and [`RefreshableOracle`], so a
/// `ConfiguredOracle` can drive nominee selection, the adaptive loop, and
/// the engine's incremental refresh regardless of which estimator the
/// configuration picked.
#[derive(Clone, Debug)]
pub enum ConfiguredOracle {
    /// The owned forward Monte-Carlo estimator.
    MonteCarlo(MonteCarloOracle),
    /// The RR-sketch estimator with a fixed per-item pool.
    RrSketch(SketchOracle),
}

impl ConfiguredOracle {
    /// Resolves `kind` against `scenario`.
    ///
    /// `mc_samples` and `base_seed` come from the run's `DysimConfig`
    /// (`mc_samples` only matters for the Monte-Carlo variant; `base_seed`
    /// seeds both estimators so runs stay deterministic).
    ///
    /// # Panics
    /// With [`OracleKind::RrSketch`] on a Linear Threshold scenario: the RR
    /// sketch encodes the Independent Cascade triggering distribution (see
    /// [`SketchOracle::build`]).  The `imdpp-engine` builder rejects that
    /// combination with a typed error before reaching this point.
    pub fn build(scenario: &Scenario, kind: OracleKind, mc_samples: usize, base_seed: u64) -> Self {
        Self::build_with_telemetry(
            scenario,
            kind,
            mc_samples,
            base_seed,
            &Telemetry::disabled(),
        )
    }

    /// [`ConfiguredOracle::build`] recording into `telemetry` (the engine's
    /// path).  The Monte-Carlo variant carries no sketch-side metrics; the
    /// RR-sketch variant resolves its [`crate::SketchMetrics`] against the
    /// registry so shard workers and refreshes are observable.  Either way
    /// the resolved oracle is bit-identical to the unmetered one.
    ///
    /// # Panics
    /// Same contract as [`ConfiguredOracle::build`].
    pub fn build_with_telemetry(
        scenario: &Scenario,
        kind: OracleKind,
        mc_samples: usize,
        base_seed: u64,
        telemetry: &Telemetry,
    ) -> Self {
        match kind {
            OracleKind::MonteCarlo => {
                ConfiguredOracle::MonteCarlo(MonteCarloOracle::new(scenario, mc_samples, base_seed))
            }
            OracleKind::RrSketch {
                sets_per_item,
                shards,
                threads,
            } => ConfiguredOracle::RrSketch(SketchOracle::build_with_telemetry(
                scenario,
                sketch_config_for(base_seed, sets_per_item, shards, threads),
                telemetry,
            )),
        }
    }

    /// The knob this oracle was resolved from.
    pub fn kind(&self) -> OracleKind {
        match self {
            ConfiguredOracle::MonteCarlo(_) => OracleKind::MonteCarlo,
            ConfiguredOracle::RrSketch(s) => OracleKind::RrSketch {
                sets_per_item: s.config().initial_sets,
                shards: s.shard_count(),
                threads: s.config().threads,
            },
        }
    }

    /// The underlying sketch, when the RR-sketch variant was selected.
    pub fn as_sketch(&self) -> Option<&SketchOracle> {
        match self {
            ConfiguredOracle::RrSketch(s) => Some(s),
            ConfiguredOracle::MonteCarlo(_) => None,
        }
    }

    /// The frozen scenario the estimator currently targets.
    pub fn scenario(&self) -> &Scenario {
        match self {
            ConfiguredOracle::MonteCarlo(o) => o.scenario(),
            ConfiguredOracle::RrSketch(o) => o.scenario(),
        }
    }

    /// Answers many static-spread queries against this oracle's frozen
    /// scenario: the RR-sketch variant amortizes arena decoding across the
    /// batch ([`SketchOracle::static_spread_batch`]); the Monte-Carlo
    /// variant has no shared pass to amortize, so it loops.  Either way
    /// `results[q]` is bit-identical to `self.static_spread(queries[q])`.
    pub fn static_spread_batch(&self, queries: &[&[Nominee]]) -> Vec<f64> {
        match self {
            ConfiguredOracle::MonteCarlo(o) => queries.iter().map(|q| o.static_spread(q)).collect(),
            ConfiguredOracle::RrSketch(o) => o.static_spread_batch(queries),
        }
    }

    /// [`RefreshableOracle::refresh`] that additionally reports the per-item
    /// touched users of a sketch-backed refresh
    /// ([`SketchOracle::refresh_tracked`]) — the input of the engine's
    /// maintained-solution repair.  The Monte-Carlo variant has no notion of
    /// touched coverage (every estimate is recomputed from scratch), so it
    /// refreshes normally and returns `None`.
    pub fn refresh_tracked(
        &mut self,
        updated: &Scenario,
        update: &ScenarioUpdate,
    ) -> (RefreshStats, Option<Vec<Vec<imdpp_graph::UserId>>>) {
        match self {
            ConfiguredOracle::MonteCarlo(o) => (o.refresh(updated, update), None),
            ConfiguredOracle::RrSketch(o) => {
                let (stats, touched) = o.refresh_tracked(updated, update);
                (stats, Some(touched))
            }
        }
    }
}

impl SpreadOracle for ConfiguredOracle {
    fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        match self {
            ConfiguredOracle::MonteCarlo(o) => o.static_spread(nominees),
            ConfiguredOracle::RrSketch(o) => o.static_spread(nominees),
        }
    }

    fn marginal_gain(&self, base: &[Nominee], candidate: Nominee) -> f64 {
        match self {
            ConfiguredOracle::MonteCarlo(o) => o.marginal_gain(base, candidate),
            ConfiguredOracle::RrSketch(o) => o.marginal_gain(base, candidate),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ConfiguredOracle::MonteCarlo(o) => o.name(),
            ConfiguredOracle::RrSketch(o) => o.name(),
        }
    }
}

impl RefreshableOracle for ConfiguredOracle {
    fn refresh(&mut self, updated: &Scenario, update: &ScenarioUpdate) -> RefreshStats {
        match self {
            ConfiguredOracle::MonteCarlo(o) => o.refresh(updated, update),
            ConfiguredOracle::RrSketch(o) => o.refresh(updated, update),
        }
    }

    fn begin_round(&mut self, round: u32) {
        match self {
            ConfiguredOracle::MonteCarlo(o) => o.begin_round(round),
            ConfiguredOracle::RrSketch(o) => o.begin_round(round),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::{ItemId, UserId};

    #[test]
    fn dispatch_resolves_both_kinds() {
        let s = toy_scenario();
        let mc = ConfiguredOracle::build(&s, OracleKind::MonteCarlo, 8, 13);
        assert_eq!(mc.kind(), OracleKind::MonteCarlo);
        assert_eq!(mc.name(), "monte-carlo");
        assert!(mc.as_sketch().is_none());

        let sk = ConfiguredOracle::build(
            &s,
            OracleKind::RrSketch {
                sets_per_item: 128,
                shards: 1,
                threads: 0,
            },
            8,
            13,
        );
        assert_eq!(
            sk.kind(),
            OracleKind::RrSketch {
                sets_per_item: 128,
                shards: 1,
                threads: 0,
            }
        );
        assert_eq!(sk.name(), "rr-sketch");
        assert!(sk.as_sketch().is_some());

        // The shards knob survives the round-trip (0 clamps to 1).
        let sharded = ConfiguredOracle::build(
            &s,
            OracleKind::RrSketch {
                sets_per_item: 128,
                shards: 4,
                threads: 0,
            },
            8,
            13,
        );
        assert_eq!(
            sharded.kind(),
            OracleKind::RrSketch {
                sets_per_item: 128,
                shards: 4,
                threads: 0,
            }
        );
        let clamped = ConfiguredOracle::build(
            &s,
            OracleKind::RrSketch {
                sets_per_item: 64,
                shards: 0,
                threads: 0,
            },
            8,
            13,
        );
        assert_eq!(
            clamped.kind(),
            OracleKind::RrSketch {
                sets_per_item: 64,
                shards: 1,
                threads: 0,
            }
        );
    }

    #[test]
    fn dispatch_matches_the_direct_constructions() {
        let s = toy_scenario();
        let nominees = [(UserId(0), ItemId(0)), (UserId(2), ItemId(1))];

        let mc = ConfiguredOracle::build(&s, OracleKind::MonteCarlo, 8, 13);
        let direct_mc = MonteCarloOracle::new(&s, 8, 13);
        assert_eq!(
            mc.static_spread(&nominees),
            direct_mc.static_spread(&nominees)
        );

        let sk = ConfiguredOracle::build(
            &s,
            OracleKind::RrSketch {
                sets_per_item: 256,
                shards: 2,
                threads: 0,
            },
            8,
            13,
        );
        let direct_sk = SketchOracle::build(&s, sketch_config_for(13, 256, 2, 0));
        assert_eq!(
            sk.static_spread(&nominees),
            direct_sk.static_spread(&nominees)
        );
        assert_eq!(
            sk.marginal_gain(&nominees[..1], nominees[1]),
            direct_sk.marginal_gain(&nominees[..1], nominees[1])
        );
    }

    #[test]
    fn batched_dispatch_matches_per_query_calls_for_both_kinds() {
        let s = toy_scenario();
        let owned: Vec<Vec<(UserId, ItemId)>> = vec![
            vec![(UserId(0), ItemId(0))],
            vec![(UserId(2), ItemId(1)), (UserId(1), ItemId(2))],
            vec![],
        ];
        let queries: Vec<&[(UserId, ItemId)]> = owned.iter().map(|q| q.as_slice()).collect();
        for kind in [
            OracleKind::MonteCarlo,
            OracleKind::RrSketch {
                sets_per_item: 128,
                shards: 2,
                threads: 0,
            },
        ] {
            let oracle = ConfiguredOracle::build(&s, kind, 8, 13);
            let batched = oracle.static_spread_batch(&queries);
            for (q, nominees) in queries.iter().enumerate() {
                assert_eq!(
                    batched[q].to_bits(),
                    oracle.static_spread(nominees).to_bits(),
                    "{kind:?}, query {q}"
                );
            }
        }
    }

    #[test]
    fn refresh_dispatches_to_the_inner_oracle() {
        let s = toy_scenario();
        let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        let drifted = update.apply(&s);

        let mut mc = ConfiguredOracle::build(&s, OracleKind::MonteCarlo, 8, 13);
        assert_eq!(mc.refresh(&drifted, &update).resampled_fraction(), 1.0);

        let mut sk = ConfiguredOracle::build(
            &s,
            OracleKind::RrSketch {
                sets_per_item: 128,
                shards: 1,
                threads: 0,
            },
            8,
            13,
        );
        let stats = sk.refresh(&drifted, &update);
        assert!((0.0..1.0).contains(&stats.resampled_fraction()));
        assert_eq!(stats.full_rebuilds, 0);
        assert_eq!(sk.scenario().base_preference(UserId(1), ItemId(2)), 0.9);
    }
}
