//! Delta/varint codec of the compressed RR-set arena.
//!
//! Every RR set is stored as a **sorted** member list, delta-encoded with a
//! byte-aligned LEB128 varint: the first member verbatim, then each gap to
//! the previous member *minus one* (members are strictly increasing, so the
//! gap is always ≥ 1 and the subtraction buys one extra bit of range per
//! byte).  The codec is the reason a 10⁶-user sketch fits in RAM: members of
//! large RR sets sit close together once sorted, so most gaps encode in one
//! or two bytes instead of the four a raw `u32` pool spends per entry (the
//! scale smoke gates the measured ratio at ≥ 2×).
//!
//! Encoding never changes *what* a set is — only how it is laid out.  All
//! store semantics (coverage counting, inverted-index maintenance, greedy
//! selection, refresh frontiers) are order-independent over the member
//! *multiset*, so sorting at insertion is invisible to every consumer;
//! [`SetMembers`] decodes a span back into its ascending member sequence
//! without allocating.

/// Appends one LEB128 varint to `out`.
#[inline]
pub(crate) fn write_varint(mut value: u32, out: &mut Vec<u8>) {
    while value >= 0x80 {
        out.push((value as u8 & 0x7F) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Decodes one LEB128 varint from the front of `bytes`, returning the value
/// and the remaining tail.  The encoder only ever produces well-formed
/// varints, so decoding stops after at most five bytes.
#[inline]
pub(crate) fn read_varint(bytes: &[u8]) -> (u32, &[u8]) {
    let mut value = 0u32;
    let mut shift = 0u32;
    let mut i = 0usize;
    loop {
        let b = bytes[i];
        value |= u32::from(b & 0x7F) << shift;
        i += 1;
        if b < 0x80 {
            return (value, &bytes[i..]);
        }
        shift += 7;
    }
}

/// Appends the delta/varint encoding of a **sorted, duplicate-free** member
/// list to `out`, returning the number of bytes written.
pub(crate) fn encode_set(sorted: &[u32], out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let mut prev = 0u32;
    for (i, &u) in sorted.iter().enumerate() {
        if i == 0 {
            write_varint(u, out);
        } else {
            debug_assert!(u > prev, "members must be strictly increasing");
            write_varint(u - prev - 1, out);
        }
        prev = u;
    }
    out.len() - before
}

/// Zero-allocation decoding iterator over one encoded span: yields the
/// member ids in ascending order.
#[derive(Clone, Debug)]
pub struct SetMembers<'a> {
    bytes: &'a [u8],
    prev: u32,
    remaining: u32,
    first: bool,
}

impl<'a> SetMembers<'a> {
    /// Starts decoding a span of `members` ids from `bytes`.
    pub(crate) fn new(bytes: &'a [u8], members: u32) -> Self {
        SetMembers {
            bytes,
            prev: 0,
            remaining: members,
            first: true,
        }
    }
}

impl Iterator for SetMembers<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        let (delta, rest) = read_varint(self.bytes);
        self.bytes = rest;
        let value = if self.first {
            self.first = false;
            delta
        } else {
            self.prev + delta + 1
        };
        self.prev = value;
        self.remaining -= 1;
        Some(value)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for SetMembers<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(members: &[u32]) -> Vec<u32> {
        let mut buf = Vec::new();
        let bytes = encode_set(members, &mut buf);
        assert_eq!(bytes, buf.len());
        SetMembers::new(&buf, members.len() as u32).collect()
    }

    #[test]
    fn round_trips_representative_sets() {
        for set in [
            &[][..],
            &[0],
            &[7],
            &[u32::MAX],
            &[0, 1, 2, 3],
            &[5, 1000, 65_536, 999_999],
            &[0, u32::MAX - 1, u32::MAX],
        ] {
            assert_eq!(round_trip(set), set, "{set:?}");
        }
    }

    #[test]
    fn dense_gaps_encode_in_one_byte_each() {
        // Consecutive ids: first member + (n - 1) zero gaps, one byte each.
        let members: Vec<u32> = (1000..1256).collect();
        let mut buf = Vec::new();
        encode_set(&members, &mut buf);
        assert_eq!(buf.len(), 2 + (members.len() - 1));
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for v in [0u32, 127, 128, 16_383, 16_384, 2_097_151, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let (decoded, rest) = read_varint(&buf);
            assert_eq!(decoded, v);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut buf = Vec::new();
        encode_set(&[3, 9, 12], &mut buf);
        let iter = SetMembers::new(&buf, 3);
        assert_eq!(iter.len(), 3);
        assert_eq!(iter.size_hint(), (3, Some(3)));
    }
}
