//! Config-driven Dysim entry points: the dispatch layer that lets
//! [`DysimConfig::oracle`](imdpp_core::DysimConfig) select the estimator
//! behind nominee selection for the full pipeline (Algorithm 1) and its
//! adaptive variant (Sec. V-D).
//!
//! `imdpp-core` owns the drivers but cannot construct the RR sketch without
//! a dependency cycle, so the [`OracleKind`] knob is honoured *here*:
//!
//! * [`OracleKind::MonteCarlo`] — forward Monte-Carlo, the paper's
//!   reference ([`imdpp_core::Dysim::run_with_report`] /
//!   [`imdpp_core::MonteCarloOracle`]),
//! * [`OracleKind::RrSketch`] — a [`SketchOracle`] with a fixed pool per
//!   item, built once per run and (in the adaptive loop) *refreshed*
//!   between rounds through the sample-reuse paths instead of rebuilt.
//!
//! # Example: one config knob flips the estimator
//!
//! ```
//! use imdpp_core::{CostModel, DysimConfig, ImdppInstance, OracleKind};
//! use imdpp_diffusion::scenario::toy_scenario;
//! use imdpp_sketch::pipeline;
//!
//! let scenario = toy_scenario();
//! let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
//! let instance = ImdppInstance::new(scenario, costs, 3.0, 2).unwrap();
//!
//! let mc = DysimConfig::fast();
//! let sketched = DysimConfig::fast().with_oracle(OracleKind::RrSketch { sets_per_item: 512 });
//!
//! let mc_report = pipeline::run_dysim(&instance, &mc);
//! let sk_report = pipeline::run_dysim(&instance, &sketched);
//! assert!(instance.is_feasible(&mc_report.seeds));
//! assert!(instance.is_feasible(&sk_report.seeds));
//! ```

use crate::{SketchConfig, SketchOracle};
use imdpp_core::adaptive::{adaptive_dysim_with_oracle, AdaptiveReport};
use imdpp_core::dysim::{Dysim, DysimReport};
use imdpp_core::oracle::{OracleKind, ScenarioUpdate};
use imdpp_core::{ImdppInstance, MonteCarloOracle};

/// The sketch configuration a [`DysimConfig`](imdpp_core::DysimConfig)
/// with [`OracleKind::RrSketch`] resolves to: a fixed pool (adaptive growth
/// disabled so refreshes stay bit-identical to rebuilds) seeded from the
/// run's `base_seed`.
pub fn sketch_config_for(config: &imdpp_core::DysimConfig, sets_per_item: usize) -> SketchConfig {
    SketchConfig::fixed(sets_per_item).with_base_seed(config.base_seed)
}

/// Runs the full Dysim pipeline (TMI → DRE → TDSI) with the estimator
/// selected by `config.oracle`.
///
/// # Panics
/// With [`OracleKind::RrSketch`] on a Linear Threshold scenario: the RR
/// sketch encodes the Independent Cascade triggering distribution (see
/// [`SketchOracle::build`]).
pub fn run_dysim(instance: &ImdppInstance, config: &imdpp_core::DysimConfig) -> DysimReport {
    match config.oracle {
        OracleKind::MonteCarlo => Dysim::new(config.clone()).run_with_report(instance),
        OracleKind::RrSketch { sets_per_item } => {
            let oracle = SketchOracle::build(
                instance.scenario(),
                sketch_config_for(config, sets_per_item),
            );
            Dysim::new(config.clone()).run_with_report_and_oracle(instance, &oracle)
        }
    }
}

/// Runs the adaptive Dysim loop with the estimator selected by
/// `config.oracle`, applying `drift[i]` between promotions `i + 1` and
/// `i + 2`.
///
/// With [`OracleKind::RrSketch`] the sketch is built once and *refreshed*
/// per round — re-sampling only the RR sets each update could have touched
/// — instead of rebuilt; the per-round resample fractions are reported in
/// [`AdaptiveReport::refresh_fractions`] (Monte-Carlo reports `1.0`: no
/// amortized state to reuse).
///
/// # Panics
/// With [`OracleKind::RrSketch`] on a Linear Threshold scenario (see
/// [`SketchOracle::build`]).
pub fn run_adaptive(
    instance: &ImdppInstance,
    config: &imdpp_core::DysimConfig,
    drift: &[ScenarioUpdate],
) -> AdaptiveReport {
    match config.oracle {
        OracleKind::MonteCarlo => {
            let mut oracle =
                MonteCarloOracle::new(instance.scenario(), config.mc_samples, config.base_seed);
            adaptive_dysim_with_oracle(instance, config, drift, &mut oracle)
        }
        OracleKind::RrSketch { sets_per_item } => {
            let mut oracle = SketchOracle::build(
                instance.scenario(),
                sketch_config_for(config, sets_per_item),
            );
            adaptive_dysim_with_oracle(instance, config, drift, &mut oracle)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::{CostModel, DysimConfig, EdgeUpdate, ItemId, UserId};
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn sketch_backed_dysim_is_feasible_and_deterministic() {
        let inst = instance(3.0, 3);
        let cfg = DysimConfig::fast().with_oracle(OracleKind::RrSketch { sets_per_item: 512 });
        let a = run_dysim(&inst, &cfg);
        let b = run_dysim(&inst, &cfg);
        assert_eq!(a.seeds, b.seeds);
        assert!(!a.seeds.is_empty());
        assert!(inst.is_feasible(&a.seeds));
        assert!(!a.nominees.is_empty());
    }

    #[test]
    fn monte_carlo_dispatch_matches_the_core_driver() {
        let inst = instance(3.0, 2);
        let cfg = DysimConfig::fast();
        let dispatched = run_dysim(&inst, &cfg);
        let direct = Dysim::new(cfg).run_with_report(&inst);
        assert_eq!(dispatched.seeds, direct.seeds);
    }

    #[test]
    fn sketch_backed_adaptive_refreshes_instead_of_rebuilding() {
        let inst = instance(4.0, 3);
        let cfg = DysimConfig::fast().with_oracle(OracleKind::RrSketch { sets_per_item: 256 });
        let drift = vec![
            ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.9,
            }]),
            ScenarioUpdate::Preferences(vec![(UserId(2), ItemId(0), 0.8)]),
        ];
        let report = run_adaptive(&inst, &cfg, &drift);
        assert!(inst.is_feasible(&report.seeds));
        assert_eq!(report.refresh_fractions.len(), 2);
        for &f in &report.refresh_fractions {
            assert!(
                (0.0..1.0).contains(&f),
                "sketch refresh must reuse samples, got {f}"
            );
        }
    }

    #[test]
    fn adaptive_monte_carlo_reports_full_rebuilds() {
        let inst = instance(3.0, 2);
        let cfg = DysimConfig::fast();
        let drift = vec![ScenarioUpdate::Preferences(vec![(
            UserId(1),
            ItemId(1),
            0.7,
        )])];
        let report = run_adaptive(&inst, &cfg, &drift);
        assert_eq!(report.refresh_fractions, vec![1.0]);
    }
}
