//! Deprecated config-driven Dysim entry points, kept as thin shims for
//! downstream code.
//!
//! The `OracleKind` dispatch these functions used to own moved to
//! [`crate::dispatch::ConfiguredOracle`], and the public face of
//! config-driven runs is now the `imdpp-engine` `Engine`
//! (`Engine::builder(scenario) … .build()` → `solve_report()` /
//! `adaptive(..)`), which adds snapshot isolation for concurrent readers on
//! top of the same dispatch.  Both shims keep the exact behaviour they had
//! when they owned the plumbing.

use crate::dispatch::ConfiguredOracle;
use crate::SketchConfig;
use imdpp_core::adaptive::{adaptive_dysim_with_oracle, AdaptiveReport};
use imdpp_core::dysim::{Dysim, DysimReport};
use imdpp_core::oracle::ScenarioUpdate;
use imdpp_core::ImdppInstance;

/// The sketch configuration a `DysimConfig` with `OracleKind::RrSketch`
/// resolves to.
#[deprecated(
    since = "0.2.0",
    note = "use imdpp_sketch::dispatch::sketch_config_for"
)]
pub fn sketch_config_for(config: &imdpp_core::DysimConfig, sets_per_item: usize) -> SketchConfig {
    // The shim predates sharding; it always resolved to the flat store.
    crate::dispatch::sketch_config_for(config.base_seed, sets_per_item, 1, 0)
}

/// Runs the full Dysim pipeline (TMI → DRE → TDSI) with the estimator
/// selected by `config.oracle`.
///
/// # Panics
/// With `OracleKind::RrSketch` on a Linear Threshold scenario (see
/// [`crate::SketchOracle::build`]).
#[deprecated(
    since = "0.2.0",
    note = "use imdpp_engine::Engine (builder → solve_report)"
)]
pub fn run_dysim(instance: &ImdppInstance, config: &imdpp_core::DysimConfig) -> DysimReport {
    let oracle = ConfiguredOracle::build(
        instance.scenario(),
        config.oracle,
        config.mc_samples,
        config.base_seed,
    );
    Dysim::new(config.clone()).solve_with(instance, &oracle)
}

/// Runs the adaptive Dysim loop with the estimator selected by
/// `config.oracle`, applying `drift[i]` between promotions `i + 1` and
/// `i + 2`.
///
/// # Panics
/// With `OracleKind::RrSketch` on a Linear Threshold scenario (see
/// [`crate::SketchOracle::build`]).
#[deprecated(
    since = "0.2.0",
    note = "use imdpp_engine::Engine (builder → adaptive)"
)]
pub fn run_adaptive(
    instance: &ImdppInstance,
    config: &imdpp_core::DysimConfig,
    drift: &[ScenarioUpdate],
) -> AdaptiveReport {
    let mut oracle = ConfiguredOracle::build(
        instance.scenario(),
        config.oracle,
        config.mc_samples,
        config.base_seed,
    );
    adaptive_dysim_with_oracle(instance, config, drift, &mut oracle)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use imdpp_core::{CostModel, DysimConfig, Evaluator, OracleKind};
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn deprecated_shims_still_dispatch_both_kinds() {
        let inst = instance(3.0, 2);
        let mc = run_dysim(&inst, &DysimConfig::fast());
        let sk = run_dysim(
            &inst,
            &DysimConfig::fast().with_oracle(OracleKind::RrSketch {
                sets_per_item: 512,
                shards: 1,
                threads: 0,
            }),
        );
        assert!(inst.is_feasible(&mc.seeds));
        assert!(inst.is_feasible(&sk.seeds));
        assert!(!mc.seeds.is_empty() && !sk.seeds.is_empty());
    }

    #[test]
    fn monte_carlo_shim_matches_the_core_driver() {
        let inst = instance(3.0, 2);
        let cfg = DysimConfig::fast();
        let dispatched = run_dysim(&inst, &cfg);
        let ev = Evaluator::new(&inst, cfg.mc_samples, cfg.base_seed);
        let direct = Dysim::new(cfg).solve_with(&inst, &ev);
        assert_eq!(dispatched.seeds, direct.seeds);
    }

    #[test]
    fn adaptive_shim_reports_refresh_fractions() {
        use imdpp_core::{EdgeUpdate, ItemId, UserId};
        let inst = instance(4.0, 3);
        let cfg = DysimConfig::fast().with_oracle(OracleKind::RrSketch {
            sets_per_item: 256,
            shards: 1,
            threads: 0,
        });
        let drift = vec![
            ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.9,
            }]),
            ScenarioUpdate::Preferences(vec![(UserId(2), ItemId(0), 0.8)]),
        ];
        let report = run_adaptive(&inst, &cfg, &drift);
        assert!(inst.is_feasible(&report.seeds));
        assert_eq!(report.refresh_fractions.len(), 2);
        for &f in &report.refresh_fractions {
            assert!(
                (0.0..1.0).contains(&f),
                "sketch refresh must reuse samples, got {f}"
            );
        }
    }
}
