//! The sketch-backed [`SpreadOracle`]: per-item RR stores behind the
//! estimation interface of `imdpp-core`.

use crate::adaptive::{AdaptiveReport, StoppingRule};
use crate::greedy::{greedy_max_coverage_sharded, GreedySelection};
use crate::incremental::{affected_heads, edge_update_frontier, RefreshStats};
use crate::persist;
use crate::sharded::ShardedRrStore;
use crate::store::IndexStats;
use crate::telemetry::SketchMetrics;
use crate::SketchConfig;
use imdpp_core::nominees::Nominee;
use imdpp_core::oracle::{RefreshableOracle, ScenarioUpdate};
use imdpp_core::SpreadOracle;
use imdpp_diffusion::{DynamicsConfig, ImdppError, Scenario};
use imdpp_graph::{EdgeUpdate, ItemId, UserId};
use imdpp_obs::Telemetry;

/// A reverse-reachable-sketch estimator of the static first-promotion
/// spread `f(N)`, maintaining one [`ShardedRrStore`] per catalogue item
/// (`config.shards` = 1 degenerates to the flat store).
///
/// Construction freezes the scenario's dynamics (the Lemma 1 restriction
/// both estimators target) and samples every store in parallel with
/// deterministic per-set RNG streams.  Between promotions,
/// [`SketchOracle::apply_update`] migrates the sketch to a drifted scenario
/// by re-sampling only the RR sets whose traversal could have observed the
/// change — the incremental sample-reuse path — and patches the inverted
/// indexes instead of rebuilding them.
#[derive(Clone, Debug)]
pub struct SketchOracle {
    frozen: Scenario,
    config: SketchConfig,
    stores: Vec<ShardedRrStore>,
    /// Pre-resolved telemetry handles (no-op unless the oracle was built
    /// with [`SketchOracle::build_with_telemetry`]).  Clones share the
    /// cells, so a cloned-then-refreshed oracle — the engine's writer path —
    /// keeps recording into the originating registry.
    metrics: SketchMetrics,
}

impl SketchOracle {
    /// Builds the oracle for `scenario`, sampling `config.initial_sets` RR
    /// sets per item under the scenario's initial (frozen) probabilities.
    ///
    /// # Panics
    /// Panics when the scenario uses a triggering model other than
    /// Independent Cascade: the RR-set construction here encodes the IC
    /// triggering distribution, so estimating a Linear Threshold scenario
    /// with it would silently target the wrong quantity (the LT-equivalent
    /// sketch draws one uniformly-chosen live in-edge per node instead).
    pub fn build(scenario: &Scenario, config: SketchConfig) -> Self {
        Self::build_with_telemetry(scenario, config, &Telemetry::disabled())
    }

    /// [`SketchOracle::build`] recording into `telemetry`: construction,
    /// adaptive growth and every later refresh fold per-shard wall-clock and
    /// the semantic set/index counters into the registry (see
    /// [`SketchMetrics`] for the metric names).  Passing
    /// [`Telemetry::disabled`] makes this identical to plain `build`;
    /// either way the sampled stores are bit-identical — telemetry is
    /// write-only and never feeds the RNG.
    ///
    /// # Panics
    /// Like [`SketchOracle::build`], panics on a non-Independent-Cascade
    /// scenario.
    pub fn build_with_telemetry(
        scenario: &Scenario,
        config: SketchConfig,
        telemetry: &Telemetry,
    ) -> Self {
        assert_eq!(
            scenario.model(),
            imdpp_diffusion::DiffusionModel::IndependentCascade,
            "SketchOracle only supports the Independent Cascade model; \
             use the Monte-Carlo Evaluator for Linear Threshold scenarios"
        );
        let metrics = SketchMetrics::new(telemetry);
        let frozen = scenario.with_dynamics(DynamicsConfig::frozen());
        // (item × shard) parallel generation on one dynamic work-queue:
        // every task samples, pushes and index-builds one shard of one item
        // on whichever worker claims it, so the pool stays busy even when
        // items × shards far exceeds — or barely reaches — the core count.
        // Every later maintenance step patches incrementally.
        let items: Vec<ItemId> = frozen.items().collect();
        let stores = crate::sharded::build_stores_observed(
            &frozen,
            &items,
            config.shards,
            config.base_seed,
            config.initial_sets,
            config.threads,
            &metrics,
        );
        let oracle = SketchOracle {
            frozen,
            config,
            stores,
            metrics,
        };
        oracle.record_memory();
        oracle
    }

    /// The frozen scenario the sketch estimates against.
    pub fn scenario(&self) -> &Scenario {
        &self.frozen
    }

    /// The construction configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// The (sharded) RR store of one item.
    pub fn store(&self, item: ItemId) -> &ShardedRrStore {
        &self.stores[item.index()]
    }

    /// Total RR sets across all items.
    pub fn total_sets(&self) -> usize {
        self.stores.iter().map(|s| s.len()).sum()
    }

    /// Shards per item store (`config.shards`, clamped to ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.stores.first().map_or(1, |s| s.shard_count())
    }

    /// Encoded bytes of the live compressed-arena spans across every item
    /// store and shard — the sketch's dominant memory term.  A pure
    /// function of the set contents, hence identical across the
    /// `(threads, shards)` grid.
    pub fn live_arena_bytes(&self) -> u64 {
        self.stores.iter().map(|s| s.live_arena_bytes()).sum()
    }

    /// Bytes the same live entries would occupy in the uncompressed
    /// `u32`-pool layout the compressed arena replaced — the baseline of
    /// the ≥ 2× compression gate in the scale smoke.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.stores.iter().map(|s| s.uncompressed_bytes()).sum()
    }

    /// Overwrites the `sketch.arena_live_bytes` gauge with the current live
    /// arena footprint; called after construction, growth and refreshes.
    fn record_memory(&self) {
        self.metrics.arena_live_bytes.set(self.live_arena_bytes());
    }

    /// Aggregated inverted-index maintenance counters across every item
    /// store and shard.  `full_rebuilds` equals `items × shards` right
    /// after construction and — the scale invariant — never grows again.
    pub fn index_stats(&self) -> IndexStats {
        let mut stats = IndexStats::default();
        for store in &self.stores {
            stats.absorb(store.index_stats());
        }
        stats
    }

    /// True when `self` and `other` hold bit-identical RR stores (same item
    /// count, same set count per item, same members in the same order) —
    /// the equality the refresh-equals-rebuild invariant is stated in.
    pub fn stores_equal(&self, other: &SketchOracle) -> bool {
        self.stores.len() == other.stores.len()
            && self.stores.iter().zip(&other.stores).all(|(a, b)| {
                a.len() == b.len()
                    && a.iter()
                        .zip(b.iter())
                        .all(|((_, members_a), (_, members_b))| members_a == members_b)
            })
    }

    /// Estimated adopters of `item` when `users` are seeded with it in the
    /// first promotion (unweighted by importance).
    pub fn estimate_item_adopters(&self, item: ItemId, users: &[UserId]) -> f64 {
        self.stores[item.index()].estimate_adopters(users)
    }

    /// Binomial standard error of [`Self::estimate_item_adopters`].
    pub fn estimate_item_std_error(&self, item: ItemId, users: &[UserId]) -> f64 {
        self.stores[item.index()].estimate_std_error(users)
    }

    /// Greedy max-coverage selection of `k` seed users for one item,
    /// aggregating per-shard partial counters (shard-count-independent).
    pub fn greedy_seeds(&self, item: ItemId, k: usize) -> GreedySelection {
        greedy_max_coverage_sharded(&self.stores[item.index()], k)
    }

    /// Grows `item`'s store until the `(ε, δ)` rule certifies the estimate
    /// for `seeds` (doubling rounds, capped at `config.max_sets`).  New sets
    /// extend the deterministic stream sequence, so grown sketches remain
    /// reproducible and incrementally maintainable.
    pub fn ensure_precision(&mut self, item: ItemId, seeds: &[UserId]) -> AdaptiveReport {
        let rule = StoppingRule::new(self.config.epsilon, self.config.delta);
        let store = &mut self.stores[item.index()];
        let mut rounds = 0;
        let report = loop {
            let covered = store.coverage_count(seeds);
            if rule.is_satisfied(covered) {
                break AdaptiveReport {
                    final_sets: store.len(),
                    rounds,
                    satisfied: true,
                };
            }
            if store.len() >= self.config.max_sets {
                break AdaptiveReport {
                    final_sets: store.len(),
                    rounds,
                    satisfied: false,
                };
            }
            let grow = store.len().min(self.config.max_sets - store.len()).max(1);
            // Shard-parallel growth; grown sets are patched into the
            // inverted index (no rebuild), and the `id mod S` stream
            // partition keeps placement thread-independent.
            store.extend_observed(
                &self.frozen,
                self.config.base_seed,
                grow,
                self.config.threads,
                &self.metrics,
            );
            rounds += 1;
        };
        self.record_memory();
        report
    }

    /// Refreshes every store through the (item × shard) work-queue
    /// (`frontiers[i]` = item `i`'s head list, `None` = skip with synthetic
    /// stats), absorbing per-item reports in item order and refreshing the
    /// memory gauge — the shared tail of every `apply_*` path.
    fn refresh_all(
        &mut self,
        frontiers: &[Option<&[UserId]>],
        track: bool,
    ) -> (RefreshStats, Vec<Vec<UserId>>) {
        let per_store = crate::sharded::refresh_stores_tracked_observed(
            &mut self.stores,
            &self.frozen,
            self.config.base_seed,
            frontiers,
            self.config.threads,
            &self.metrics,
            track,
        );
        let mut stats = RefreshStats::default();
        let mut touched: Vec<Vec<UserId>> = Vec::with_capacity(per_store.len());
        for (store_stats, store_touched) in per_store {
            stats.absorb(store_stats);
            touched.push(store_touched);
        }
        self.record_memory();
        (stats, touched)
    }

    /// Migrates the sketch to `updated` (whose dynamics are re-frozen) after
    /// the perceptions/preferences of `changed_users` drifted, re-sampling
    /// only the RR sets whose traversal could have observed the change.
    ///
    /// The refreshed sketch is *identical* to rebuilding from scratch
    /// against `updated` with the same configuration.
    pub fn apply_update(&mut self, updated: &Scenario, changed_users: &[UserId]) -> RefreshStats {
        self.frozen = updated.with_dynamics(DynamicsConfig::frozen());
        let heads = affected_heads(&self.frozen, changed_users);
        let frontiers: Vec<Option<&[UserId]>> = vec![Some(heads.as_slice()); self.stores.len()];
        self.refresh_all(&frontiers, false).0
    }

    /// Migrates the sketch after *preference-only* drift: each `(u, x)`
    /// change affects the triggering probability only on in-edge draws of
    /// `u` for item `x`, so only item `x`'s sets containing `u` are
    /// re-sampled — a far tighter frontier than [`SketchOracle::apply_update`]
    /// (which must assume influence strengths moved too).  Exactness is the
    /// same: the result is identical to a from-scratch rebuild against
    /// `updated`.
    pub fn apply_preference_update(
        &mut self,
        updated: &Scenario,
        changes: &[(UserId, ItemId)],
    ) -> RefreshStats {
        self.frozen = updated.with_dynamics(DynamicsConfig::frozen());
        let mut by_item: Vec<Vec<UserId>> = vec![Vec::new(); self.stores.len()];
        for &(u, x) in changes {
            if x.index() < by_item.len() {
                by_item[x.index()].push(u);
            }
        }
        let frontiers: Vec<Option<&[UserId]>> = by_item
            .iter()
            .map(|users| (!users.is_empty()).then_some(users.as_slice()))
            .collect();
        self.refresh_all(&frontiers, false).0
    }

    /// [`SketchOracle::refresh`] that additionally reports, **per item**, the
    /// touched users of that item's store: the union of every re-sampled RR
    /// set's members before and after replacement (see
    /// [`ShardedRrStore::refresh_tracked_observed`]).  A nominee `(u, x)`
    /// with `u` absent from `touched[x]` kept its covering set-ids — and
    /// therefore every marginal involving only such nominees — bit-identical
    /// through the refresh.  The refreshed sketch and the [`RefreshStats`]
    /// are identical to the untracked [`SketchOracle::refresh`].
    pub fn refresh_tracked(
        &mut self,
        updated: &Scenario,
        update: &ScenarioUpdate,
    ) -> (RefreshStats, Vec<Vec<UserId>>) {
        match update {
            ScenarioUpdate::Preferences(changes) => {
                let pairs: Vec<(UserId, ItemId)> =
                    changes.iter().map(|&(u, x, _)| (u, x)).collect();
                self.apply_preference_update_tracked(updated, &pairs)
            }
            ScenarioUpdate::Edges(updates) => self.apply_edge_update_tracked(updated, updates),
        }
    }

    /// Tracked variant of [`SketchOracle::apply_preference_update`]; see
    /// [`SketchOracle::refresh_tracked`] for the touched-user contract.
    pub fn apply_preference_update_tracked(
        &mut self,
        updated: &Scenario,
        changes: &[(UserId, ItemId)],
    ) -> (RefreshStats, Vec<Vec<UserId>>) {
        self.frozen = updated.with_dynamics(DynamicsConfig::frozen());
        let mut by_item: Vec<Vec<UserId>> = vec![Vec::new(); self.stores.len()];
        for &(u, x) in changes {
            if x.index() < by_item.len() {
                by_item[x.index()].push(u);
            }
        }
        let frontiers: Vec<Option<&[UserId]>> = by_item
            .iter()
            .map(|users| (!users.is_empty()).then_some(users.as_slice()))
            .collect();
        self.refresh_all(&frontiers, true)
    }

    /// Tracked variant of [`SketchOracle::apply_edge_update`]; see
    /// [`SketchOracle::refresh_tracked`] for the touched-user contract.
    pub fn apply_edge_update_tracked(
        &mut self,
        updated: &Scenario,
        updates: &[EdgeUpdate],
    ) -> (RefreshStats, Vec<Vec<UserId>>) {
        let heads = edge_update_frontier(&self.frozen, updates);
        self.frozen = updated.with_dynamics(DynamicsConfig::frozen());
        let frontier = (!heads.is_empty()).then_some(heads.as_slice());
        let frontiers: Vec<Option<&[UserId]>> = vec![frontier; self.stores.len()];
        self.refresh_all(&frontiers, true)
    }

    /// Answers a whole batch of static-spread queries in one pass over the
    /// RR stores: queries are processed in chunks of up to 64, each chunk
    /// carrying one `u64` query-membership mask per user, so every
    /// compressed span is decoded **once per chunk** instead of once per
    /// query ([`ShardedRrStore::coverage_counts_masked`]) — the decode
    /// amortization the serving tier's `SpreadBatch` is built on.
    ///
    /// `results[q]` is **bit-identical** to `self.static_spread(queries[q])`:
    /// both sum `importance(x) · n · coverage / total` over items in
    /// ascending id order, the batched coverage counters equal the
    /// single-query ones by construction, and the only terms the batch
    /// elides are exact zeros (items a query does not seed), which cannot
    /// change a non-negative IEEE-754 sum.
    pub fn static_spread_batch(&self, queries: &[&[Nominee]]) -> Vec<f64> {
        let user_count = self.frozen.user_count();
        let mut results = vec![0.0f64; queries.len()];
        // One mask word per user, shared across chunks; entries are cleared
        // through the per-item touch lists, never by reallocating.
        let mut masks = vec![0u64; user_count];
        for (ci, chunk) in queries.chunks(64).enumerate() {
            let chunk_start = ci * 64;
            // Bucket the chunk's nominees per item: (user, query-bit) pairs.
            // Out-of-range users and items are dropped here, exactly where
            // the single-query path's coverage counting drops them.
            let mut by_item: Vec<Vec<(u32, usize)>> = vec![Vec::new(); self.stores.len()];
            for (qi, nominees) in chunk.iter().enumerate() {
                for &(u, x) in *nominees {
                    if x.index() < by_item.len() && u.index() < user_count {
                        by_item[x.index()].push((u.0, qi));
                    }
                }
            }
            let mut counts = vec![0usize; chunk.len()];
            for (x, entries) in by_item.iter().enumerate() {
                if entries.is_empty() {
                    continue;
                }
                let mut full = 0u64;
                for &(u, qi) in entries {
                    masks[u as usize] |= 1 << qi;
                    full |= 1 << qi;
                }
                counts.fill(0);
                let store = &self.stores[x];
                store.coverage_counts_masked(&masks, full, &mut counts);
                let total = store.len();
                if total > 0 {
                    let importance = self.frozen.catalog().importance(ItemId(x as u32));
                    let mut live = full;
                    while live != 0 {
                        let qi = live.trailing_zeros() as usize;
                        live &= live - 1;
                        results[chunk_start + qi] +=
                            importance * (user_count as f64 * counts[qi] as f64 / total as f64);
                    }
                }
                for &(u, _) in entries {
                    masks[u as usize] = 0;
                }
            }
        }
        results
    }

    /// Writes the sketch's persistent form: the per-item stores in item
    /// order, each span byte-for-byte as the arena holds it (see
    /// [`crate::persist`] for the codec).  Everything else an oracle needs —
    /// scenario, configuration, telemetry — is reconstructed by the caller
    /// and validated by [`SketchOracle::deserialize`], so the payload stays
    /// a pure function of the sampled set contents.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        persist::write_varint(self.stores.len() as u32, &mut out);
        for store in &self.stores {
            store.serialize_into(&mut out);
        }
        out
    }

    /// Rebuilds an oracle from [`SketchOracle::serialize`] output against
    /// the same scenario and configuration — decoding spans, validating
    /// every member, and rebuilding the inverted indexes, but re-sampling
    /// **zero** RR sets (the `sketch.sets_sampled` counter stays untouched,
    /// which is how the warm-restart tests prove no resampling happened).
    ///
    /// # Errors
    /// [`ImdppError::InvalidConfig`] when the scenario is not Independent
    /// Cascade, the payload is truncated or corrupt, or the recorded
    /// item/shard layout disagrees with `scenario`/`config`.
    pub fn deserialize(
        scenario: &Scenario,
        config: SketchConfig,
        telemetry: &Telemetry,
        bytes: &[u8],
    ) -> Result<Self, ImdppError> {
        if scenario.model() != imdpp_diffusion::DiffusionModel::IndependentCascade {
            return Err(ImdppError::invalid(
                "SketchOracle snapshots only exist for Independent Cascade scenarios",
            ));
        }
        let frozen = scenario.with_dynamics(DynamicsConfig::frozen());
        let mut input = bytes;
        let store_count = persist::read_varint(&mut input)? as usize;
        if store_count != frozen.item_count() {
            return Err(persist::corrupt(
                "persisted item count disagrees with the scenario catalogue",
            ));
        }
        let expected_shards = config.shards.max(1);
        let mut stores = Vec::with_capacity(store_count);
        for x in 0..store_count {
            let store = ShardedRrStore::deserialize_from(
                ItemId(x as u32),
                frozen.user_count(),
                &mut input,
            )?;
            if store.shard_count() != expected_shards {
                return Err(persist::corrupt(
                    "persisted shard count disagrees with the configuration",
                ));
            }
            stores.push(store);
        }
        if !input.is_empty() {
            return Err(persist::corrupt("trailing bytes after the last store"));
        }
        let oracle = SketchOracle {
            frozen,
            config,
            stores,
            metrics: SketchMetrics::new(telemetry),
        };
        oracle.record_memory();
        Ok(oracle)
    }

    /// Migrates the sketch after influence-edge updates (strength changes,
    /// insertions, deletions), re-sampling only the RR sets whose traversal
    /// could have crossed a touched edge.
    ///
    /// `updated` must be the oracle's current scenario with exactly
    /// `updates` applied (i.e. `self.scenario().with_edge_updates(updates)`
    /// up to dynamics configuration): the affected-set frontier is the
    /// destinations of the edges that actually change
    /// ([`edge_update_frontier`]), which is only exact when the adjacency
    /// order of untouched users is preserved — the guarantee
    /// `CsrGraph::apply_edge_updates` provides.  A batch of no-op updates
    /// (removing absent edges, re-setting current strengths) re-samples
    /// zero sets.
    ///
    /// The refreshed sketch is *identical* to rebuilding from scratch
    /// against `updated` with the same configuration.
    pub fn apply_edge_update(
        &mut self,
        updated: &Scenario,
        updates: &[EdgeUpdate],
    ) -> RefreshStats {
        let heads = edge_update_frontier(&self.frozen, updates);
        self.frozen = updated.with_dynamics(DynamicsConfig::frozen());
        let frontier = (!heads.is_empty()).then_some(heads.as_slice());
        let frontiers: Vec<Option<&[UserId]>> = vec![frontier; self.stores.len()];
        self.refresh_all(&frontiers, false).0
    }
}

impl RefreshableOracle for SketchOracle {
    /// Dispatches a [`ScenarioUpdate`] to the matching sample-reuse path
    /// ([`SketchOracle::apply_preference_update`] /
    /// [`SketchOracle::apply_edge_update`]) and reports the refresh cost —
    /// the adaptive loop records its resampled fraction per round and the
    /// engine surfaces the whole value on `ApplyReport`.
    fn refresh(&mut self, updated: &Scenario, update: &ScenarioUpdate) -> RefreshStats {
        match update {
            ScenarioUpdate::Preferences(changes) => {
                let pairs: Vec<(UserId, ItemId)> =
                    changes.iter().map(|&(u, x, _)| (u, x)).collect();
                self.apply_preference_update(updated, &pairs)
            }
            ScenarioUpdate::Edges(updates) => self.apply_edge_update(updated, updates),
        }
    }
}

impl SpreadOracle for SketchOracle {
    /// `f(N) = Σ_x importance(x) · n · (coverage of N's item-x users)`:
    /// per-item RR estimates combined with catalogue importances.  Under
    /// frozen dynamics items diffuse independently (`P_ext ≡ 0`), so the sum
    /// targets exactly the Monte-Carlo estimator's quantity.
    fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        if nominees.is_empty() {
            return 0.0;
        }
        let mut by_item: Vec<Vec<UserId>> = vec![Vec::new(); self.stores.len()];
        for &(u, x) in nominees {
            if x.index() < by_item.len() {
                by_item[x.index()].push(u);
            }
        }
        by_item
            .iter()
            .enumerate()
            .filter(|(_, users)| !users.is_empty())
            .map(|(x, users)| {
                let item = ItemId(x as u32);
                self.frozen.catalog().importance(item) * self.stores[x].estimate_adopters(users)
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "rr-sketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_diffusion::scenario::toy_scenario;

    fn oracle(sets: usize) -> SketchOracle {
        SketchOracle::build(
            &toy_scenario(),
            SketchConfig::fixed(sets).with_base_seed(13),
        )
    }

    #[test]
    fn build_samples_every_item() {
        let o = oracle(64);
        let s = toy_scenario();
        assert_eq!(o.total_sets(), 64 * s.item_count());
        for item in s.items() {
            assert_eq!(o.store(item).len(), 64);
        }
        assert_eq!(o.name(), "rr-sketch");
    }

    #[test]
    fn empty_and_full_seedings_bound_the_estimate() {
        let o = oracle(128);
        let s = toy_scenario();
        let everyone: Vec<UserId> = s.users().collect();
        assert_eq!(o.static_spread(&[]), 0.0);
        let full = o.estimate_item_adopters(ItemId(0), &everyone);
        assert!((full - s.user_count() as f64).abs() < 1e-9);
    }

    #[test]
    fn static_spread_weights_items_by_importance() {
        let o = oracle(256);
        let s = toy_scenario();
        let everyone: Vec<Nominee> = s.users().map(|u| (u, ItemId(0))).collect();
        // Item 0 has importance 1.0: seeding everyone with it yields ≈ n.
        let f = o.static_spread(&everyone);
        assert!((f - s.user_count() as f64).abs() < 1e-9);
        // Item 1 has importance 0.5: the weighted estimate halves.
        let everyone1: Vec<Nominee> = s.users().map(|u| (u, ItemId(1))).collect();
        let f1 = o.static_spread(&everyone1);
        assert!((f1 - 0.5 * s.user_count() as f64).abs() < 1e-9);
    }

    #[test]
    fn estimates_are_monotone_in_the_seed_set() {
        let o = oracle(512);
        let one = o.static_spread(&[(UserId(0), ItemId(0))]);
        let two = o.static_spread(&[(UserId(0), ItemId(0)), (UserId(2), ItemId(0))]);
        assert!(two >= one);
        assert!(one >= 1.0 - 1e-9); // a seed always covers its own root sets
    }

    #[test]
    fn greedy_avoids_sink_users() {
        let o = oracle(512);
        let sel = o.greedy_seeds(ItemId(0), 2);
        assert!(!sel.seeds.is_empty());
        // User 5 has no out-edges and cannot be the first pick.
        assert_ne!(sel.seeds[0], UserId(5));
    }

    #[test]
    fn ensure_precision_grows_until_satisfied_or_capped() {
        let mut o = SketchOracle::build(
            &toy_scenario(),
            SketchConfig {
                initial_sets: 16,
                max_sets: 4096,
                epsilon: 0.2,
                delta: 0.1,
                ..SketchConfig::default()
            },
        );
        let report = o.ensure_precision(ItemId(0), &[UserId(0)]);
        assert!(report.satisfied);
        assert!(report.final_sets > 16);
        assert!(report.rounds > 0);
        // A second call is already satisfied and does not grow.
        let again = o.ensure_precision(ItemId(0), &[UserId(0)]);
        assert!(again.satisfied);
        assert_eq!(again.rounds, 0);
        assert_eq!(again.final_sets, report.final_sets);

        // An impossible target hits the cap un-satisfied.
        let mut capped = SketchOracle::build(
            &toy_scenario(),
            SketchConfig {
                initial_sets: 4,
                max_sets: 8,
                epsilon: 0.01,
                delta: 0.001,
                ..SketchConfig::default()
            },
        );
        let r = capped.ensure_precision(ItemId(0), &[UserId(5)]);
        assert!(!r.satisfied);
        assert_eq!(r.final_sets, 8);
    }

    #[test]
    fn preference_update_is_exact_and_tighter_than_user_update() {
        let s = toy_scenario();
        let config = SketchConfig::fixed(256).with_base_seed(19);
        let drifted = s.with_base_preference(UserId(1), ItemId(2), 0.9);

        let mut precise = SketchOracle::build(&s, config);
        let precise_stats = precise.apply_preference_update(&drifted, &[(UserId(1), ItemId(2))]);

        let mut coarse = SketchOracle::build(&s, config);
        let coarse_stats = coarse.apply_update(&drifted, &[UserId(1)]);

        // Both must equal a from-scratch rebuild...
        let rebuilt = SketchOracle::build(&drifted, config);
        for item in s.items() {
            let reb: Vec<Vec<u32>> = rebuilt
                .store(item)
                .iter()
                .map(|(_, s)| s.to_vec())
                .collect();
            let pre: Vec<Vec<u32>> = precise
                .store(item)
                .iter()
                .map(|(_, s)| s.to_vec())
                .collect();
            let coa: Vec<Vec<u32>> = coarse.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            assert_eq!(pre, reb);
            assert_eq!(coa, reb);
        }
        // ...but the preference-only frontier re-samples (much) less.
        assert!(precise_stats.resampled_sets <= coarse_stats.resampled_sets);
        assert!(precise_stats.resampled_sets < precise_stats.total_sets);
        assert_eq!(precise_stats.total_sets, coarse_stats.total_sets);
    }

    #[test]
    fn edge_update_refresh_is_exact_and_localized() {
        let s = toy_scenario();
        let config = SketchConfig::fixed(256).with_base_seed(23);
        let updates = [
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.95,
            },
            EdgeUpdate::Insert {
                src: UserId(5),
                dst: UserId(3),
                weight: 0.4,
            },
        ];
        let drifted = s.with_edge_updates(&updates);

        let mut incremental = SketchOracle::build(&s, config);
        let stats = incremental.apply_edge_update(&drifted, &updates);
        let rebuilt = SketchOracle::build(&drifted, config);

        for item in s.items() {
            let inc: Vec<Vec<u32>> = incremental
                .store(item)
                .iter()
                .map(|(_, s)| s.to_vec())
                .collect();
            let reb: Vec<Vec<u32>> = rebuilt
                .store(item)
                .iter()
                .map(|(_, s)| s.to_vec())
                .collect();
            assert_eq!(inc, reb);
        }
        assert!(stats.resampled_sets > 0);
        assert!(
            stats.resampled_fraction() < 0.5,
            "localized edge update re-sampled {:.1}%",
            100.0 * stats.resampled_fraction()
        );
    }

    #[test]
    fn noop_edge_update_resamples_nothing() {
        let s = toy_scenario();
        let mut oracle = SketchOracle::build(&s, SketchConfig::fixed(128).with_base_seed(31));
        let noop = [
            // The toy graph's 0 -> 1 edge already has strength 0.6.
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.6,
            },
            EdgeUpdate::Remove {
                src: UserId(5),
                dst: UserId(0),
            },
        ];
        let stats = oracle.apply_edge_update(&s.with_edge_updates(&noop), &noop);
        assert_eq!(stats.resampled_sets, 0);
        assert_eq!(stats.total_sets, 128 * s.item_count());
        assert_eq!(stats.resampled_fraction(), 0.0);
    }

    #[test]
    fn refreshable_oracle_dispatch_covers_both_update_kinds() {
        let s = toy_scenario();
        let config = SketchConfig::fixed(128).with_base_seed(37);
        let mut oracle = SketchOracle::build(&s, config);

        let pref = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        let drifted = pref.apply(&s);
        let r1 = oracle.refresh(&drifted, &pref);
        assert!((0.0..1.0).contains(&r1.resampled_fraction()));
        assert_eq!(r1.full_rebuilds, 0, "refresh must patch the index");

        let edges = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.9,
        }]);
        let drifted2 = edges.apply(&drifted);
        let r2 = oracle.refresh(&drifted2, &edges);
        assert!((0.0..1.0).contains(&r2.resampled_fraction()));
        assert!(
            r2.resampled_sets > 0,
            "a real strength change must re-sample something"
        );
        assert!(r2.index_entries_patched > 0);
        assert_eq!(r2.full_rebuilds, 0);

        // After both refreshes the oracle equals a rebuild of the final world.
        let rebuilt = SketchOracle::build(&drifted2, config);
        for item in s.items() {
            let inc: Vec<Vec<u32>> = oracle.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            let reb: Vec<Vec<u32>> = rebuilt
                .store(item)
                .iter()
                .map(|(_, s)| s.to_vec())
                .collect();
            assert_eq!(inc, reb);
        }
    }

    #[test]
    fn tracked_refresh_matches_untracked_and_localizes_touched_users() {
        let s = toy_scenario();
        let config = SketchConfig::fixed(256).with_base_seed(47);
        let pref = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        let drifted = pref.apply(&s);

        let mut plain = SketchOracle::build(&s, config);
        let plain_stats = plain.refresh(&drifted, &pref);
        let mut tracked = SketchOracle::build(&s, config);
        let (stats, touched) = tracked.refresh_tracked(&drifted, &pref);

        assert_eq!(stats, plain_stats);
        assert!(plain.stores_equal(&tracked));
        assert_eq!(touched.len(), s.item_count());
        // A preference-only change on item 2 touches no other item's store.
        for (x, users) in touched.iter().enumerate() {
            if x != 2 {
                assert!(users.is_empty(), "item {x} must be untouched");
            }
        }
        // The changed user's sets were re-sampled, so it must be touched.
        assert!(touched[2].contains(&UserId(1)));
        assert!(touched[2].windows(2).all(|w| w[0] < w[1]), "sorted + dedup");

        // The grid invariance carries over from the store level.
        for (shards, threads) in [(2usize, 1usize), (4, 4)] {
            let mut grid = SketchOracle::build(
                &s,
                SketchConfig::fixed(256)
                    .with_base_seed(47)
                    .with_shards(shards)
                    .with_threads(threads),
            );
            let (grid_stats, grid_touched) = grid.refresh_tracked(&drifted, &pref);
            assert_eq!(grid_stats, plain_stats, "{shards}x{threads}");
            assert_eq!(grid_touched, touched, "{shards}x{threads}");
        }
    }

    #[test]
    fn batched_spread_is_bit_identical_to_single_queries() {
        let s = toy_scenario();
        for shards in [1usize, 3] {
            let o = SketchOracle::build(
                &s,
                SketchConfig::fixed(256)
                    .with_base_seed(13)
                    .with_shards(shards),
            );
            // More than 64 queries forces a second chunk; include empty,
            // multi-item, duplicate-user and out-of-range queries.
            let mut owned: Vec<Vec<Nominee>> = Vec::new();
            for i in 0..70u32 {
                owned.push(match i % 5 {
                    0 => vec![(UserId(i % 6), ItemId(0))],
                    1 => vec![(UserId(0), ItemId(0)), (UserId(i % 6), ItemId(1))],
                    2 => vec![],
                    3 => vec![(UserId(999), ItemId(0)), (UserId(1), ItemId(2))],
                    _ => vec![(UserId(2), ItemId(1)), (UserId(2), ItemId(1))],
                });
            }
            let queries: Vec<&[Nominee]> = owned.iter().map(|q| q.as_slice()).collect();
            let batched = o.static_spread_batch(&queries);
            assert_eq!(batched.len(), queries.len());
            for (q, nominees) in queries.iter().enumerate() {
                assert_eq!(
                    batched[q].to_bits(),
                    o.static_spread(nominees).to_bits(),
                    "{shards} shards, query {q}"
                );
            }
        }
    }

    #[test]
    fn serialization_restores_an_identical_oracle_without_resampling() {
        let s = toy_scenario();
        for shards in [1usize, 2, 4] {
            let config = SketchConfig::fixed(128)
                .with_base_seed(13)
                .with_shards(shards);
            let mut original = SketchOracle::build(&s, config);
            // Drift once so the payload is not just the construction state.
            let drifted = s.with_base_preference(UserId(1), ItemId(2), 0.9);
            let _ = original.apply_preference_update(&drifted, &[(UserId(1), ItemId(2))]);

            let bytes = original.serialize();
            let telemetry = Telemetry::new();
            let restored = SketchOracle::deserialize(&drifted, config, &telemetry, &bytes).unwrap();
            assert!(restored.stores_equal(&original), "{shards} shards");
            assert_eq!(restored.shard_count(), original.shard_count());
            assert_eq!(restored.live_arena_bytes(), original.live_arena_bytes());
            let probe = [(UserId(0), ItemId(0)), (UserId(3), ItemId(2))];
            assert_eq!(
                restored.static_spread(&probe).to_bits(),
                original.static_spread(&probe).to_bits()
            );
            // Zero sets sampled: the restore decoded, never replayed RNG.
            let snap = telemetry.snapshot();
            assert_eq!(snap.counter("sketch.sets_sampled"), Some(0));
            // The restored index answers refreshes like the original.
            let mut a = original.clone();
            let mut b = restored;
            let further = drifted.with_base_preference(UserId(2), ItemId(0), 0.8);
            let sa = a.apply_preference_update(&further, &[(UserId(2), ItemId(0))]);
            let sb = b.apply_preference_update(&further, &[(UserId(2), ItemId(0))]);
            assert_eq!(sa, sb);
            assert!(a.stores_equal(&b));
        }
    }

    #[test]
    fn deserialization_rejects_mismatched_worlds() {
        let s = toy_scenario();
        let config = SketchConfig::fixed(64).with_base_seed(13).with_shards(2);
        let bytes = SketchOracle::build(&s, config).serialize();
        // Wrong shard count.
        let wrong_shards = SketchConfig {
            shards: 3,
            ..config
        };
        assert!(
            SketchOracle::deserialize(&s, wrong_shards, &Telemetry::disabled(), &bytes).is_err()
        );
        // Wrong model.
        let lt = s.with_model(imdpp_diffusion::DiffusionModel::LinearThreshold);
        assert!(SketchOracle::deserialize(&lt, config, &Telemetry::disabled(), &bytes).is_err());
        // Truncated payload.
        assert!(SketchOracle::deserialize(
            &s,
            config,
            &Telemetry::disabled(),
            &bytes[..bytes.len() - 1]
        )
        .is_err());
        // Trailing bytes.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(SketchOracle::deserialize(&s, config, &Telemetry::disabled(), &padded).is_err());
    }

    #[test]
    #[should_panic(expected = "Independent Cascade")]
    fn linear_threshold_scenarios_are_rejected() {
        let s = toy_scenario().with_model(imdpp_diffusion::DiffusionModel::LinearThreshold);
        let _ = SketchOracle::build(&s, SketchConfig::fixed(8));
    }

    #[test]
    fn sharded_oracle_matches_the_flat_oracle() {
        let s = toy_scenario();
        let flat = SketchOracle::build(&s, SketchConfig::fixed(256).with_base_seed(41));
        for shards in [2usize, 4, 7] {
            let sharded = SketchOracle::build(
                &s,
                SketchConfig::fixed(256)
                    .with_base_seed(41)
                    .with_shards(shards),
            );
            assert_eq!(sharded.shard_count(), shards);
            assert!(flat.stores_equal(&sharded), "{shards} shards");
            for item in s.items() {
                assert_eq!(
                    flat.estimate_item_adopters(item, &[UserId(0), UserId(3)]),
                    sharded.estimate_item_adopters(item, &[UserId(0), UserId(3)]),
                );
                let a = flat.greedy_seeds(item, 3);
                let b = sharded.greedy_seeds(item, 3);
                assert_eq!(a.seeds, b.seeds);
                assert_eq!(a.covered, b.covered);
            }
            // Construction performs exactly one index build per shard.
            let stats = sharded.index_stats();
            assert_eq!(stats.full_rebuilds, (shards * s.item_count()) as u64);
            assert_eq!(stats.compactions, 0);
        }
    }

    #[test]
    fn sharded_refresh_stays_identical_to_a_sharded_rebuild() {
        let s = toy_scenario();
        let config = SketchConfig::fixed(192).with_base_seed(43).with_shards(3);
        let mut oracle = SketchOracle::build(&s, config);
        let updates = [EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.95,
        }];
        let drifted = s.with_edge_updates(&updates);
        let stats = oracle.apply_edge_update(&drifted, &updates);
        assert!(stats.resampled_sets > 0);
        assert_eq!(stats.full_rebuilds, 0);
        let rebuilt = SketchOracle::build(&drifted, config);
        assert!(oracle.stores_equal(&rebuilt));
        // Construction builds are all the rebuilds the oracle ever did.
        assert_eq!(
            oracle.index_stats().full_rebuilds,
            (3 * s.item_count()) as u64
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let s = toy_scenario();
        let a = SketchOracle::build(
            &s,
            SketchConfig::fixed(128).with_base_seed(3).with_threads(1),
        );
        let b = SketchOracle::build(
            &s,
            SketchConfig::fixed(128).with_base_seed(3).with_threads(4),
        );
        for item in s.items() {
            let sa: Vec<Vec<u32>> = a.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            let sb: Vec<Vec<u32>> = b.store(item).iter().map(|(_, s)| s.to_vec()).collect();
            assert_eq!(sa, sb);
        }
    }
}
