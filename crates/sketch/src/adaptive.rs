//! OPIM/IMM-style adaptive sketch sizing: grow the RR pool geometrically
//! until an `(ε, δ)` stopping rule certifies the estimate, instead of taking
//! a fixed sample count on faith.
//!
//! The rule is the standard multiplicative-Chernoff requirement for
//! estimating a coverage probability `p` with relative error `ε` at
//! confidence `1 − δ`: the number of *covered* sets must reach
//!
//! ```text
//! R · p  ≥  (2 + 2ε/3) · ln(2/δ) / ε²
//! ```
//!
//! Because the left side is exactly the observed coverage count, the check
//! is free given the sketch.  Each unsatisfied round doubles the pool (new
//! sets extend the deterministic stream sequence, so grown sketches remain
//! reproducible and incrementally maintainable).

/// Parameters of the stopping rule.
#[derive(Clone, Copy, Debug)]
pub struct StoppingRule {
    /// Target relative error of the coverage estimate.
    pub epsilon: f64,
    /// Allowed failure probability.
    pub delta: f64,
}

impl StoppingRule {
    /// Creates a rule; panics unless `0 < ε ≤ 1` and `0 < δ < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        StoppingRule { epsilon, delta }
    }

    /// The coverage count `R · p` required before stopping.
    pub fn required_coverage(&self) -> f64 {
        (2.0 + 2.0 * self.epsilon / 3.0) * (2.0 / self.delta).ln() / (self.epsilon * self.epsilon)
    }

    /// Whether an observed coverage count certifies the estimate.
    pub fn is_satisfied(&self, covered_sets: usize) -> bool {
        covered_sets as f64 >= self.required_coverage()
    }
}

/// Outcome of one adaptive growth run.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveReport {
    /// Sets in the sketch when growth stopped.
    pub final_sets: usize,
    /// Doubling rounds performed (0 = the initial sketch already satisfied
    /// the rule).
    pub rounds: usize,
    /// Whether the rule was satisfied (false ⇔ `max_sets` was hit first).
    pub satisfied: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_coverage_shrinks_with_looser_targets() {
        let tight = StoppingRule::new(0.05, 0.01);
        let loose = StoppingRule::new(0.3, 0.1);
        assert!(tight.required_coverage() > loose.required_coverage());
        assert!(loose.required_coverage() > 1.0);
    }

    #[test]
    fn satisfaction_threshold_is_consistent() {
        let rule = StoppingRule::new(0.1, 0.01);
        let need = rule.required_coverage().ceil() as usize;
        assert!(!rule.is_satisfied(need - 1));
        assert!(rule.is_satisfied(need));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_is_rejected() {
        let _ = StoppingRule::new(0.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn unit_delta_is_rejected() {
        let _ = StoppingRule::new(0.1, 1.0);
    }
}
