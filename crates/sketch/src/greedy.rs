//! Greedy max-coverage seed selection over an [`RrStore`] with dense,
//! incrementally-maintained counters.
//!
//! The selection core of TIM/IMM-family algorithms: repeatedly pick the user
//! covering the most not-yet-covered RR sets.  Instead of recounting every
//! user per iteration (the quadratic pattern the toy implementation used),
//! a dense `Vec` of per-user counters is built once and *decremented* as
//! sets become covered — each RR-set entry is touched at most twice overall
//! (CELF-style lazy bookkeeping specialized to exact coverage counts).
//! Ties break deterministically toward the smallest user id.

use crate::sharded::ShardedRrStore;
use crate::store::{RrStore, SetId};
use imdpp_graph::UserId;

/// Users per argmax tile: 4096 × 4 bytes = one 16 KiB block of the counter
/// array — small enough to stay cache-resident while a tile is scanned,
/// large enough that the per-tile bookkeeping is negligible at 10⁶ users.
const ARGMAX_TILE: usize = 4096;

/// The cache-tiled argmax over the dense per-user counters.
///
/// Each tile caches its maximum; a tile is only re-scanned when a decrement
/// dirtied it since the last argmax, and a clean tile whose cached max
/// cannot beat the current best is skipped without touching its counters.
/// At 10⁶ users a selection iteration therefore reads the few dirtied tiles
/// plus one cached word per clean tile instead of streaming 4 MB of
/// counters.  Tiles are scanned in ascending order with the same
/// strictly-greater comparison as the flat loop, so the result — winner
/// *and* tie-break toward the smallest user id — is exactly the flat scan's.
struct TiledArgmax {
    tile_max: Vec<u32>,
    dirty: Vec<bool>,
}

impl TiledArgmax {
    fn new(users: usize) -> Self {
        let tiles = users.div_ceil(ARGMAX_TILE).max(1);
        TiledArgmax {
            tile_max: vec![0; tiles],
            dirty: vec![true; tiles],
        }
    }

    /// Marks the tile containing `user` stale after a counter decrement.
    #[inline]
    fn touch(&mut self, user: usize) {
        self.dirty[user / ARGMAX_TILE] = true;
    }

    /// `(best user, best count)` over `counts`, ties toward the smallest id;
    /// `(0, 0)` when every counter is zero.
    fn argmax(&mut self, counts: &[u32]) -> (usize, u32) {
        let mut best_user = 0usize;
        let mut best_count = 0u32;
        for (t, (cached, dirty)) in self.tile_max.iter_mut().zip(&mut self.dirty).enumerate() {
            let lo = t * ARGMAX_TILE;
            let hi = (lo + ARGMAX_TILE).min(counts.len());
            if *dirty {
                *cached = counts[lo..hi].iter().copied().max().unwrap_or(0);
                *dirty = false;
            }
            if *cached <= best_count {
                continue;
            }
            for (off, &c) in counts[lo..hi].iter().enumerate() {
                if c > best_count {
                    best_count = c;
                    best_user = lo + off;
                }
            }
        }
        (best_user, best_count)
    }
}

/// Result of a greedy max-coverage selection.
#[derive(Clone, Debug, Default)]
pub struct GreedySelection {
    /// Chosen users in selection order.
    pub seeds: Vec<UserId>,
    /// Number of RR sets covered by the chosen users.
    pub covered: usize,
    /// Estimated adopters of the store's item when seeding `seeds`:
    /// `n · covered / |sets|`.
    pub estimated_adopters: f64,
}

/// Selects up to `k` users greedily maximizing RR-set coverage.
///
/// Stops early when no remaining user covers an uncovered set.  Deterministic
/// (ties toward smaller user ids), and `O(total pool size + k · n)`: a local
/// inverted user → set index is built in one pass, the picked user's sets
/// come from that index, and each RR-set entry is decremented exactly once —
/// when its set first becomes covered.
pub fn greedy_max_coverage(store: &RrStore, k: usize) -> GreedySelection {
    let n = store.user_count();
    let total = store.len();
    if n == 0 || total == 0 || k == 0 {
        return GreedySelection::default();
    }

    // A local inverted index (counting-sort CSR, like the store's own, but
    // usable without `&mut RrStore`) plus the dense per-user counts of
    // uncovered sets it implies.
    let (inv_offsets, inv_sets) = local_inverted_index(store, n);
    let mut counts: Vec<u32> = (0..n)
        .map(|u| inv_offsets[u + 1] - inv_offsets[u])
        .collect();

    let mut covered = vec![false; total];
    let mut covered_count = 0usize;
    let mut chosen = Vec::with_capacity(k.min(n));
    let mut argmax = TiledArgmax::new(n);

    for _ in 0..k {
        // Cache-tiled argmax over the dense counters; identical winner and
        // tie-break (smallest id) to a flat scan.
        let (best_user, best_count) = argmax.argmax(&counts);
        if best_count == 0 {
            break;
        }
        chosen.push(UserId(best_user as u32));
        // The picked user's sets come straight from the inverted index;
        // newly covered sets release their members' counts — the incremental
        // update that replaces the per-iteration recount.
        let lo = inv_offsets[best_user] as usize;
        let hi = inv_offsets[best_user + 1] as usize;
        for &id in &inv_sets[lo..hi] {
            if covered[id as usize] {
                continue;
            }
            covered[id as usize] = true;
            covered_count += 1;
            for u in store.set_members(id) {
                counts[u as usize] -= 1;
                argmax.touch(u as usize);
            }
        }
        debug_assert_eq!(counts[best_user], 0);
    }

    GreedySelection {
        estimated_adopters: n as f64 * covered_count as f64 / total as f64,
        seeds: chosen,
        covered: covered_count,
    }
}

/// Selects up to `k` users greedily maximizing RR-set coverage over a
/// sharded store — the same selection as [`greedy_max_coverage`], computed
/// from *per-shard partial counters*.
///
/// Each shard contributes a local inverted index and local per-user counts;
/// the argmax runs over the aggregated (summed) counts and covering a set
/// releases its members' counts shard-locally.  Because the aggregated
/// counters equal the flat store's counters at every step (the shards
/// partition the same multiset of sets) the selection — seeds, order, tie
/// breaks, coverage — is identical to running the flat greedy on the union,
/// for any shard count.
pub fn greedy_max_coverage_sharded(store: &ShardedRrStore, k: usize) -> GreedySelection {
    let n = store.user_count();
    let total = store.len();
    let shard_count = store.shard_count();
    if n == 0 || total == 0 || k == 0 {
        return GreedySelection::default();
    }

    // One local inverted index per shard, and the aggregated per-user
    // counts of uncovered sets (the sum of the per-shard partial counters)
    // read off the index offsets — no second corpus scan.
    let shard_invs: Vec<(Vec<u32>, Vec<SetId>)> = (0..shard_count)
        .map(|si| local_inverted_index(store.shard(si), n))
        .collect();
    let mut counts = vec![0u32; n];
    for (inv_offsets, _) in &shard_invs {
        for (u, count) in counts.iter_mut().enumerate() {
            *count += inv_offsets[u + 1] - inv_offsets[u];
        }
    }

    // Coverage flags indexed by *global* id so `covered_count` and the
    // estimate aggregate across shards.
    let mut covered = vec![false; total];
    let mut covered_count = 0usize;
    let mut chosen = Vec::with_capacity(k.min(n));
    let mut argmax = TiledArgmax::new(n);

    for _ in 0..k {
        let (best_user, best_count) = argmax.argmax(&counts);
        if best_count == 0 {
            break;
        }
        chosen.push(UserId(best_user as u32));
        for (si, (inv_offsets, inv_sets)) in shard_invs.iter().enumerate() {
            let lo = inv_offsets[best_user] as usize;
            let hi = inv_offsets[best_user + 1] as usize;
            for &local in &inv_sets[lo..hi] {
                let global = local as usize * shard_count + si;
                if covered[global] {
                    continue;
                }
                covered[global] = true;
                covered_count += 1;
                for u in store.shard(si).set_members(local) {
                    counts[u as usize] -= 1;
                    argmax.touch(u as usize);
                }
            }
        }
        debug_assert_eq!(counts[best_user], 0);
    }

    GreedySelection {
        estimated_adopters: n as f64 * covered_count as f64 / total as f64,
        seeds: chosen,
        covered: covered_count,
    }
}

/// One counting-sort pass building a local user → set CSR index over a flat
/// store (usable without `&mut RrStore`, unlike the store's own index).
fn local_inverted_index(store: &RrStore, n: usize) -> (Vec<u32>, Vec<SetId>) {
    let mut counts = vec![0u32; n];
    for id in 0..store.len() as SetId {
        for u in store.set_members(id) {
            counts[u as usize] += 1;
        }
    }
    let mut inv_offsets = vec![0u32; n + 1];
    for (u, &c) in counts.iter().enumerate() {
        inv_offsets[u + 1] = inv_offsets[u] + c;
    }
    let mut cursors = inv_offsets.clone();
    let mut inv_sets = vec![0u32; inv_offsets[n] as usize];
    for id in 0..store.len() as SetId {
        for u in store.set_members(id) {
            inv_sets[cursors[u as usize] as usize] = id;
            cursors[u as usize] += 1;
        }
    }
    (inv_offsets, inv_sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_graph::ItemId;

    fn users(ids: &[u32]) -> Vec<UserId> {
        ids.iter().map(|&u| UserId(u)).collect()
    }

    fn store_with(n: usize, sets: &[&[u32]]) -> RrStore {
        let mut s = RrStore::new(ItemId(0), n);
        for set in sets {
            s.push_set(&users(set));
        }
        s
    }

    #[test]
    fn picks_the_dominant_coverer_first() {
        let s = store_with(5, &[&[0, 1], &[0, 2], &[0, 3], &[4]]);
        let sel = greedy_max_coverage(&s, 2);
        assert_eq!(sel.seeds, users(&[0, 4]));
        assert_eq!(sel.covered, 4);
        assert!((sel.estimated_adopters - 5.0).abs() < 1e-12);
    }

    #[test]
    fn stops_when_everything_is_covered() {
        let s = store_with(4, &[&[1], &[1, 2]]);
        let sel = greedy_max_coverage(&s, 10);
        assert_eq!(sel.seeds, users(&[1]));
        assert_eq!(sel.covered, 2);
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let s = store_with(4, &[&[2, 3], &[2, 3]]);
        let sel = greedy_max_coverage(&s, 1);
        assert_eq!(sel.seeds, users(&[2]));
    }

    #[test]
    fn empty_inputs_yield_empty_selection() {
        let s = store_with(4, &[]);
        assert!(greedy_max_coverage(&s, 3).seeds.is_empty());
        let s2 = store_with(4, &[&[0]]);
        assert!(greedy_max_coverage(&s2, 0).seeds.is_empty());
        let sh = ShardedRrStore::new(ItemId(0), 4, 3);
        assert!(greedy_max_coverage_sharded(&sh, 3).seeds.is_empty());
    }

    #[test]
    fn matches_the_legacy_quadratic_greedy() {
        // Moderately sized random-ish instance; compare against a direct
        // reimplementation of the recount-per-iteration greedy.
        let mut sets: Vec<Vec<u32>> = Vec::new();
        let mut x = 12345u64;
        for _ in 0..60 {
            let mut set = Vec::new();
            for u in 0..20u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if x >> 33 & 7 < 2 {
                    set.push(u);
                }
            }
            if set.is_empty() {
                set.push((x >> 40) as u32 % 20);
            }
            sets.push(set);
        }
        let store = store_with(20, &sets.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
        let fast = greedy_max_coverage(&store, 5);

        // The sharded selection must agree with the flat one (and hence with
        // the legacy greedy below) for every shard count.
        for shards in [1usize, 2, 4, 7] {
            let mut sharded = ShardedRrStore::new(ItemId(0), 20, shards);
            for set in &sets {
                sharded.push_set(&users(set));
            }
            let sel = greedy_max_coverage_sharded(&sharded, 5);
            assert_eq!(sel.seeds, fast.seeds, "{shards} shards");
            assert_eq!(sel.covered, fast.covered);
            assert_eq!(sel.estimated_adopters, fast.estimated_adopters);
        }

        // Legacy: recount everything each round.
        let mut covered = vec![false; sets.len()];
        let mut legacy = Vec::new();
        for _ in 0..5 {
            let mut best = (0u32, 0usize);
            for u in 0..20u32 {
                let c = sets
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| !covered[*i] && s.contains(&u))
                    .count();
                if c > best.1 {
                    best = (u, c);
                }
            }
            if best.1 == 0 {
                break;
            }
            legacy.push(UserId(best.0));
            for (i, s) in sets.iter().enumerate() {
                if s.contains(&best.0) {
                    covered[i] = true;
                }
            }
        }
        assert_eq!(fast.seeds, legacy);
    }
}
