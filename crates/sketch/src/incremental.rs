//! Incremental sketch maintenance under perception drift and edge updates —
//! the sample-reuse path (Zhang et al., *A Sample Reuse Strategy for Dynamic
//! Influence Maximization*; Yalavarthi & Khan's local updating).
//!
//! When user perceptions change between promotions, the static triggering
//! probability of an edge `u' → u` (`P_act(u', u) · P_pref(u, item)`) can
//! change.  An RR set's traversal only ever draws randomness *at the nodes
//! it visited* — every visited node is a member of the set — so a set whose
//! members are all unaffected would be re-generated **bit-identically** by
//! its RNG stream against the updated scenario.  Those sets are reused; only
//! sets containing an affected user are re-sampled (found in O(1) per user
//! via the store's inverted index).
//!
//! A perception change at user `c` can move:
//! * `P_pref(c, ·)` — felt on in-edges of `c`, i.e. when `c` is visited,
//! * `P_act(c, w)` and `P_act(v, c)` — influence strengths involving `c`;
//!   the draw for edge `c → w` happens when `w` is visited.
//!
//! Hence the *affected heads* of a perception update at `c` are
//! `{c} ∪ out-neighbours(c)`, and invalidating every set containing an
//! affected head is exact: the refreshed sketch equals a from-scratch
//! rebuild with the same streams (a property the test-suite asserts).
//!
//! The same argument handles **edge updates** (strength changes, insertions,
//! deletions of `v → w`) with an even tighter frontier: the traversal draws
//! for the in-edges of `w` exactly when it visits `w`, and an update to
//! `v → w` changes nothing else about the in-adjacency any *other* node
//! presents (an order-preservation guarantee of
//! `CsrGraph::apply_edge_updates`).  So the affected heads of an edge
//! update are just the *destinations* of the edges that actually changed —
//! see [`edge_update_frontier`] — and a set not containing any such
//! destination replays to the identical member list.
//!
//! Refreshes also patch the store's inverted index incrementally
//! (tombstone-and-append, see [`crate::store`]): the [`RefreshStats`]
//! returned per refresh carries the index-maintenance deltas, and in debug
//! builds every refresh `debug_assert`s the patched index against a full
//! rebuild.

use crate::sharded::ShardedRrStore;
use imdpp_diffusion::Scenario;
use imdpp_graph::{EdgeUpdate, UserId};

pub use imdpp_core::oracle::RefreshStats;

/// Expands a set of perception-changed users to the *affected heads* whose
/// in-edge draws could change: the users themselves plus their social
/// out-neighbours.  Sorted and deduplicated.
pub fn affected_heads(scenario: &Scenario, changed: &[UserId]) -> Vec<UserId> {
    let mut heads: Vec<UserId> = Vec::with_capacity(changed.len() * 2);
    for &c in changed {
        if c.index() >= scenario.user_count() {
            continue;
        }
        heads.push(c);
        for (w, _) in scenario.social().influenced_by(c) {
            heads.push(w);
        }
    }
    heads.sort_unstable();
    heads.dedup();
    heads
}

/// Computes the affected heads of a batch of edge updates against the
/// *pre-update* scenario: the destinations of the edges whose strength
/// actually changes.  Sorted and deduplicated.
///
/// No-op updates — removing an absent edge, re-weighting an absent edge, or
/// setting a strength to its current (clamped) value — contribute nothing,
/// so a fully no-op batch yields an empty frontier and the refresh reuses
/// every RR set.
pub fn edge_update_frontier(before: &Scenario, updates: &[EdgeUpdate]) -> Vec<UserId> {
    let graph = before.social().graph();
    let mut heads: Vec<UserId> = Vec::with_capacity(updates.len());
    for up in updates {
        if up.src().index() >= before.user_count() || up.dst().index() >= before.user_count() {
            continue;
        }
        let changes = match *up {
            EdgeUpdate::Insert { src, dst, weight } => {
                graph.edge_weight(src, dst) != Some(weight.clamp(0.0, 1.0))
            }
            EdgeUpdate::Remove { src, dst } => graph.has_edge(src, dst),
            EdgeUpdate::Reweight { src, dst, weight } => match graph.edge_weight(src, dst) {
                Some(w) => w != weight.clamp(0.0, 1.0),
                None => false,
            },
        };
        if changes {
            heads.push(up.dst());
        }
    }
    heads.sort_unstable();
    heads.dedup();
    heads
}

/// Refreshes one (sharded) store against `updated` (an already-frozen
/// scenario): re-samples exactly the sets containing an affected head,
/// replaying each set's original RNG stream, and reuses everything else.
/// The owning shards' inverted indexes are patched, never rebuilt.
///
/// Delegates to [`ShardedRrStore::refresh`], which fans the frontier out
/// **per shard** (each shard queried, re-sampled and patched on its own
/// worker) and merges the per-shard counters; results and stats are
/// identical for any `(threads, shards)` combination.
pub fn refresh_store(
    store: &mut ShardedRrStore,
    updated: &Scenario,
    base_seed: u64,
    heads: &[UserId],
    threads: usize,
) -> RefreshStats {
    store.refresh(updated, base_seed, heads, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::ItemId;

    #[test]
    fn affected_heads_include_self_and_out_neighbours() {
        let s = toy_scenario();
        // User 0 influences 1 and 2 in the toy graph.
        let heads = affected_heads(&s, &[UserId(0)]);
        assert_eq!(heads, vec![UserId(0), UserId(1), UserId(2)]);
        // User 5 has no out-edges.
        assert_eq!(affected_heads(&s, &[UserId(5)]), vec![UserId(5)]);
        // Out-of-range users are ignored.
        assert!(affected_heads(&s, &[UserId(99)]).is_empty());
    }

    #[test]
    fn edge_update_frontier_contains_only_changed_destinations() {
        let s = toy_scenario();
        // Toy graph has 0 -> 1 (0.6) and no 5 -> 0 edge.
        let updates = [
            // A real strength change: head is the destination 1.
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.9,
            },
            // Setting the current strength: no-op.
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(2),
                weight: 0.5,
            },
            // Removing an absent edge: no-op.
            EdgeUpdate::Remove {
                src: UserId(5),
                dst: UserId(0),
            },
            // Inserting a new edge: head is the destination 0.
            EdgeUpdate::Insert {
                src: UserId(5),
                dst: UserId(4),
                weight: 0.2,
            },
        ];
        assert_eq!(
            edge_update_frontier(&s, &updates),
            vec![UserId(1), UserId(4)]
        );
        // Out-of-range endpoints are ignored.
        let oob = [EdgeUpdate::Insert {
            src: UserId(99),
            dst: UserId(0),
            weight: 0.1,
        }];
        assert!(edge_update_frontier(&s, &oob).is_empty());
        // An upsert to the existing strength is a no-op; clamped weights
        // compare against the stored (clamped) strength.
        let noop = [
            EdgeUpdate::Insert {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.6,
            },
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.6,
            },
        ];
        assert!(edge_update_frontier(&s, &noop).is_empty());
    }

    #[test]
    fn refresh_with_unchanged_scenario_is_a_fixed_point() {
        let s = toy_scenario();
        for shards in [1usize, 3] {
            let mut store = ShardedRrStore::new(ItemId(0), s.user_count(), shards);
            for set in sampler::sample_range(&s, ItemId(0), 11, 0, 128, 2) {
                store.push_set(&set);
            }
            store.rebuild_index();
            let before: Vec<Vec<u32>> = store.iter().map(|(_, set)| set.to_vec()).collect();
            // "Change" a user but hand the identical scenario: the re-sampled
            // sets replay their streams and must come out identical.
            let heads = affected_heads(&s, &[UserId(0)]);
            let stats = refresh_store(&mut store, &s, 11, &heads, 2);
            assert_eq!(stats.total_sets, 128);
            assert!(stats.resampled_sets > 0);
            assert_eq!(stats.full_rebuilds, 0, "refresh must patch, not rebuild");
            assert!(stats.index_entries_patched > 0);
            let after: Vec<Vec<u32>> = store.iter().map(|(_, set)| set.to_vec()).collect();
            assert_eq!(before, after);
            assert!((stats.resampled_fraction() + stats.reused_fraction() - 1.0).abs() < 1e-12);
        }
    }
}
