//! The sketch's pre-resolved telemetry handles.
//!
//! [`SketchMetrics`] bundles every metric the sketch records, resolved once
//! at oracle construction so the hot paths (shard workers, refresh loops)
//! never touch the registry lock.  The handles are `Arc`-backed and `Sync`,
//! so one bundle is shared by reference across the shard workers of
//! [`crate::sharded::ShardedRrStore`].
//!
//! ## Determinism invariant
//!
//! Telemetry is strictly write-only from the sketch's point of view: no
//! recorded value ever feeds an RNG stream or a control-flow decision, so a
//! metered sketch produces bit-identical stores, estimates and
//! [`RefreshStats`](crate::incremental::RefreshStats) to an unmetered one.
//! The *semantic* counters recorded here (`sketch.sets_sampled`,
//! `sketch.sets_resampled`, `sketch.index_entries_patched`, …) are
//! themselves pure functions of the scenario and the update sequence —
//! independent of the shard count and the worker count — which
//! `tests/parallel_determinism.rs` asserts across the whole grid.  Only the
//! timing histograms (`*_ns`) differ between runs.

use imdpp_obs::{Counter, Gauge, Histogram, Telemetry};

/// Every metric the sketch records, as pre-resolved handles.
///
/// [`SketchMetrics::noop`] (also the `Default`) is the disabled form whose
/// record calls cost one branch; [`SketchMetrics::new`] resolves the
/// handles against a live registry.  Cloning shares the underlying cells.
#[derive(Clone, Debug, Default)]
pub struct SketchMetrics {
    /// Wall-clock of one shard worker's slice of a bulk build
    /// (`sketch.shard_build_ns`) — one observation per shard per build, so
    /// the spread across observations measures worker imbalance.
    pub shard_build_ns: Histogram,
    /// Wall-clock of one shard worker's slice of an adaptive extend
    /// (`sketch.shard_extend_ns`).
    pub shard_extend_ns: Histogram,
    /// Wall-clock of one shard worker's slice of an incremental refresh
    /// (`sketch.shard_refresh_ns`).
    pub shard_refresh_ns: Histogram,
    /// Prepared refresh-frontier sizes (`sketch.refresh_frontier_heads`),
    /// one observation per store refresh.
    pub refresh_frontier_heads: Histogram,
    /// Per-refresh resample fraction in permille
    /// (`sketch.refresh_resampled_permille`): `⌊1000 · resampled/total⌋`.
    pub refresh_resampled_permille: Histogram,
    /// RR sets sampled by builds and extends (`sketch.sets_sampled`).
    pub sets_sampled: Counter,
    /// RR sets re-sampled by refreshes (`sketch.sets_resampled`).
    pub sets_resampled: Counter,
    /// RR sets reused (left untouched) by refreshes (`sketch.sets_reused`).
    pub sets_reused: Counter,
    /// Store-level refresh invocations (`sketch.refreshes`).
    pub refreshes: Counter,
    /// Inverted-index entries patched by refreshes
    /// (`sketch.index_entries_patched`) — folds the `RefreshStats` field
    /// into the registry.
    pub index_entries_patched: Counter,
    /// Post-build full index rebuilds observed by refreshes
    /// (`sketch.index_full_rebuilds`) — the scale invariant says this stays
    /// 0; construction-time builds are deliberately *not* counted so the
    /// value is shard-count-independent.
    pub index_full_rebuilds: Counter,
    /// Live compressed-arena bytes across every item store and shard
    /// (`sketch.arena_live_bytes`), overwritten after builds, extends and
    /// refreshes.  Counts *live* encoded spans only — a pure function of
    /// the set contents — because garbage and compaction timing vary with
    /// the shard count, and gauges must stay grid-bit-identical.
    pub arena_live_bytes: Gauge,
}

impl SketchMetrics {
    /// Resolves the handle bundle against `telemetry` (no-op handles when
    /// the registry is disabled).
    pub fn new(telemetry: &Telemetry) -> Self {
        SketchMetrics {
            shard_build_ns: telemetry.histogram("sketch.shard_build_ns"),
            shard_extend_ns: telemetry.histogram("sketch.shard_extend_ns"),
            shard_refresh_ns: telemetry.histogram("sketch.shard_refresh_ns"),
            refresh_frontier_heads: telemetry.histogram("sketch.refresh_frontier_heads"),
            refresh_resampled_permille: telemetry.histogram("sketch.refresh_resampled_permille"),
            sets_sampled: telemetry.counter("sketch.sets_sampled"),
            sets_resampled: telemetry.counter("sketch.sets_resampled"),
            sets_reused: telemetry.counter("sketch.sets_reused"),
            refreshes: telemetry.counter("sketch.refreshes"),
            index_entries_patched: telemetry.counter("sketch.index_entries_patched"),
            index_full_rebuilds: telemetry.counter("sketch.index_full_rebuilds"),
            arena_live_bytes: telemetry.gauge("sketch.arena_live_bytes"),
        }
    }

    /// The disabled bundle: every record call is a single branch.
    pub fn noop() -> Self {
        SketchMetrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_resolves_against_the_registry() {
        let t = Telemetry::new();
        let m = SketchMetrics::new(&t);
        m.sets_sampled.add(3);
        m.shard_build_ns.record(100);
        let snap = t.snapshot();
        assert_eq!(snap.counter("sketch.sets_sampled"), Some(3));
        assert_eq!(snap.histogram("sketch.shard_build_ns").unwrap().count, 1);
    }

    #[test]
    fn noop_records_nothing() {
        let m = SketchMetrics::noop();
        m.sets_sampled.add(3);
        m.refreshes.incr();
        assert_eq!(m.sets_sampled.value(), 0);
        assert_eq!(m.refreshes.value(), 0);
    }

    #[test]
    fn disabled_registry_resolves_to_noop_handles() {
        let m = SketchMetrics::new(&Telemetry::disabled());
        m.sets_resampled.add(7);
        assert_eq!(m.sets_resampled.value(), 0);
    }
}
