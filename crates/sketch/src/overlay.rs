//! Copy-on-write tenant overlays over a shared base sketch.
//!
//! The paper's "dynamic personal perception" is a per-user view of one
//! shared knowledge graph.  Serving N such views as N engines would copy
//! the graph — and the RR sketch — N times; the overlay keeps **one** base
//! [`SketchOracle`] and materializes, per tenant, only the RR sets whose
//! sampling could have observed that tenant's preference deltas:
//!
//! * [`SketchPatch`] holds the tenant's replacement sets — the same
//!   `(set id, resampled members)` pairs a refresh of the base sketch would
//!   produce for the tenant's scenario, built by replaying exactly the
//!   invalidated RNG streams.  Its size is `O(deltas × affected sets)`,
//!   independent of the graph and of every other tenant.
//! * [`PatchedSketch`] is the borrowed view `base ⊕ patch` implementing
//!   [`SpreadOracle`]: coverage counts split into "base sets minus the
//!   patched ids" (answered by the shared arenas) plus "patched
//!   replacements" (answered by the tenant's own little list).
//!
//! ## Why this is exact
//!
//! The sketch's refresh-equals-rebuild invariant says: resampling exactly
//! the sets containing a changed user, against the drifted scenario, yields
//! a store **bit-identical** to building from scratch against that
//! scenario.  A patch replays those same streams against the tenant's
//! scenario, so `base ⊕ patch` holds — set for set — the stores an
//! independent tenant engine would have built.  Coverage counts are
//! integer counts over those sets, and the estimate formula
//! (`importance · n · coverage / total`, summed in ascending item order)
//! is evaluated identically, so every tenant-scoped spread estimate and
//! greedy decision is bit-identical to the N-engines deployment.

use crate::oracle::SketchOracle;
use crate::sampler;
use crate::store::SetId;
use imdpp_core::nominees::Nominee;
use imdpp_core::SpreadOracle;
use imdpp_diffusion::{DynamicsConfig, Scenario};
use imdpp_graph::{ItemId, UserId};

/// One tenant's copy-on-write delta over a base [`SketchOracle`]: for each
/// item, the sorted list of (global set id, resampled members) replacements.
/// Everything not listed here is served from the shared base arenas.
#[derive(Clone, Debug, Default)]
pub struct SketchPatch {
    /// `replaced[x]` = item `x`'s replacements, sorted by global set id;
    /// members are sorted and duplicate-free, exactly as the store encodes
    /// them.
    replaced: Vec<Vec<(SetId, Vec<u32>)>>,
}

impl SketchPatch {
    /// Builds the patch for a tenant whose scenario differs from the base
    /// oracle's by per-user preference deltas on the `(user, item)` pairs in
    /// `changes`.  `tenant` must be the base scenario with exactly those
    /// deltas applied (same graph, same catalogue) — the engine validates
    /// this before calling.
    ///
    /// For each changed pair the base store's sets containing that user are
    /// invalidated (the same frontier [`SketchOracle::apply_preference_update`]
    /// refreshes), and each invalidated stream is replayed against the
    /// tenant's frozen scenario — set id equals RNG stream id, so the
    /// replacements are bit-identical to the sets a tenant-owned sketch
    /// would hold.
    pub fn build(base: &SketchOracle, tenant: &Scenario, changes: &[(UserId, ItemId)]) -> Self {
        let frozen = tenant.with_dynamics(DynamicsConfig::frozen());
        let item_count = frozen.item_count();
        let base_seed = base.config().base_seed;
        let mut by_item: Vec<Vec<UserId>> = vec![Vec::new(); item_count];
        for &(u, x) in changes {
            if x.index() < item_count {
                by_item[x.index()].push(u);
            }
        }
        let mut replaced: Vec<Vec<(SetId, Vec<u32>)>> = vec![Vec::new(); item_count];
        for (x, users) in by_item.iter().enumerate() {
            if users.is_empty() {
                continue;
            }
            let item = ItemId(x as u32);
            let store = base.store(item);
            for id in store.sets_touching_shared(users) {
                // Global set id == RNG stream id, for any shard count.
                let set = sampler::sample_set(&frozen, item, base_seed, u64::from(id));
                let mut members: Vec<u32> = set.iter().map(|u| u.0).collect();
                members.sort_unstable();
                members.dedup();
                replaced[x].push((id, members));
            }
        }
        SketchPatch { replaced }
    }

    /// Number of replaced sets across all items — the patch's size in the
    /// `O(deltas)` memory argument.
    pub fn replaced_sets(&self) -> usize {
        self.replaced.iter().map(|r| r.len()).sum()
    }

    /// True when the patch replaces nothing (the tenant's deltas touched no
    /// sampled set): the overlay then serves pure base answers.
    pub fn is_empty(&self) -> bool {
        self.replaced.iter().all(|r| r.is_empty())
    }

    /// Approximate heap footprint of the patch in bytes — the quantity the
    /// serving tier's O(deltas) memory gate compares against N full
    /// sketches.
    pub fn heap_bytes(&self) -> u64 {
        let mut bytes =
            (self.replaced.capacity() * std::mem::size_of::<Vec<(SetId, Vec<u32>)>>()) as u64;
        for per_item in &self.replaced {
            bytes += (per_item.capacity() * std::mem::size_of::<(SetId, Vec<u32>)>()) as u64;
            for (_, members) in per_item {
                bytes += (members.capacity() * std::mem::size_of::<u32>()) as u64;
            }
        }
        bytes
    }

    /// The sorted replaced set ids of one item (empty when untouched).
    fn skip_ids(&self, x: usize) -> Vec<SetId> {
        self.replaced
            .get(x)
            .map(|r| r.iter().map(|&(id, _)| id).collect())
            .unwrap_or_default()
    }
}

/// The borrowed tenant view `base ⊕ patch`: a [`SpreadOracle`] whose
/// coverage counts come from the shared base arenas for unpatched sets and
/// from the patch's replacement lists for patched ones.  Construction
/// borrows both sides — nothing is copied, so a query through this view
/// costs the same order of work as a base query plus `O(patch)` extras.
#[derive(Clone, Copy, Debug)]
pub struct PatchedSketch<'a> {
    base: &'a SketchOracle,
    patch: &'a SketchPatch,
}

impl<'a> PatchedSketch<'a> {
    /// Couples a base oracle with one tenant's patch.  The patch must have
    /// been built against this base ([`SketchPatch::build`]); set ids in it
    /// index the base's stores.
    pub fn new(base: &'a SketchOracle, patch: &'a SketchPatch) -> Self {
        PatchedSketch { base, patch }
    }

    /// Coverage count of `users` against item `x`'s patched store: base
    /// sets excluding the replaced ids, plus replacements that contain a
    /// marked user.
    fn coverage(&self, x: usize, marked: &[bool]) -> usize {
        let store = self.base.store(ItemId(x as u32));
        let skip = self.patch.skip_ids(x);
        let mut covered = store.coverage_count_marked_excluding(marked, &skip);
        if let Some(per_item) = self.patch.replaced.get(x) {
            covered += per_item
                .iter()
                .filter(|(_, members)| members.iter().any(|&u| marked[u as usize]))
                .count();
        }
        covered
    }
}

impl SpreadOracle for PatchedSketch<'_> {
    /// The tenant-scoped `f(N)`: identical formula and summation order to
    /// [`SketchOracle::static_spread`], with each item's coverage integer
    /// computed over `base ⊕ patch` — bit-identical to the estimate of an
    /// independently built tenant sketch (see the module docs).
    fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        if nominees.is_empty() {
            return 0.0;
        }
        let scenario = self.base.scenario();
        let user_count = scenario.user_count();
        let item_count = scenario.item_count();
        let mut by_item: Vec<Vec<UserId>> = vec![Vec::new(); item_count];
        for &(u, x) in nominees {
            if x.index() < item_count {
                by_item[x.index()].push(u);
            }
        }
        let mut marked = vec![false; user_count];
        by_item
            .iter()
            .enumerate()
            .filter(|(_, users)| !users.is_empty())
            .map(|(x, users)| {
                marked.fill(false);
                for &u in users {
                    if u.index() < user_count {
                        marked[u.index()] = true;
                    }
                }
                let item = ItemId(x as u32);
                let store = self.base.store(item);
                let estimate = if store.is_empty() {
                    0.0
                } else {
                    user_count as f64 * self.coverage(x, &marked) as f64 / store.len() as f64
                };
                scenario.catalog().importance(item) * estimate
            })
            .sum()
    }

    fn name(&self) -> &'static str {
        "rr-sketch-overlay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SketchConfig;
    use imdpp_diffusion::scenario::toy_scenario;

    fn deltas() -> Vec<(UserId, ItemId, f64)> {
        vec![(UserId(1), ItemId(2), 0.9), (UserId(3), ItemId(0), 0.2)]
    }

    fn pairs(d: &[(UserId, ItemId, f64)]) -> Vec<(UserId, ItemId)> {
        d.iter().map(|&(u, x, _)| (u, x)).collect()
    }

    #[test]
    fn patched_view_is_bit_identical_to_a_tenant_built_sketch() {
        let s = toy_scenario();
        let d = deltas();
        let tenant = s.with_base_preferences(&d);
        for shards in [1usize, 2, 4] {
            let config = SketchConfig::fixed(192)
                .with_base_seed(13)
                .with_shards(shards);
            let base = SketchOracle::build(&s, config);
            let independent = SketchOracle::build(&tenant, config);
            let patch = SketchPatch::build(&base, &tenant, &pairs(&d));
            let view = PatchedSketch::new(&base, &patch);
            assert_eq!(view.name(), "rr-sketch-overlay");

            let probes: &[&[Nominee]] = &[
                &[(UserId(0), ItemId(0))],
                &[(UserId(1), ItemId(2))],
                &[(UserId(3), ItemId(0)), (UserId(1), ItemId(2))],
                &[
                    (UserId(0), ItemId(0)),
                    (UserId(2), ItemId(1)),
                    (UserId(4), ItemId(2)),
                ],
                &[(UserId(999), ItemId(0))],
                &[],
            ];
            for probe in probes {
                assert_eq!(
                    view.static_spread(probe).to_bits(),
                    independent.static_spread(probe).to_bits(),
                    "{shards} shards, probe {probe:?}"
                );
            }
            // Marginals — the greedy loop's primitive — agree too.
            let basep = [(UserId(0), ItemId(0))];
            assert_eq!(
                view.marginal_gain(&basep, (UserId(1), ItemId(2))).to_bits(),
                independent
                    .marginal_gain(&basep, (UserId(1), ItemId(2)))
                    .to_bits(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn patch_is_small_and_empty_for_noop_deltas() {
        let s = toy_scenario();
        let base = SketchOracle::build(&s, SketchConfig::fixed(128).with_base_seed(13));
        let d = deltas();
        let tenant = s.with_base_preferences(&d);
        let patch = SketchPatch::build(&base, &tenant, &pairs(&d));
        assert!(!patch.is_empty());
        assert!(patch.replaced_sets() > 0);
        // The patch replaces only sets containing the changed users — a
        // strict subset of the base sketch.
        assert!(patch.replaced_sets() < base.total_sets());
        assert!(patch.heap_bytes() > 0);

        // No deltas → empty patch → the view answers pure base numbers.
        let empty = SketchPatch::build(&base, &s, &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.replaced_sets(), 0);
        let view = PatchedSketch::new(&base, &empty);
        let probe = [(UserId(0), ItemId(0)), (UserId(2), ItemId(1))];
        assert_eq!(
            view.static_spread(&probe).to_bits(),
            base.static_spread(&probe).to_bits()
        );
    }

    #[test]
    fn out_of_range_changes_are_ignored_like_the_refresh_path() {
        let s = toy_scenario();
        let base = SketchOracle::build(&s, SketchConfig::fixed(64).with_base_seed(13));
        // An item past the catalogue is dropped, not panicked on.
        let patch = SketchPatch::build(&base, &s, &[(UserId(0), ItemId(999))]);
        assert!(patch.is_empty());
    }
}
