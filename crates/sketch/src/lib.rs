//! # imdpp-sketch
//!
//! A reverse-reachable (RR) sketch influence oracle for the IMDPP suite:
//! the estimation engine that replaces per-query forward Monte-Carlo with an
//! amortized pool of RR samples, in the spirit of TIM/IMM/OPIM, extended
//! with **incremental sample reuse** for the dynamic-perception setting
//! (Yalavarthi & Khan's local updating; Zhang et al.'s sample reuse).
//!
//! Components:
//!
//! * [`arena`] — the delta/varint codec of the compressed RR-set arena
//!   (sorted member lists, ~2–4× smaller than a raw `u32` pool) and the
//!   zero-allocation [`SetMembers`] decoder,
//! * [`store`] — the flat, arena-backed [`RrStore`]:
//!   CSR-style spans into one shared compressed arena plus an
//!   *incrementally maintained* inverted user → set index (tombstone +
//!   append + periodic compaction, never a post-build counting rebuild),
//!   with checked-capacity insertion paths
//!   (`ImdppError::CapacityExceeded` instead of silent offset wraparound),
//! * [`sharded`] — [`ShardedRrStore`]: the same sets partitioned across
//!   `S` shards (deterministic `id mod S` placement), each shard owning
//!   its own arena and index; estimates and selections are
//!   shard-count-independent,
//! * [`sampler`] — parallel RR-set generation with deterministic per-sample
//!   RNG streams (thread-count-independent, replayable in isolation),
//! * [`adaptive`] — the OPIM-style `(ε, δ)` stopping rule that sizes the
//!   sketch instead of a fixed sample count,
//! * [`incremental`] — invalidate-and-resample maintenance that reuses every
//!   RR set a perception drift or an *edge update* (strength change,
//!   insertion, deletion) could not have touched,
//! * [`maintain`] — maintained-solution repair: intersect a tracked
//!   refresh's touched users with a cached greedy trace, re-run CELF from
//!   the first invalidated position, and keep the repaired seed set while
//!   it stays within a configurable bound of fresh greedy,
//! * [`greedy`] — dense-counter CELF-style greedy max-coverage selection,
//! * [`oracle`] — [`SketchOracle`], the `imdpp_core::SpreadOracle`
//!   implementation callers plug into nominee selection and baselines; it
//!   also implements `imdpp_core::RefreshableOracle` for the adaptive loop,
//! * [`dispatch`] — [`ConfiguredOracle`], the one place the
//!   `DysimConfig::oracle` knob resolves to a concrete estimator (consumed
//!   by the `imdpp-engine` `Engine`),
//! * [`telemetry`] — [`SketchMetrics`], the pre-resolved `imdpp-obs`
//!   handles the build/extend/refresh paths record into (per-shard
//!   wall-clock, sampled/resampled-set counters, frontier sizes); recording
//!   never feeds the RNG, so metered runs stay bit-identical.
//!
//! See `docs/ARCHITECTURE.md` for when to pick the sketch oracle over
//! forward Monte-Carlo, and `docs/QUICKSTART.md` for a guided tour.
//!
//! # Example: build, query, and incrementally maintain a sketch
//!
//! ```
//! use imdpp_diffusion::scenario::toy_scenario;
//! use imdpp_graph::{EdgeUpdate, ItemId, UserId};
//! use imdpp_sketch::{SketchConfig, SketchOracle, SpreadOracle};
//!
//! let scenario = toy_scenario();
//! let config = SketchConfig::fixed(512).with_base_seed(7);
//! let mut oracle = SketchOracle::build(&scenario, config);
//!
//! // f(N) answered from the amortized RR pool.
//! let f = oracle.static_spread(&[(UserId(0), ItemId(0))]);
//! assert!(f >= 1.0);
//!
//! // An influence edge strengthens between promotions: re-sample only the
//! // RR sets whose traversal could have crossed it...
//! let update = [EdgeUpdate::Reweight {
//!     src: UserId(0),
//!     dst: UserId(1),
//!     weight: 0.9,
//! }];
//! let drifted = scenario.with_edge_updates(&update);
//! let stats = oracle.apply_edge_update(&drifted, &update);
//! assert!(stats.resampled_sets < stats.total_sets);
//!
//! // ...and the refreshed sketch is bit-identical to a from-scratch rebuild.
//! let rebuilt = SketchOracle::build(&drifted, config);
//! assert_eq!(
//!     oracle.static_spread(&[(UserId(0), ItemId(0))]),
//!     rebuilt.static_spread(&[(UserId(0), ItemId(0))]),
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod arena;
pub mod dispatch;
pub mod greedy;
pub mod incremental;
pub mod maintain;
pub mod oracle;
pub mod overlay;
pub mod persist;
pub mod sampler;
pub mod sharded;
pub mod store;
pub mod telemetry;

pub use adaptive::{AdaptiveReport, StoppingRule};
pub use arena::SetMembers;
pub use dispatch::ConfiguredOracle;
pub use greedy::{greedy_max_coverage, greedy_max_coverage_sharded, GreedySelection};
pub use incremental::{affected_heads, edge_update_frontier, RefreshStats};
pub use maintain::{first_invalidated_position, repair_nominees, RepairOutcome, RepairStats};
pub use oracle::SketchOracle;
pub use overlay::{PatchedSketch, SketchPatch};
pub use sampler::effective_threads;
pub use sharded::ShardedRrStore;
pub use store::{IndexStats, RrStore, SetId};
pub use telemetry::SketchMetrics;

pub use imdpp_core::{RefreshableOracle, ScenarioUpdate, SpreadOracle};
pub use imdpp_graph::{EdgeUpdate, ItemId, UserId};

/// Construction parameters of a [`SketchOracle`].
#[derive(Clone, Copy, Debug)]
pub struct SketchConfig {
    /// Base seed of the deterministic per-set RNG streams.
    pub base_seed: u64,
    /// RR sets sampled per item at construction.
    pub initial_sets: usize,
    /// Hard cap on RR sets per item under adaptive growth.
    pub max_sets: usize,
    /// Target relative error of the `(ε, δ)` stopping rule.
    pub epsilon: f64,
    /// Failure probability of the `(ε, δ)` stopping rule.
    pub delta: f64,
    /// Worker threads for sampling and shard-parallel maintenance.
    ///
    /// This is *the* definition of the convention every path follows
    /// (resolved by `sampler::effective_threads`):
    ///
    /// * **`0` means auto** — use every core `available_parallelism`
    ///   reports,
    /// * any explicit count is capped at `available_parallelism` and at
    ///   the available work (streams to sample, shards to refresh), and
    ///   floors at 1 (sequential),
    /// * on sharded stores the unit of parallelism is the **shard**: each
    ///   shard builds/refreshes on its own worker, so full utilization
    ///   wants `shards >= threads`; a single-shard store parallelizes over
    ///   sampling streams instead.
    ///
    /// Results are bit-identical for every value — each RR set is its own
    /// deterministic RNG stream (`set id == stream id`), so the thread
    /// count only changes wall-clock, never estimates, seeds or refresh
    /// statistics.
    pub threads: usize,
    /// Shards each item's RR store is partitioned across (`1` = the flat
    /// store; `0` is treated as `1`).  Set → shard assignment is the pure
    /// function `id mod shards`, so estimates, greedy selections and
    /// refresh results are shard-count-independent.
    pub shards: usize,
}

impl Default for SketchConfig {
    fn default() -> Self {
        SketchConfig {
            base_seed: 7,
            initial_sets: 256,
            max_sets: 32_768,
            epsilon: 0.1,
            delta: 0.01,
            threads: 0, // auto: every available core (see the field docs)
            shards: 1,
        }
    }
}

impl SketchConfig {
    /// A configuration with a fixed set count (adaptive growth disabled);
    /// used where exact reproducibility against a rebuild matters.
    pub fn fixed(sets: usize) -> Self {
        SketchConfig {
            initial_sets: sets,
            max_sets: sets,
            ..SketchConfig::default()
        }
    }

    /// Replaces the base RNG seed.
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Replaces the worker-thread count (`0` = auto; see
    /// [`SketchConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replaces the shard count of each item's RR store.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_config_disables_growth() {
        let c = SketchConfig::fixed(100)
            .with_base_seed(5)
            .with_threads(2)
            .with_shards(4);
        assert_eq!(c.initial_sets, 100);
        assert_eq!(c.max_sets, 100);
        assert_eq!(c.base_seed, 5);
        assert_eq!(c.threads, 2);
        assert_eq!(c.shards, 4);
    }

    #[test]
    fn default_config_is_sane() {
        let c = SketchConfig::default();
        assert!(c.initial_sets > 0);
        assert!(c.max_sets >= c.initial_sets);
        assert!(c.epsilon > 0.0 && c.delta > 0.0);
        assert_eq!(c.threads, 0, "default threads is 0 = auto");
        assert_eq!(c.shards, 1);
    }
}
