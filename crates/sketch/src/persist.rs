//! Checked binary codec for sketch/engine snapshot persistence.
//!
//! The warm-restart path (`imdpp_engine::Engine::persist` / `restore`)
//! serializes the RR stores with the same LEB128 varint layout the arena
//! already uses (see [`crate::arena`]), so a persisted sketch is written
//! span-for-span and restored byte-for-byte — no re-encoding, no
//! re-sampling.  Unlike the in-memory decoder, every reader here is
//! **checked**: the arena's internal `read_varint` may index past a truncated
//! buffer because the in-process encoder can never produce one, but a file
//! read back from disk can be truncated, corrupted or of the wrong version,
//! so these readers return [`ImdppError::InvalidConfig`] instead of
//! panicking.
//!
//! All multi-byte scalars are little-endian; `f64` values round-trip through
//! [`f64::to_bits`] so restored estimates are bit-identical, never
//! formatted.

use imdpp_diffusion::ImdppError;

/// A persistence-format violation: truncated buffer, bad magic, or a value
/// that fails validation.  All decode errors funnel through here so the
/// engine surfaces one typed error kind for corrupt snapshot files.
pub fn corrupt(context: &str) -> ImdppError {
    ImdppError::invalid(format!("snapshot data corrupt: {context}"))
}

/// Appends one LEB128 varint (`u32`) to `out`.
pub fn write_varint(mut value: u32, out: &mut Vec<u8>) {
    while value >= 0x80 {
        out.push((value as u8 & 0x7F) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Appends one LEB128 varint (`u64`) to `out`.
pub fn write_varint64(mut value: u64, out: &mut Vec<u8>) {
    while value >= 0x80 {
        out.push((value as u8 & 0x7F) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Appends one `f64` as its raw little-endian bit pattern.
pub fn write_f64(value: f64, out: &mut Vec<u8>) {
    out.extend_from_slice(&value.to_bits().to_le_bytes());
}

/// Decodes one checked LEB128 varint (`u32`), advancing `input`.
///
/// # Errors
/// [`ImdppError::InvalidConfig`] on a truncated buffer or a varint that
/// overflows 32 bits.
pub fn read_varint(input: &mut &[u8]) -> Result<u32, ImdppError> {
    let wide = read_varint64(input)?;
    u32::try_from(wide).map_err(|_| corrupt("varint overflows u32"))
}

/// Decodes one checked LEB128 varint (`u64`), advancing `input`.
///
/// # Errors
/// [`ImdppError::InvalidConfig`] on a truncated buffer or a varint that
/// overflows 64 bits.
pub fn read_varint64(input: &mut &[u8]) -> Result<u64, ImdppError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in input.iter().enumerate() {
        if shift >= 64 || (shift == 63 && b & 0x7F > 1) {
            return Err(corrupt("varint overflows u64"));
        }
        value |= u64::from(b & 0x7F) << shift;
        if b < 0x80 {
            *input = &input[i + 1..];
            return Ok(value);
        }
        shift += 7;
    }
    Err(corrupt("truncated varint"))
}

/// Reads one `f64` from its raw little-endian bit pattern, advancing
/// `input`.
///
/// # Errors
/// [`ImdppError::InvalidConfig`] on a truncated buffer.
pub fn read_f64(input: &mut &[u8]) -> Result<f64, ImdppError> {
    let bytes = take(input, 8)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(bytes);
    Ok(f64::from_bits(u64::from_le_bytes(raw)))
}

/// Splits the next `n` bytes off the front of `input`.
///
/// # Errors
/// [`ImdppError::InvalidConfig`] when fewer than `n` bytes remain.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], ImdppError> {
    if input.len() < n {
        return Err(corrupt("truncated buffer"));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

/// Validates one delta/varint-encoded RR-set span without trusting it: the
/// encoded bytes must decode to exactly `members` strictly increasing user
/// ids, all below `user_count`, consuming exactly the span's bytes.  This is
/// the gate that lets [`crate::store::RrStore`] append file-sourced spans
/// verbatim and still uphold every arena invariant the in-process encoder
/// guarantees.
///
/// # Errors
/// [`ImdppError::InvalidConfig`] describing the first violation.
pub fn validate_span(bytes: &[u8], members: u32, user_count: usize) -> Result<(), ImdppError> {
    let mut cursor = bytes;
    let mut prev = 0u64;
    for i in 0..members {
        let delta = u64::from(read_varint(&mut cursor)?);
        let value = if i == 0 { delta } else { prev + delta + 1 };
        if value >= user_count as u64 {
            return Err(corrupt("span member exceeds the scenario's user count"));
        }
        prev = value;
    }
    if !cursor.is_empty() {
        return Err(corrupt("span has trailing bytes past its member count"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_round_trip_checked() {
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(read_varint(&mut cursor).unwrap(), v);
            assert!(cursor.is_empty());
        }
        for v in [0u64, 127, 1 << 35, u64::MAX] {
            let mut buf = Vec::new();
            write_varint64(v, &mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(read_varint64(&mut cursor).unwrap(), v);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn truncated_and_overflowing_varints_error_instead_of_panicking() {
        // A continuation byte with nothing after it.
        let mut cursor: &[u8] = &[0x80];
        assert!(read_varint64(&mut cursor).is_err());
        // Ten continuation bytes overflow u64.
        let mut cursor: &[u8] = &[0xFF; 11];
        assert!(read_varint64(&mut cursor).is_err());
        // A valid u64 varint that exceeds u32 fails the narrow reader.
        let mut buf = Vec::new();
        write_varint64(u64::from(u32::MAX) + 1, &mut buf);
        let mut cursor = buf.as_slice();
        assert!(read_varint(&mut cursor).is_err());
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, 1e300, f64::INFINITY] {
            let mut buf = Vec::new();
            write_f64(v, &mut buf);
            let mut cursor = buf.as_slice();
            assert_eq!(read_f64(&mut cursor).unwrap().to_bits(), v.to_bits());
        }
        let mut cursor: &[u8] = &[0u8; 7];
        assert!(read_f64(&mut cursor).is_err());
    }

    #[test]
    fn take_respects_the_buffer_end() {
        let mut cursor: &[u8] = &[1, 2, 3];
        assert_eq!(take(&mut cursor, 2).unwrap(), &[1, 2]);
        assert!(take(&mut cursor, 2).is_err());
        assert_eq!(take(&mut cursor, 1).unwrap(), &[3]);
    }

    #[test]
    fn span_validation_accepts_the_encoder_and_rejects_corruption() {
        let mut buf = Vec::new();
        let bytes = crate::arena::encode_set(&[1, 4, 5], &mut buf);
        assert_eq!(bytes, buf.len());
        assert!(validate_span(&buf, 3, 6).is_ok());
        // Wrong member count: too few bytes or trailing bytes.
        assert!(validate_span(&buf, 4, 6).is_err());
        assert!(validate_span(&buf, 2, 6).is_err());
        // Out-of-range member.
        assert!(validate_span(&buf, 3, 5).is_err());
        // Empty spans are valid.
        assert!(validate_span(&[], 0, 6).is_ok());
    }
}
