//! The flat, arena-backed RR-set store.
//!
//! Replaces the toy `Vec<Vec<UserId>>` layout of `imdpp_diffusion::ris` with
//! a CSR-style arena: every RR set is a `(start, len)` span into one shared
//! `Vec<u32>` pool, giving one allocation for the whole sketch and cache-
//! friendly scans during coverage counting.  An inverted user → set index
//! (also CSR) answers "which sets does user `u` appear in?" — the query that
//! drives both CELF-style greedy selection and incremental invalidation.
//!
//! Sets are identified by a stable `SetId` (their stream id — see
//! [`crate::sampler`]); replacing a set appends its new span to the pool and
//! tombstones the old one.  Dead pool entries are tracked and the arena is
//! compacted automatically once more than half of it is garbage.

use imdpp_graph::{ItemId, UserId};

/// Identifier of one RR set inside a store.  Stable across replacements and
/// equal to the RNG stream id that generated the set.
pub type SetId = u32;

/// A collection of reverse-reachable sets for one item, stored in a shared
/// arena with an inverted user → set index.
#[derive(Clone, Debug)]
pub struct RrStore {
    item: ItemId,
    user_count: usize,
    /// Per-set `(start, len)` spans into `pool`.
    spans: Vec<(u32, u32)>,
    /// The arena of user ids; live spans point into it.
    pool: Vec<u32>,
    /// Number of dead (tombstoned) entries in `pool`.
    garbage: usize,
    /// CSR offsets of the inverted index (`user_count + 1` entries).
    inv_offsets: Vec<u32>,
    /// Set ids, grouped by user according to `inv_offsets`.
    inv_sets: Vec<SetId>,
    /// Whether the inverted index must be rebuilt before use.
    inv_dirty: bool,
}

impl RrStore {
    /// Creates an empty store for `item` over `user_count` users.
    pub fn new(item: ItemId, user_count: usize) -> Self {
        RrStore {
            item,
            user_count,
            spans: Vec::new(),
            pool: Vec::new(),
            garbage: 0,
            inv_offsets: vec![0; user_count + 1],
            inv_sets: Vec::new(),
            inv_dirty: false,
        }
    }

    /// The item the sets were sampled for.
    pub fn item(&self) -> ItemId {
        self.item
    }

    /// Number of users in the underlying scenario.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total number of live user entries across all sets.
    pub fn live_entries(&self) -> usize {
        self.pool.len() - self.garbage
    }

    /// Fraction of the arena occupied by tombstoned entries.
    pub fn garbage_ratio(&self) -> f64 {
        if self.pool.is_empty() {
            0.0
        } else {
            self.garbage as f64 / self.pool.len() as f64
        }
    }

    /// Appends a new set, returning its id (always `len() - 1` afterwards).
    pub fn push_set(&mut self, users: &[UserId]) -> SetId {
        let start = self.pool.len() as u32;
        self.pool.extend(users.iter().map(|u| u.0));
        self.spans.push((start, users.len() as u32));
        self.inv_dirty = true;
        (self.spans.len() - 1) as SetId
    }

    /// Replaces the contents of set `id`, tombstoning its old span.
    pub fn replace_set(&mut self, id: SetId, users: &[UserId]) {
        let old_len = self.spans[id as usize].1 as usize;
        self.garbage += old_len;
        let start = self.pool.len() as u32;
        self.pool.extend(users.iter().map(|u| u.0));
        self.spans[id as usize] = (start, users.len() as u32);
        self.inv_dirty = true;
        if self.garbage_ratio() > 0.5 {
            self.compact();
        }
    }

    /// The users of set `id`.
    pub fn set(&self, id: SetId) -> &[u32] {
        let (start, len) = self.spans[id as usize];
        &self.pool[start as usize..(start + len) as usize]
    }

    /// Iterator over `(id, users)` pairs of all sets.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, &[u32])> + '_ {
        self.spans.iter().enumerate().map(|(i, &(start, len))| {
            (
                i as SetId,
                &self.pool[start as usize..(start + len) as usize],
            )
        })
    }

    /// Rewrites the arena without tombstones (spans keep their ids).
    pub fn compact(&mut self) {
        if self.garbage == 0 {
            return;
        }
        let mut pool = Vec::with_capacity(self.live_entries());
        for (start, len) in self.spans.iter_mut() {
            let old = *start as usize..(*start + *len) as usize;
            *start = pool.len() as u32;
            pool.extend_from_slice(&self.pool[old]);
        }
        self.pool = pool;
        self.garbage = 0;
    }

    /// Rebuilds the inverted user → set index (counting-sort CSR build).
    pub fn rebuild_index(&mut self) {
        let mut counts = vec![0u32; self.user_count + 1];
        for &(start, len) in &self.spans {
            for &u in &self.pool[start as usize..(start + len) as usize] {
                counts[u as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        self.inv_offsets = counts;
        let mut cursors = self.inv_offsets.clone();
        self.inv_sets = vec![0; *self.inv_offsets.last().unwrap() as usize];
        for (id, &(start, len)) in self.spans.iter().enumerate() {
            for &u in &self.pool[start as usize..(start + len) as usize] {
                self.inv_sets[cursors[u as usize] as usize] = id as SetId;
                cursors[u as usize] += 1;
            }
        }
        self.inv_dirty = false;
    }

    /// The ids of the sets containing `user` (rebuilds the index if stale).
    pub fn sets_of(&mut self, user: UserId) -> &[SetId] {
        if self.inv_dirty {
            self.rebuild_index();
        }
        let lo = self.inv_offsets[user.index()] as usize;
        let hi = self.inv_offsets[user.index() + 1] as usize;
        &self.inv_sets[lo..hi]
    }

    /// The sorted, deduplicated ids of all sets containing any of `users`
    /// — the invalidation frontier of an update touching those users.
    pub fn sets_touching(&mut self, users: &[UserId]) -> Vec<SetId> {
        if self.inv_dirty {
            self.rebuild_index();
        }
        let mut ids = Vec::new();
        for &u in users {
            if u.index() >= self.user_count {
                continue;
            }
            let lo = self.inv_offsets[u.index()] as usize;
            let hi = self.inv_offsets[u.index() + 1] as usize;
            ids.extend_from_slice(&self.inv_sets[lo..hi]);
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of sets hit by the given seed users.
    pub fn coverage_count(&self, seeds: &[UserId]) -> usize {
        if self.spans.is_empty() || seeds.is_empty() {
            return 0;
        }
        let mut marked = vec![false; self.user_count];
        for &u in seeds {
            if u.index() < self.user_count {
                marked[u.index()] = true;
            }
        }
        self.spans
            .iter()
            .filter(|&&(start, len)| {
                self.pool[start as usize..(start + len) as usize]
                    .iter()
                    .any(|&u| marked[u as usize])
            })
            .count()
    }

    /// Unbiased estimate of the expected number of adopters of the store's
    /// item when `seeds` are seeded in the first promotion:
    /// `n · (fraction of RR sets hit)`.
    pub fn estimate_adopters(&self, seeds: &[UserId]) -> f64 {
        if self.spans.is_empty() {
            return 0.0;
        }
        self.user_count as f64 * self.coverage_count(seeds) as f64 / self.spans.len() as f64
    }

    /// Standard error of [`Self::estimate_adopters`] under the binomial
    /// coverage model — used by 3σ agreement tests and the adaptive sampler.
    pub fn estimate_std_error(&self, seeds: &[UserId]) -> f64 {
        let r = self.spans.len();
        if r < 2 {
            return 0.0;
        }
        let p = self.coverage_count(seeds) as f64 / r as f64;
        self.user_count as f64 * (p * (1.0 - p) / r as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(ids: &[u32]) -> Vec<UserId> {
        ids.iter().map(|&u| UserId(u)).collect()
    }

    fn store_with(sets: &[&[u32]]) -> RrStore {
        let mut s = RrStore::new(ItemId(0), 6);
        for set in sets {
            s.push_set(&users(set));
        }
        s
    }

    #[test]
    fn push_and_read_back() {
        let s = store_with(&[&[0, 1], &[2], &[3, 4, 5]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.set(0), &[0, 1]);
        assert_eq!(s.set(2), &[3, 4, 5]);
        assert_eq!(s.live_entries(), 6);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn inverted_index_answers_membership() {
        let mut s = store_with(&[&[0, 1], &[1, 2], &[2]]);
        assert_eq!(s.sets_of(UserId(1)), &[0, 1]);
        assert_eq!(s.sets_of(UserId(2)), &[1, 2]);
        assert_eq!(s.sets_of(UserId(5)), &[] as &[SetId]);
        assert_eq!(s.sets_touching(&users(&[0, 2])), vec![0, 1, 2]);
        assert_eq!(s.sets_touching(&users(&[5])), Vec::<SetId>::new());
    }

    #[test]
    fn replace_tombstones_and_reindexes() {
        let mut s = store_with(&[&[0, 1], &[1, 2]]);
        s.replace_set(0, &users(&[3]));
        assert_eq!(s.set(0), &[3]);
        assert_eq!(s.sets_of(UserId(1)), &[1]);
        assert_eq!(s.sets_of(UserId(3)), &[0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut s = store_with(&[&[0, 1, 2], &[3, 4]]);
        // Two replacements push garbage over 50% and trigger compaction.
        s.replace_set(0, &users(&[5]));
        s.replace_set(1, &users(&[0]));
        assert_eq!(s.garbage_ratio(), 0.0);
        assert_eq!(s.set(0), &[5]);
        assert_eq!(s.set(1), &[0]);
        assert_eq!(s.live_entries(), 2);
    }

    #[test]
    fn coverage_and_estimates() {
        let s = store_with(&[&[0, 1], &[1, 2], &[3], &[4]]);
        assert_eq!(s.coverage_count(&users(&[1])), 2);
        assert_eq!(s.coverage_count(&users(&[1, 3])), 3);
        assert_eq!(s.coverage_count(&[]), 0);
        // 6 users * 2/4 coverage.
        assert!((s.estimate_adopters(&users(&[1])) - 3.0).abs() < 1e-12);
        assert!(s.estimate_std_error(&users(&[1])) > 0.0);
        assert_eq!(
            RrStore::new(ItemId(1), 4).estimate_adopters(&users(&[0])),
            0.0
        );
    }

    #[test]
    fn out_of_range_seed_users_are_ignored() {
        let s = store_with(&[&[0]]);
        assert_eq!(s.coverage_count(&users(&[99])), 0);
    }
}
