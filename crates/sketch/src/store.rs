//! The flat, arena-backed RR-set store.
//!
//! Replaces the toy `Vec<Vec<UserId>>` layout of `imdpp_diffusion::ris` with
//! a CSR-style arena: every RR set is a span into one shared **compressed
//! byte arena** (sorted members, delta/varint-encoded — see
//! [`crate::arena`]), giving one allocation for the whole sketch, cache-
//! friendly scans during coverage counting, and roughly 2–4× less memory
//! than a raw `u32` pool at 10⁶-user scale.  An inverted user → set index
//! (CSR) answers "which sets does user `u` appear in?" — the query that
//! drives both CELF-style greedy selection and incremental invalidation.
//!
//! Sets are identified by a stable `SetId` (their stream id — see
//! [`crate::sampler`]); replacing a set appends its new span to the arena and
//! tombstones the old one.  Dead arena bytes are tracked and the arena is
//! compacted automatically once more than half of it is garbage.
//!
//! ## Capacity is checked, never wrapped
//!
//! Span offsets are `u64`, so the arena cannot overflow its offset type on
//! any machine that can allocate it.  The insertion paths are nonetheless
//! *checked*: [`RrStore::try_push_set`] / [`RrStore::try_replace_set`]
//! return [`ImdppError::CapacityExceeded`] when a configured byte budget
//! ([`RrStore::with_arena_capacity`]) or the set-id space (ids must stay
//! below the tombstone bit, `1 << 31`) would be exhausted — no silent
//! wraparound, which
//! is what the previous `u32`-offset pool would have done somewhere past
//! 10⁹ pool entries.  The infallible [`RrStore::push_set`] /
//! [`RrStore::replace_set`] wrappers panic on those errors (the samplers
//! never hit them under the default unbounded budget).
//!
//! ## Incremental index maintenance
//!
//! The inverted index is *patched*, not rebuilt, when sets change: replacing
//! set `s` tombstones `s`'s entries in the base CSR rows of its old members
//! and appends `(user, s)` pairs for the new members to an overflow log.
//! Queries merge the base rows (skipping tombstones) with the log.  Once
//! tombstones or the log grow past a fraction of the base index the whole
//! thing is folded back into a clean CSR — a *compaction*, amortized O(1)
//! per patched entry.  A full counting rebuild ([`RrStore::rebuild_index`])
//! only ever happens at construction (or explicitly); [`IndexStats`] counts
//! rebuilds, compactions and patched entries so tests can pin the
//! maintenance regime, and [`RrStore::index_matches_rebuild`] is the
//! `debug_assert`-guarded equivalence check the refresh paths use.

use crate::arena::{encode_set, SetMembers};
use crate::persist;
use imdpp_diffusion::ImdppError;
use imdpp_graph::{ItemId, UserId};

/// Identifier of one RR set inside a store.  Stable across replacements and
/// equal to the RNG stream id that generated the set.
pub type SetId = u32;

/// Tombstone flag for dead entries in the base rows of the inverted index.
///
/// The counting-sort build leaves every base row sorted ascending by set
/// id; tombstoning an entry sets this high bit and *keeps the id*, so the
/// row stays sorted under the masked comparison and [`RrStore::unindex`]
/// can binary-search instead of scanning — O(log row) per patched entry
/// even for hub users appearing in thousands of sets.  Ids with the high
/// bit set cannot occur: the checked insertion path refuses to assign them
/// ([`RrStore::try_push_set`] returns `CapacityExceeded` first).
const TOMBSTONE_BIT: SetId = 1 << 31;

/// The set id of a base-row entry, dead or alive.
#[inline]
fn entry_id(entry: SetId) -> SetId {
    entry & !TOMBSTONE_BIT
}

/// True when a base-row entry is live (not tombstoned).
#[inline]
fn entry_live(entry: SetId) -> bool {
    entry & TOMBSTONE_BIT == 0
}

/// One set's location in the compressed arena: `bytes` encoded bytes at
/// `offset`, decoding to `members` ascending user ids.
#[derive(Clone, Copy, Debug)]
struct Span {
    offset: u64,
    members: u32,
    bytes: u32,
}

/// Bounds-filters, sorts and deduplicates a head list into the form
/// [`RrStore::sets_touching_prepared`] expects.
pub(crate) fn prepare_heads(users: &[UserId], user_count: usize) -> Vec<u32> {
    let mut heads: Vec<u32> = users
        .iter()
        .map(|u| u.0)
        .filter(|&u| (u as usize) < user_count)
        .collect();
    heads.sort_unstable();
    heads.dedup();
    heads
}

/// Counters of the inverted-index maintenance work a store has performed.
///
/// `full_rebuilds` counts counting-sort passes over the whole corpus
/// ([`RrStore::rebuild_index`] — construction, or the lazy fallback when the
/// index was never built); `compactions` counts the amortized fold-backs of
/// tombstones/overflow into a clean CSR; `entries_patched` counts individual
/// index entries tombstoned or appended by incremental maintenance.  The
/// scale tests assert `full_rebuilds` never grows after construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Index entries tombstoned or appended by incremental patching.
    pub entries_patched: u64,
    /// Full counting-pass index builds (construction + lazy fallbacks).
    pub full_rebuilds: u64,
    /// Amortized compactions folding patches back into a clean CSR.
    pub compactions: u64,
}

impl IndexStats {
    /// Accumulates another store's counters into this one.
    pub fn absorb(&mut self, other: IndexStats) {
        self.entries_patched += other.entries_patched;
        self.full_rebuilds += other.full_rebuilds;
        self.compactions += other.compactions;
    }

    /// The difference `self - earlier`, for measuring one operation's work.
    pub fn since(&self, earlier: IndexStats) -> IndexStats {
        IndexStats {
            entries_patched: self.entries_patched - earlier.entries_patched,
            full_rebuilds: self.full_rebuilds - earlier.full_rebuilds,
            compactions: self.compactions - earlier.compactions,
        }
    }
}

/// A collection of reverse-reachable sets for one item, stored in a shared
/// compressed arena with an inverted user → set index.
#[derive(Clone, Debug)]
pub struct RrStore {
    item: ItemId,
    user_count: usize,
    /// Per-set spans into `arena`.
    spans: Vec<Span>,
    /// The compressed arena: delta/varint-encoded sorted member lists.
    arena: Vec<u8>,
    /// Dead (tombstoned) bytes in `arena`.
    garbage_bytes: u64,
    /// Live member entries across all spans (`Σ span.members`).
    live_members: usize,
    /// Checked byte budget of `arena` (`u64::MAX` = unbounded).
    capacity_bytes: u64,
    /// Reusable sort buffer of the insertion paths.
    sort_scratch: Vec<u32>,
    /// CSR offsets of the inverted index (`user_count + 1` entries).
    inv_offsets: Vec<u32>,
    /// Set ids, grouped by user according to `inv_offsets`.  Each row is
    /// sorted ascending by [`entry_id`]; dead entries carry
    /// [`TOMBSTONE_BIT`] (which preserves that order).
    inv_sets: Vec<SetId>,
    /// Overflow log of `(user index, set)` entries appended since the last
    /// compaction.
    inv_extra: Vec<(u32, SetId)>,
    /// Number of tombstoned entries in `inv_sets`.
    inv_dead: usize,
    /// False until the first [`RrStore::rebuild_index`]; patches are only
    /// tracked once the index exists.
    inv_built: bool,
    /// Maintenance counters.
    index_stats: IndexStats,
}

/// Cold tail of the infallible insertion wrappers: the checked path found
/// the arena (or the id space) exhausted under the configured budget.
#[cold]
#[inline(never)]
fn capacity_exhausted(err: ImdppError) -> ! {
    panic!("{err}")
}

impl RrStore {
    /// Creates an empty store for `item` over `user_count` users with an
    /// unbounded arena budget.
    pub fn new(item: ItemId, user_count: usize) -> Self {
        RrStore {
            item,
            user_count,
            spans: Vec::new(),
            arena: Vec::new(),
            garbage_bytes: 0,
            live_members: 0,
            capacity_bytes: u64::MAX,
            sort_scratch: Vec::new(),
            inv_offsets: vec![0; user_count + 1],
            inv_sets: Vec::new(),
            inv_extra: Vec::new(),
            inv_dead: 0,
            inv_built: false,
            index_stats: IndexStats::default(),
        }
    }

    /// Caps the arena at `bytes` encoded bytes: once an insertion would push
    /// the arena past the budget, [`RrStore::try_push_set`] /
    /// [`RrStore::try_replace_set`] return
    /// [`ImdppError::CapacityExceeded`] and leave the store unchanged.
    /// Compaction counts against the same budget (it only ever shrinks).
    pub fn with_arena_capacity(mut self, bytes: u64) -> Self {
        self.capacity_bytes = bytes;
        self
    }

    /// The configured arena byte budget (`u64::MAX` = unbounded).
    pub fn arena_capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// The item the sets were sampled for.
    pub fn item(&self) -> ItemId {
        self.item
    }

    /// Number of users in the underlying scenario.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total number of live user entries across all sets.
    pub fn live_entries(&self) -> usize {
        self.live_members
    }

    /// Total arena size in bytes, including garbage awaiting compaction.
    pub fn arena_bytes(&self) -> u64 {
        self.arena.len() as u64
    }

    /// Encoded bytes of the *live* spans only — a pure function of the set
    /// contents (shard- and history-independent), which is why the memory
    /// telemetry reports this figure rather than [`RrStore::arena_bytes`].
    pub fn live_arena_bytes(&self) -> u64 {
        self.arena.len() as u64 - self.garbage_bytes
    }

    /// Bytes the live entries would occupy in the uncompressed `u32`-pool
    /// layout this arena replaced — the baseline of the compression-ratio
    /// gate in the scale smoke.
    pub fn uncompressed_bytes(&self) -> u64 {
        4 * self.live_members as u64
    }

    /// Fraction of the arena occupied by tombstoned bytes.
    pub fn garbage_ratio(&self) -> f64 {
        if self.arena.is_empty() {
            0.0
        } else {
            self.garbage_bytes as f64 / self.arena.len() as f64
        }
    }

    /// The inverted-index maintenance counters.
    pub fn index_stats(&self) -> IndexStats {
        self.index_stats
    }

    /// Sorts and deduplicates `users` into the reusable scratch buffer and
    /// appends the encoded span to the arena, rolling back and reporting
    /// [`ImdppError::CapacityExceeded`] when the byte budget would be
    /// blown.  On success the scratch buffer holds the sorted members (for
    /// index patching) and the new span is *not yet* pushed to `spans`.
    fn encode_checked(&mut self, users: &[UserId]) -> Result<Span, ImdppError> {
        let mut members = std::mem::take(&mut self.sort_scratch);
        members.clear();
        members.extend(users.iter().map(|u| u.0));
        members.sort_unstable();
        members.dedup();
        let offset = self.arena.len() as u64;
        let bytes = encode_set(&members, &mut self.arena);
        if self.arena.len() as u64 > self.capacity_bytes {
            self.arena.truncate(offset as usize);
            self.sort_scratch = members;
            return Err(ImdppError::CapacityExceeded {
                what: "RR arena bytes",
                capacity: self.capacity_bytes,
                needed: offset + bytes as u64,
            });
        }
        let span = Span {
            offset,
            members: members.len() as u32,
            bytes: bytes as u32,
        };
        self.sort_scratch = members;
        Ok(span)
    }

    /// Appends a new set, returning its id (always `len() - 1` afterwards).
    ///
    /// Checked: fails with [`ImdppError::CapacityExceeded`] — leaving the
    /// store unchanged — when the arena byte budget or the set-id space
    /// (ids must stay below the tombstone bit) would be exhausted.  When
    /// the inverted index already exists its entries are patched in
    /// (append-only — no rebuild).
    pub fn try_push_set(&mut self, users: &[UserId]) -> Result<SetId, ImdppError> {
        let id = self.spans.len() as u64;
        if id >= u64::from(TOMBSTONE_BIT) {
            return Err(ImdppError::CapacityExceeded {
                what: "RR set ids",
                capacity: u64::from(TOMBSTONE_BIT),
                needed: id + 1,
            });
        }
        let id = id as SetId;
        let span = self.encode_checked(users)?;
        self.live_members += span.members as usize;
        self.spans.push(span);
        if self.inv_built {
            for i in 0..self.sort_scratch.len() {
                let u = self.sort_scratch[i];
                self.inv_extra.push((u, id));
            }
            self.index_stats.entries_patched += span.members as u64;
            self.maybe_compact_index();
        }
        Ok(id)
    }

    /// Appends a new set, returning its id (always `len() - 1` afterwards).
    ///
    /// Infallible form of [`RrStore::try_push_set`]; panics on
    /// [`ImdppError::CapacityExceeded`] (unreachable under the default
    /// unbounded budget).
    pub fn push_set(&mut self, users: &[UserId]) -> SetId {
        match self.try_push_set(users) {
            Ok(id) => id,
            Err(e) => capacity_exhausted(e),
        }
    }

    /// Replaces the contents of set `id`, tombstoning its old span.
    ///
    /// Checked like [`RrStore::try_push_set`]: a blown arena budget reports
    /// [`ImdppError::CapacityExceeded`] with the store unchanged.  The
    /// inverted index is patched incrementally: the old members' entries
    /// are tombstoned and the new members' entries appended to the overflow
    /// log — no counting pass over the corpus.
    pub fn try_replace_set(&mut self, id: SetId, users: &[UserId]) -> Result<(), ImdppError> {
        let old = self.spans[id as usize];
        // Decode the old members up front: the index patch below needs them
        // and the encode may relocate the arena allocation.
        let old_members: Vec<u32> = if self.inv_built {
            self.span_members(&old).collect()
        } else {
            Vec::new()
        };
        let span = self.encode_checked(users)?;
        if self.inv_built {
            for &u in &old_members {
                self.unindex(u as usize, id);
            }
            self.index_stats.entries_patched += old.members as u64;
        }
        self.garbage_bytes += u64::from(old.bytes);
        self.live_members -= old.members as usize;
        self.live_members += span.members as usize;
        self.spans[id as usize] = span;
        if self.inv_built {
            for i in 0..self.sort_scratch.len() {
                let u = self.sort_scratch[i];
                self.inv_extra.push((u, id));
            }
            self.index_stats.entries_patched += span.members as u64;
            self.maybe_compact_index();
        }
        if self.garbage_ratio() > 0.5 {
            self.compact();
        }
        Ok(())
    }

    /// Replaces the contents of set `id`, tombstoning its old span.
    ///
    /// Infallible form of [`RrStore::try_replace_set`]; panics on
    /// [`ImdppError::CapacityExceeded`] (unreachable under the default
    /// unbounded budget).
    pub fn replace_set(&mut self, id: SetId, users: &[UserId]) {
        if let Err(e) = self.try_replace_set(id, users) {
            capacity_exhausted(e)
        }
    }

    /// Removes `(user, id)` from the index: tombstoned in the base rows
    /// (binary search — rows are sorted by [`entry_id`], which tombstoning
    /// preserves), or swap-removed from the overflow log.
    fn unindex(&mut self, user: usize, id: SetId) {
        let lo = self.inv_offsets[user] as usize;
        let hi = self.inv_offsets[user + 1] as usize;
        let row = &mut self.inv_sets[lo..hi];
        let slot = row.partition_point(|&e| entry_id(e) < id);
        if slot < row.len() && row[slot] == id {
            row[slot] = id | TOMBSTONE_BIT;
            self.inv_dead += 1;
        } else if let Some(pos) = self
            .inv_extra
            .iter()
            .position(|&(u, s)| u as usize == user && s == id)
        {
            self.inv_extra.swap_remove(pos);
        } else {
            debug_assert!(
                false,
                "inverted index is missing the entry (user {user}, set {id})"
            );
        }
    }

    /// The decoding iterator of one span.
    #[inline]
    fn span_members(&self, span: &Span) -> SetMembers<'_> {
        let lo = span.offset as usize;
        let hi = lo + span.bytes as usize;
        SetMembers::new(&self.arena[lo..hi], span.members)
    }

    /// The users of set `id`, decoded in ascending id order (allocates; hot
    /// paths should prefer the zero-copy [`RrStore::set_members`]).
    pub fn set(&self, id: SetId) -> Vec<u32> {
        self.set_members(id).collect()
    }

    /// Zero-allocation decoding iterator over the users of set `id`
    /// (ascending id order).
    pub fn set_members(&self, id: SetId) -> SetMembers<'_> {
        self.span_members(&self.spans[id as usize])
    }

    /// Iterator over `(id, users)` pairs of all sets.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, Vec<u32>)> + '_ {
        (0..self.spans.len() as SetId).map(move |id| (id, self.set(id)))
    }

    /// Rewrites the arena without tombstoned bytes (spans keep their ids;
    /// encoded spans are copied verbatim, never re-encoded).
    pub fn compact(&mut self) {
        if self.garbage_bytes == 0 {
            return;
        }
        let live = (self.arena.len() as u64 - self.garbage_bytes) as usize;
        let mut arena = Vec::with_capacity(live);
        for span in self.spans.iter_mut() {
            let lo = span.offset as usize;
            let hi = lo + span.bytes as usize;
            span.offset = arena.len() as u64;
            arena.extend_from_slice(&self.arena[lo..hi]);
        }
        self.arena = arena;
        self.garbage_bytes = 0;
    }

    /// One counting-sort CSR pass over the spans, producing a clean base
    /// index with no tombstones and an empty overflow log.
    fn build_index_from_spans(&mut self) {
        let mut counts = vec![0u32; self.user_count + 1];
        for span in &self.spans {
            let lo = span.offset as usize;
            let hi = lo + span.bytes as usize;
            for u in SetMembers::new(&self.arena[lo..hi], span.members) {
                counts[u as usize + 1] += 1;
            }
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let mut cursors = counts.clone();
        let mut inv_sets = vec![0; *counts.last().unwrap() as usize];
        for (id, span) in self.spans.iter().enumerate() {
            let lo = span.offset as usize;
            let hi = lo + span.bytes as usize;
            for u in SetMembers::new(&self.arena[lo..hi], span.members) {
                inv_sets[cursors[u as usize] as usize] = id as SetId;
                cursors[u as usize] += 1;
            }
        }
        self.inv_offsets = counts;
        self.inv_sets = inv_sets;
        self.inv_extra.clear();
        self.inv_dead = 0;
    }

    /// Rebuilds the inverted user → set index with a full counting pass.
    ///
    /// Called once at construction; afterwards the index maintains itself
    /// incrementally and this should not be needed (the `full_rebuilds`
    /// counter exists so tests can prove it was not).
    pub fn rebuild_index(&mut self) {
        self.build_index_from_spans();
        self.inv_built = true;
        self.index_stats.full_rebuilds += 1;
    }

    /// Folds tombstones and the overflow log back into a clean CSR once
    /// they outgrow the base index.  The threshold keeps both the wasted
    /// memory and the O(|log|) overflow scans of membership queries bounded
    /// by a constant fraction of the live index, making compaction cost
    /// amortized O(1) per patched entry.
    fn maybe_compact_index(&mut self) {
        let base = self.inv_sets.len();
        if self.inv_dead * 2 > base || self.inv_extra.len() > base / 2 + 16 {
            self.build_index_from_spans();
            self.index_stats.compactions += 1;
        }
    }

    /// The sorted ids of the sets containing `user` (builds the index on
    /// first use; afterwards answers merge the base rows with the overflow
    /// log).
    pub fn sets_of(&mut self, user: UserId) -> Vec<SetId> {
        if !self.inv_built {
            self.rebuild_index();
        }
        if user.index() >= self.user_count {
            return Vec::new();
        }
        let lo = self.inv_offsets[user.index()] as usize;
        let hi = self.inv_offsets[user.index() + 1] as usize;
        let mut ids: Vec<SetId> = self.inv_sets[lo..hi]
            .iter()
            .copied()
            .filter(|&e| entry_live(e))
            .collect();
        ids.extend(
            self.inv_extra
                .iter()
                .filter(|&&(u, _)| u as usize == user.index())
                .map(|&(_, s)| s),
        );
        ids.sort_unstable();
        ids
    }

    /// The sorted, deduplicated ids of all sets containing any of `users`
    /// — the invalidation frontier of an update touching those users.
    ///
    /// Cost is proportional to the *touched* rows plus the overflow log
    /// (`O(Σ row + |log| · log |users|)`) — no corpus- or population-sized
    /// allocation happens here, so localized frontiers stay cheap at any
    /// scale.
    pub fn sets_touching(&mut self, users: &[UserId]) -> Vec<SetId> {
        let heads = prepare_heads(users, self.user_count);
        self.sets_touching_prepared(&heads)
    }

    /// [`RrStore::sets_touching`] over an already prepared (in-range,
    /// sorted, deduplicated) head list — lets the sharded store prepare the
    /// frontier once and query every shard with it.
    pub(crate) fn sets_touching_prepared(&mut self, heads: &[u32]) -> Vec<SetId> {
        if !self.inv_built {
            self.rebuild_index();
        }
        let mut ids = Vec::new();
        for &u in heads {
            let lo = self.inv_offsets[u as usize] as usize;
            let hi = self.inv_offsets[u as usize + 1] as usize;
            ids.extend(
                self.inv_sets[lo..hi]
                    .iter()
                    .copied()
                    .filter(|&e| entry_live(e)),
            );
        }
        ids.extend(
            self.inv_extra
                .iter()
                .filter(|&&(u, _)| heads.binary_search(&u).is_ok())
                .map(|&(_, s)| s),
        );
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Equivalence check of the incrementally maintained index against a
    /// freshly built one — the invariant the refresh paths `debug_assert`.
    ///
    /// O(corpus); intended for `debug_assert!` and tests, not hot paths.
    pub fn index_matches_rebuild(&self) -> bool {
        if !self.inv_built {
            return true;
        }
        let mut reference: Vec<Vec<SetId>> = vec![Vec::new(); self.user_count];
        for (id, span) in self.spans.iter().enumerate() {
            for u in self.span_members(span) {
                reference[u as usize].push(id as SetId);
            }
        }
        for (user, expected) in reference.iter().enumerate() {
            let lo = self.inv_offsets[user] as usize;
            let hi = self.inv_offsets[user + 1] as usize;
            let mut got: Vec<SetId> = self.inv_sets[lo..hi]
                .iter()
                .copied()
                .filter(|&e| entry_live(e))
                .collect();
            got.extend(
                self.inv_extra
                    .iter()
                    .filter(|&&(u, _)| u as usize == user)
                    .map(|&(_, s)| s),
            );
            got.sort_unstable();
            // `expected` is already sorted: spans ascend by id.
            if &got != expected {
                return false;
            }
        }
        true
    }

    /// Number of sets hit by the given seed users.
    pub fn coverage_count(&self, seeds: &[UserId]) -> usize {
        if self.spans.is_empty() || seeds.is_empty() {
            return 0;
        }
        let mut marked = vec![false; self.user_count];
        for &u in seeds {
            if u.index() < self.user_count {
                marked[u.index()] = true;
            }
        }
        self.coverage_count_marked(&marked)
    }

    /// Number of sets containing at least one marked user (`marked` is a
    /// dense user bitmap).  Lets callers — per-shard aggregation in
    /// particular — share one bitmap across several stores.  Decodes each
    /// span with early exit on the first marked member.
    pub fn coverage_count_marked(&self, marked: &[bool]) -> usize {
        self.spans
            .iter()
            .filter(|span| self.span_members(span).any(|u| marked[u as usize]))
            .count()
    }

    /// Multi-query coverage in **one pass over the arena**: `masks` is a
    /// dense per-user bitmask (bit `q` set on user `u` = query `q` seeds
    /// `u`), and `counts[q]` is incremented once per span containing at
    /// least one user with bit `q` set.  Each span is decoded exactly once
    /// for up to 64 queries — the amortization behind the serving tier's
    /// batched spread path — with early exit once the accumulated mask
    /// reaches `full` (the union of bits any query could still contribute).
    ///
    /// Per query `q`, the increment happens iff some member has bit `q`
    /// marked — exactly the predicate of [`RrStore::coverage_count_marked`]
    /// with that query's seed bitmap — so the batched counts are equal (not
    /// just close) to 64 independent single-query passes.
    pub fn coverage_counts_masked(&self, masks: &[u64], full: u64, counts: &mut [usize]) {
        debug_assert_eq!(masks.len(), self.user_count);
        if full == 0 {
            return;
        }
        for span in &self.spans {
            let mut acc = 0u64;
            for u in self.span_members(span) {
                acc |= masks[u as usize];
                if acc == full {
                    break;
                }
            }
            let mut hit = acc;
            while hit != 0 {
                let q = hit.trailing_zeros() as usize;
                counts[q] += 1;
                hit &= hit - 1;
            }
        }
    }

    /// [`RrStore::coverage_count_marked`] skipping the (sorted, shard-local)
    /// set ids in `skip` — the base-store half of copy-on-write overlay
    /// coverage, where the skipped sets are answered from the tenant's
    /// replacement spans instead.
    pub fn coverage_count_marked_excluding(&self, marked: &[bool], skip: &[SetId]) -> usize {
        debug_assert!(skip.windows(2).all(|w| w[0] < w[1]), "skip must be sorted");
        self.spans
            .iter()
            .enumerate()
            .filter(|&(id, span)| {
                skip.binary_search(&(id as SetId)).is_err()
                    && self.span_members(span).any(|u| marked[u as usize])
            })
            .count()
    }

    /// [`RrStore::sets_touching`] through a shared reference: answers from
    /// the existing inverted index when one is built (every sampled store
    /// builds its index at construction), falling back to a full span scan
    /// otherwise.  Lets read-only consumers — the copy-on-write overlay
    /// builder in particular — compute invalidation frontiers against a
    /// store other readers are concurrently querying.
    pub fn sets_touching_shared(&self, users: &[UserId]) -> Vec<SetId> {
        let heads = prepare_heads(users, self.user_count);
        if !self.inv_built {
            let mut marked = vec![false; self.user_count];
            for &u in &heads {
                marked[u as usize] = true;
            }
            return self
                .spans
                .iter()
                .enumerate()
                .filter(|(_, span)| self.span_members(span).any(|u| marked[u as usize]))
                .map(|(id, _)| id as SetId)
                .collect();
        }
        let mut ids = Vec::new();
        for &u in &heads {
            let lo = self.inv_offsets[u as usize] as usize;
            let hi = self.inv_offsets[u as usize + 1] as usize;
            ids.extend(
                self.inv_sets[lo..hi]
                    .iter()
                    .copied()
                    .filter(|&e| entry_live(e)),
            );
        }
        ids.extend(
            self.inv_extra
                .iter()
                .filter(|&&(u, _)| heads.binary_search(&u).is_ok())
                .map(|&(_, s)| s),
        );
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Serializes the live spans: set count, then per set the member count,
    /// encoded byte length and the raw arena bytes (copied verbatim —
    /// tombstoned garbage is skipped naturally because only live spans are
    /// walked).  The inverted index is *not* persisted; it is rebuilt once
    /// on restore, exactly like at construction.
    pub(crate) fn serialize_into(&self, out: &mut Vec<u8>) {
        persist::write_varint(self.spans.len() as u32, out);
        for span in &self.spans {
            let lo = span.offset as usize;
            let hi = lo + span.bytes as usize;
            persist::write_varint(span.members, out);
            persist::write_varint(span.bytes, out);
            out.extend_from_slice(&self.arena[lo..hi]);
        }
    }

    /// Restores a store serialized by [`RrStore::serialize_into`], advancing
    /// `input` past the consumed bytes.  Every span is validated
    /// ([`persist::validate_span`]) before it is appended, and the index is
    /// rebuilt with one counting pass per store — the same one-build-per-
    /// shard regime construction establishes, with **zero sets re-sampled**.
    ///
    /// # Errors
    /// [`ImdppError::InvalidConfig`] on truncated or corrupt span data.
    pub(crate) fn deserialize_from(
        item: ItemId,
        user_count: usize,
        input: &mut &[u8],
    ) -> Result<Self, ImdppError> {
        let mut store = RrStore::new(item, user_count);
        let sets = persist::read_varint(input)?;
        if u64::from(sets) >= u64::from(TOMBSTONE_BIT) {
            return Err(persist::corrupt("set count exceeds the id space"));
        }
        for _ in 0..sets {
            let members = persist::read_varint(input)?;
            let bytes = persist::read_varint(input)?;
            let encoded = persist::take(input, bytes as usize)?;
            persist::validate_span(encoded, members, user_count)?;
            let offset = store.arena.len() as u64;
            store.arena.extend_from_slice(encoded);
            store.spans.push(Span {
                offset,
                members,
                bytes,
            });
            store.live_members += members as usize;
        }
        store.rebuild_index();
        Ok(store)
    }

    /// Unbiased estimate of the expected number of adopters of the store's
    /// item when `seeds` are seeded in the first promotion:
    /// `n · (fraction of RR sets hit)`.
    pub fn estimate_adopters(&self, seeds: &[UserId]) -> f64 {
        if self.spans.is_empty() {
            return 0.0;
        }
        self.user_count as f64 * self.coverage_count(seeds) as f64 / self.spans.len() as f64
    }

    /// Standard error of [`Self::estimate_adopters`] under the binomial
    /// coverage model — used by 3σ agreement tests and the adaptive sampler.
    pub fn estimate_std_error(&self, seeds: &[UserId]) -> f64 {
        let r = self.spans.len();
        if r < 2 {
            return 0.0;
        }
        let p = self.coverage_count(seeds) as f64 / r as f64;
        self.user_count as f64 * (p * (1.0 - p) / r as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(ids: &[u32]) -> Vec<UserId> {
        ids.iter().map(|&u| UserId(u)).collect()
    }

    fn store_with(sets: &[&[u32]]) -> RrStore {
        let mut s = RrStore::new(ItemId(0), 6);
        for set in sets {
            s.push_set(&users(set));
        }
        s
    }

    #[test]
    fn push_and_read_back() {
        let s = store_with(&[&[0, 1], &[2], &[3, 4, 5]]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.set(0), &[0, 1]);
        assert_eq!(s.set(2), &[3, 4, 5]);
        assert_eq!(s.live_entries(), 6);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn members_are_stored_sorted_and_deduplicated() {
        // Insertion order does not survive: the compressed arena encodes
        // sorted members (every consumer is order-independent over the
        // member multiset).
        let mut s = RrStore::new(ItemId(0), 6);
        s.push_set(&users(&[5, 0, 3]));
        assert_eq!(s.set(0), &[0, 3, 5]);
        assert_eq!(s.set_members(0).collect::<Vec<_>>(), vec![0, 3, 5]);
    }

    #[test]
    fn inverted_index_answers_membership() {
        let mut s = store_with(&[&[0, 1], &[1, 2], &[2]]);
        assert_eq!(s.sets_of(UserId(1)), &[0, 1]);
        assert_eq!(s.sets_of(UserId(2)), &[1, 2]);
        assert_eq!(s.sets_of(UserId(5)), Vec::<SetId>::new());
        assert_eq!(s.sets_touching(&users(&[0, 2])), vec![0, 1, 2]);
        assert_eq!(s.sets_touching(&users(&[5])), Vec::<SetId>::new());
        // The first query built the index; exactly once.
        assert_eq!(s.index_stats().full_rebuilds, 1);
    }

    #[test]
    fn replace_patches_the_index_without_rebuilding() {
        let mut s = store_with(&[&[0, 1], &[1, 2]]);
        s.rebuild_index();
        let rebuilds_after_build = s.index_stats().full_rebuilds;
        s.replace_set(0, &users(&[3]));
        assert_eq!(s.set(0), &[3]);
        assert_eq!(s.sets_of(UserId(1)), &[1]);
        assert_eq!(s.sets_of(UserId(3)), &[0]);
        assert_eq!(s.len(), 2);
        assert!(s.index_matches_rebuild());
        assert_eq!(s.index_stats().full_rebuilds, rebuilds_after_build);
        // 2 tombstoned + 1 appended.
        assert_eq!(s.index_stats().entries_patched, 3);
    }

    #[test]
    fn pushes_after_build_are_patched_in() {
        let mut s = store_with(&[&[0, 1]]);
        s.rebuild_index();
        let id = s.push_set(&users(&[1, 4]));
        assert_eq!(id, 1);
        assert_eq!(s.sets_of(UserId(1)), &[0, 1]);
        assert_eq!(s.sets_of(UserId(4)), &[1]);
        assert!(s.index_matches_rebuild());
        assert_eq!(s.index_stats().full_rebuilds, 1);
    }

    #[test]
    fn sustained_churn_compacts_but_never_rebuilds() {
        let mut s = store_with(&[&[0, 1, 2], &[3, 4], &[5], &[0, 5]]);
        s.rebuild_index();
        for round in 0u32..50 {
            let id = round % 4;
            let members = [(round % 6), (round + 1) % 6];
            s.replace_set(id, &users(&members));
            assert!(s.index_matches_rebuild(), "diverged at round {round}");
        }
        let stats = s.index_stats();
        assert_eq!(stats.full_rebuilds, 1, "churn must not trigger rebuilds");
        assert!(stats.compactions > 0, "churn this heavy must compact");
        assert!(stats.entries_patched > 0);
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut s = store_with(&[&[0, 1, 2], &[3, 4]]);
        // Two replacements push garbage over 50% and trigger compaction.
        s.replace_set(0, &users(&[5]));
        s.replace_set(1, &users(&[0]));
        assert_eq!(s.garbage_ratio(), 0.0);
        assert_eq!(s.set(0), &[5]);
        assert_eq!(s.set(1), &[0]);
        assert_eq!(s.live_entries(), 2);
    }

    #[test]
    fn arena_accounting_tracks_live_and_garbage_bytes() {
        let mut s = store_with(&[&[0, 1, 2, 3, 4, 5]]);
        let live = s.live_arena_bytes();
        assert!(live > 0);
        assert_eq!(s.arena_bytes(), live);
        assert_eq!(s.uncompressed_bytes(), 4 * 6);
        // Consecutive ids delta-encode to one byte per member.
        assert_eq!(live, 6);
        // A replacement leaves the old span as garbage until compaction.
        s.replace_set(0, &users(&[2]));
        assert_eq!(s.live_arena_bytes(), 1);
        assert_eq!(s.uncompressed_bytes(), 4);
    }

    #[test]
    fn checked_push_reports_capacity_instead_of_wrapping() {
        // A near-limit store: a 4-byte budget fits the first set (3 one-byte
        // gaps... actually 3 bytes) but not the next push.
        let mut s = RrStore::new(ItemId(0), 6).with_arena_capacity(4);
        assert_eq!(s.arena_capacity(), 4);
        let id = match s.try_push_set(&users(&[0, 1, 2])) {
            Ok(id) => id,
            Err(e) => unreachable!("3 encoded bytes fit a 4-byte budget: {e}"),
        };
        assert_eq!(id, 0);
        let err = match s.try_push_set(&users(&[3, 4, 5])) {
            Err(e) => e,
            Ok(_) => unreachable!("push past the budget must fail"),
        };
        assert!(matches!(
            err,
            ImdppError::CapacityExceeded {
                what: "RR arena bytes",
                capacity: 4,
                ..
            }
        ));
        // The failed push left the store untouched...
        assert_eq!(s.len(), 1);
        assert_eq!(s.set(0), &[0, 1, 2]);
        assert_eq!(s.arena_bytes(), 3);
        // ...and a small set still fits the remaining byte.
        assert_eq!(s.try_push_set(&users(&[4])).ok(), Some(1));
    }

    #[test]
    fn checked_replace_reports_capacity_and_leaves_the_set_alone() {
        let mut s = RrStore::new(ItemId(0), 6).with_arena_capacity(5);
        s.push_set(&users(&[0, 1, 2]));
        s.rebuild_index();
        // Replacing with a wide-gap pair needs more than the 2 free bytes.
        let err = match s.try_replace_set(0, &users(&[1, 2, 3])) {
            Err(e) => e,
            Ok(()) => unreachable!("replacement past the budget must fail"),
        };
        assert!(matches!(err, ImdppError::CapacityExceeded { .. }));
        assert_eq!(s.set(0), &[0, 1, 2], "failed replace must not mutate");
        assert!(s.index_matches_rebuild());
        // A replacement that fits goes through and stays index-consistent.
        assert!(s.try_replace_set(0, &users(&[4, 5])).is_ok());
        assert_eq!(s.set(0), &[4, 5]);
        assert!(s.index_matches_rebuild());
    }

    #[test]
    #[should_panic(expected = "RR arena bytes capacity exceeded")]
    fn infallible_push_panics_on_a_blown_budget() {
        let mut s = RrStore::new(ItemId(0), 6).with_arena_capacity(1);
        s.push_set(&users(&[0, 1, 2]));
    }

    #[test]
    fn coverage_and_estimates() {
        let s = store_with(&[&[0, 1], &[1, 2], &[3], &[4]]);
        assert_eq!(s.coverage_count(&users(&[1])), 2);
        assert_eq!(s.coverage_count(&users(&[1, 3])), 3);
        assert_eq!(s.coverage_count(&[]), 0);
        // 6 users * 2/4 coverage.
        assert!((s.estimate_adopters(&users(&[1])) - 3.0).abs() < 1e-12);
        assert!(s.estimate_std_error(&users(&[1])) > 0.0);
        assert_eq!(
            RrStore::new(ItemId(1), 4).estimate_adopters(&users(&[0])),
            0.0
        );
    }

    #[test]
    fn out_of_range_seed_users_are_ignored() {
        let s = store_with(&[&[0]]);
        assert_eq!(s.coverage_count(&users(&[99])), 0);
    }

    #[test]
    fn masked_coverage_matches_per_query_passes() {
        let s = store_with(&[&[0, 1], &[1, 2], &[3], &[4, 5], &[0, 5]]);
        let queries: &[&[u32]] = &[&[1], &[1, 3], &[5], &[], &[0, 2, 4]];
        let mut masks = vec![0u64; s.user_count()];
        let mut full = 0u64;
        for (q, seeds) in queries.iter().enumerate() {
            for &u in *seeds {
                masks[u as usize] |= 1 << q;
                full |= 1 << q;
            }
        }
        let mut counts = vec![0usize; queries.len()];
        s.coverage_counts_masked(&masks, full, &mut counts);
        for (q, seeds) in queries.iter().enumerate() {
            assert_eq!(
                counts[q],
                s.coverage_count(&users(seeds)),
                "query {q} diverged from the single-query pass"
            );
        }
        // A zero full-mask is a no-op.
        let mut untouched = vec![7usize; queries.len()];
        s.coverage_counts_masked(&vec![0; s.user_count()], 0, &mut untouched);
        assert!(untouched.iter().all(|&c| c == 7));
    }

    #[test]
    fn excluding_coverage_subtracts_exactly_the_skipped_sets() {
        let s = store_with(&[&[0, 1], &[1, 2], &[3], &[4, 5], &[0, 5]]);
        let mut marked = vec![false; 6];
        marked[1] = true;
        marked[5] = true;
        assert_eq!(s.coverage_count_marked(&marked), 4);
        assert_eq!(s.coverage_count_marked_excluding(&marked, &[]), 4);
        // Skipping a covered set drops it; skipping an uncovered one is free.
        assert_eq!(s.coverage_count_marked_excluding(&marked, &[0, 2]), 3);
        assert_eq!(s.coverage_count_marked_excluding(&marked, &[0, 1, 3, 4]), 0);
    }

    #[test]
    fn shared_frontier_query_matches_the_indexed_one() {
        let mut s = store_with(&[&[0, 1], &[1, 2], &[3], &[4, 5], &[0, 5]]);
        // Before any index exists the span-scan fallback answers.
        assert_eq!(s.sets_touching_shared(&users(&[1, 5])), vec![0, 1, 3, 4]);
        let indexed = s.sets_touching(&users(&[1, 5]));
        assert_eq!(s.sets_touching_shared(&users(&[1, 5])), indexed);
        // Replacements keep the shared view consistent (patched index path).
        s.replace_set(1, &users(&[5]));
        assert_eq!(
            s.sets_touching_shared(&users(&[2])),
            s.sets_touching(&users(&[2]))
        );
        assert_eq!(
            s.sets_touching_shared(&users(&[5])),
            s.sets_touching(&users(&[5]))
        );
        assert_eq!(s.sets_touching_shared(&users(&[99])), Vec::<SetId>::new());
    }

    #[test]
    fn serialization_round_trips_spans_and_rebuilds_the_index() {
        let mut s = store_with(&[&[0, 1], &[1, 2], &[3], &[4, 5], &[0, 5]]);
        s.rebuild_index();
        // Churn creates garbage so the writer proves it skips dead bytes.
        s.replace_set(1, &users(&[0, 3]));
        let mut out = Vec::new();
        s.serialize_into(&mut out);
        let mut cursor = out.as_slice();
        let restored = RrStore::deserialize_from(ItemId(0), 6, &mut cursor).unwrap();
        assert!(cursor.is_empty(), "reader must consume exactly the payload");
        assert_eq!(restored.len(), s.len());
        assert_eq!(restored.live_entries(), s.live_entries());
        for (id, set) in s.iter() {
            assert_eq!(restored.set(id), set, "set {id}");
        }
        assert!(restored.index_matches_rebuild());
        assert_eq!(restored.index_stats().full_rebuilds, 1);
        // The restored arena is garbage-free.
        assert_eq!(restored.garbage_ratio(), 0.0);
    }

    #[test]
    fn deserialization_rejects_corrupt_payloads() {
        let s = store_with(&[&[0, 1], &[4, 5]]);
        let mut out = Vec::new();
        s.serialize_into(&mut out);
        // Truncation anywhere inside the payload fails cleanly.
        for cut in 0..out.len() {
            let mut cursor = &out[..cut];
            assert!(
                RrStore::deserialize_from(ItemId(0), 6, &mut cursor).is_err(),
                "truncation at byte {cut} must be detected"
            );
        }
        // A member id past the user count fails validation.
        let mut cursor = out.as_slice();
        assert!(RrStore::deserialize_from(ItemId(0), 4, &mut cursor).is_err());
    }

    #[test]
    fn index_stats_absorb_and_since() {
        let mut a = IndexStats {
            entries_patched: 5,
            full_rebuilds: 1,
            compactions: 0,
        };
        let earlier = a;
        a.absorb(IndexStats {
            entries_patched: 3,
            full_rebuilds: 0,
            compactions: 2,
        });
        assert_eq!(a.entries_patched, 8);
        assert_eq!(a.full_rebuilds, 1);
        assert_eq!(a.compactions, 2);
        let delta = a.since(earlier);
        assert_eq!(delta.entries_patched, 3);
        assert_eq!(delta.full_rebuilds, 0);
        assert_eq!(delta.compactions, 2);
    }
}
