//! Parallel generation of reverse-reachable sets with deterministic
//! per-sample RNG streams.
//!
//! Every RR set is produced by its own RNG stream, seeded from
//! `(base_seed, item, stream_id)` — the same idiom as
//! `imdpp_diffusion::montecarlo`: the result is bit-identical regardless of
//! the number of worker threads, and any single set can be *re-generated
//! later in isolation* (against an updated scenario) by replaying its stream.
//! That replay property is what makes incremental maintenance exact: see
//! [`crate::incremental`].
//!
//! A set is sampled by drawing a uniform root and traversing in-edges
//! backwards, each edge `u' → u` being live with probability
//! `P_act(u', u, 0) · P_pref(u, item, 0)` — the IC triggering probability of
//! the restricted (frozen-dynamics, single-promotion) problem of Lemma 1.

use imdpp_diffusion::Scenario;
use imdpp_graph::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Mixes `(base_seed, item, stream)` into one RNG seed (SplitMix64-style
/// finalizers keep distinct streams statistically independent).
pub fn stream_seed(base_seed: u64, item: ItemId, stream: u64) -> u64 {
    let mut z = base_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)))
        .wrapping_add((item.0 as u64) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves a requested worker-thread count against the machine and the
/// amount of work.
///
/// This is the **one** place the `threads` knob is interpreted (every
/// sampling and refresh path funnels through it):
///
/// * `0` means *auto* — use every core `available_parallelism` reports
///   (see the [`crate::SketchConfig::threads`] rustdoc, where the
///   convention is documented for callers),
/// * explicit requests are capped at `available_parallelism` — spawning
///   more CPU-bound workers than cores only adds scheduling overhead —
///   and at `work_items`, since a worker without work is pure spawn cost,
/// * the result is never below 1.
///
/// Determinism never depends on the resolved value: every RR set is its own
/// RNG stream, so any worker count produces bit-identical output.
pub fn effective_threads(requested: usize, work_items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let requested = if requested == 0 { cores } else { requested };
    requested.min(cores).clamp(1, work_items.max(1))
}

/// Scratch state reused across samples so per-set allocations stay O(|set|).
pub(crate) struct Scratch {
    /// Stamp-based visited marks (`visited[u] == stamp` ⇔ visited now).
    visited: Vec<u64>,
    stamp: u64,
    queue: VecDeque<UserId>,
}

impl Scratch {
    pub(crate) fn new(user_count: usize) -> Self {
        Scratch {
            visited: vec![0; user_count],
            stamp: 0,
            queue: VecDeque::new(),
        }
    }
}

/// Samples the RR set of `stream` for `item` under the scenario's *initial*
/// probabilities.  Deterministic in `(scenario, item, base_seed, stream)`.
pub fn sample_set(scenario: &Scenario, item: ItemId, base_seed: u64, stream: u64) -> Vec<UserId> {
    let mut scratch = Scratch::new(scenario.user_count());
    sample_set_with(scenario, item, base_seed, stream, &mut scratch)
}

pub(crate) fn sample_set_with(
    scenario: &Scenario,
    item: ItemId,
    base_seed: u64,
    stream: u64,
    scratch: &mut Scratch,
) -> Vec<UserId> {
    let n = scenario.user_count();
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(stream_seed(base_seed, item, stream));
    scratch.stamp += 1;
    let stamp = scratch.stamp;
    scratch.queue.clear();

    let root = UserId(rng.gen_range(0..n as u32));
    scratch.visited[root.index()] = stamp;
    scratch.queue.push_back(root);
    let mut set = vec![root];
    while let Some(u) = scratch.queue.pop_front() {
        let pref = scenario.base_preference(u, item);
        for (v, strength) in scenario.social().influencers_of(u) {
            if scratch.visited[v.index()] == stamp {
                continue;
            }
            if rng.gen::<f64>() < strength * pref {
                scratch.visited[v.index()] = stamp;
                set.push(v);
                scratch.queue.push_back(v);
            }
        }
    }
    set
}

/// Samples the RR sets of `streams` in parallel, returning them ordered by
/// stream id.  Deterministic regardless of `threads`; the requested count
/// is resolved by [`effective_threads`] (`0` = auto, capped at the core
/// count and the stream count).
pub fn sample_streams(
    scenario: &Scenario,
    item: ItemId,
    base_seed: u64,
    streams: &[u64],
    threads: usize,
) -> Vec<Vec<UserId>> {
    sample_streams_with_workers(
        scenario,
        item,
        base_seed,
        streams,
        effective_threads(threads, streams.len()),
    )
}

/// [`sample_streams`] with an already-resolved worker count — `pub(crate)`
/// so tests can exercise the multi-worker path even on machines whose core
/// count would cap the public knob to 1.
pub(crate) fn sample_streams_with_workers(
    scenario: &Scenario,
    item: ItemId,
    base_seed: u64,
    streams: &[u64],
    threads: usize,
) -> Vec<Vec<UserId>> {
    let count = streams.len();
    let mut results: Vec<Vec<UserId>> = vec![Vec::new(); count];
    if threads <= 1 || count <= 1 {
        let mut scratch = Scratch::new(scenario.user_count());
        for (slot, &stream) in results.iter_mut().zip(streams) {
            *slot = sample_set_with(scenario, item, base_seed, stream, &mut scratch);
        }
        return results;
    }
    let next = AtomicUsize::new(0);
    let slots = Mutex::new(&mut results);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = Scratch::new(scenario.user_count());
                let mut local: Vec<(usize, Vec<UserId>)> = Vec::new();
                loop {
                    // lint: allow(atomic-ordering) — work-stealing ticket
                    // counter: the RMW alone guarantees each stream index is
                    // claimed once; results land in per-index slots behind
                    // the mutex, so no further ordering is required.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let set = sample_set_with(scenario, item, base_seed, streams[i], &mut scratch);
                    local.push((i, set));
                    // Flush in batches to keep lock traffic low.
                    if local.len() >= 64 {
                        let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
                        for (j, s) in local.drain(..) {
                            guard[j] = s;
                        }
                    }
                }
                let mut guard = slots.lock().unwrap_or_else(|e| e.into_inner());
                for (j, s) in local.drain(..) {
                    guard[j] = s;
                }
            });
        }
    });
    results
}

/// Convenience wrapper sampling the contiguous stream range `first..first + count`.
pub fn sample_range(
    scenario: &Scenario,
    item: ItemId,
    base_seed: u64,
    first: u64,
    count: usize,
    threads: usize,
) -> Vec<Vec<UserId>> {
    let streams: Vec<u64> = (first..first + count as u64).collect();
    sample_streams(scenario, item, base_seed, &streams, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_diffusion::scenario::toy_scenario;

    #[test]
    fn sets_contain_their_root_and_only_valid_users() {
        let s = toy_scenario();
        for stream in 0..32 {
            let set = sample_set(&s, ItemId(0), 9, stream);
            assert!(!set.is_empty());
            assert!(set.iter().all(|u| u.index() < s.user_count()));
            // No duplicates.
            let mut ids: Vec<u32> = set.iter().map(|u| u.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), set.len());
        }
    }

    #[test]
    fn streams_are_deterministic_and_independent_of_thread_count() {
        let s = toy_scenario();
        let streams: Vec<u64> = (0..64).collect();
        let sequential = sample_range(&s, ItemId(0), 5, 0, 64, 1);
        let parallel = sample_range(&s, ItemId(0), 5, 0, 64, 4);
        assert_eq!(sequential, parallel);
        // Force real multi-worker sampling regardless of the machine's core
        // count (the public knob caps at available_parallelism).
        for workers in [2usize, 4, 8] {
            let forced = sample_streams_with_workers(&s, ItemId(0), 5, &streams, workers);
            assert_eq!(sequential, forced, "{workers} workers");
        }
        // Replaying one stream in isolation reproduces the batch result.
        for (i, set) in sequential.iter().enumerate() {
            assert_eq!(*set, sample_set(&s, ItemId(0), 5, i as u64));
        }
    }

    #[test]
    fn effective_threads_resolves_auto_and_caps() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // 0 = auto: every available core (still capped by the work size).
        assert_eq!(effective_threads(0, usize::MAX), cores);
        assert_eq!(effective_threads(0, 1), 1);
        // Explicit requests cap at the core count...
        assert_eq!(effective_threads(cores + 7, usize::MAX), cores);
        // ...and at the number of work items, and never fall below 1.
        assert_eq!(effective_threads(8, 3), 3.min(cores));
        assert_eq!(effective_threads(1, 0), 1);
        assert_eq!(effective_threads(0, 0), 1);
    }

    #[test]
    fn effective_threads_floors_at_one_with_no_work() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        // A request exceeding both the core count and the (empty) work
        // list still floors at 1 — never 0 workers, never a spawn storm.
        assert_eq!(effective_threads(cores + 5, 0), 1);
        assert_eq!(effective_threads(usize::MAX, 0), 1);
        // One work item pins the answer at 1 regardless of the request.
        assert_eq!(effective_threads(usize::MAX, 1), 1);
        assert_eq!(effective_threads(cores, 1), 1);
    }

    #[test]
    fn different_streams_differ_somewhere() {
        let s = toy_scenario();
        let sets = sample_range(&s, ItemId(0), 5, 0, 32, 1);
        assert!(sets.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn different_items_use_different_streams() {
        let s = toy_scenario();
        let a = sample_range(&s, ItemId(0), 5, 0, 16, 1);
        let b = sample_range(&s, ItemId(1), 5, 0, 16, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn stream_seed_mixes_all_inputs() {
        let a = stream_seed(1, ItemId(0), 0);
        assert_ne!(a, stream_seed(2, ItemId(0), 0));
        assert_ne!(a, stream_seed(1, ItemId(1), 0));
        assert_ne!(a, stream_seed(1, ItemId(0), 1));
    }
}
