//! Maintained-solution repair: keep a previously solved seed set alive
//! across [`imdpp_core::oracle::ScenarioUpdate`]s instead of re-running
//! greedy from scratch.
//!
//! ## The idea
//!
//! The engine's solve path is dominated by the greedy pipeline, not by
//! sampling: after an incremental refresh the sketch is bit-identical to a
//! rebuild, yet every solve still pays full nominee selection plus the
//! Monte-Carlo heavy DRE/TDSI stages.  Following the maintained-solution
//! route of the dynamic influence-maximization literature (Yalavarthi &
//! Khan; Yang et al.), this module repairs the *greedy trace* instead:
//!
//! 1. The tracked refresh reports, per item, the **touched users** — the
//!    union of every re-sampled RR set's members before and after
//!    replacement ([`crate::ShardedRrStore::refresh_tracked_observed`]).
//!    A nominee `(u, x)` with `u` untouched for item `x` kept its covering
//!    set-ids bit-identical, and since the sketch objective is a sum of
//!    per-item coverage terms, every marginal computed among untouched
//!    nominees is numerically unchanged.
//! 2. The first greedy position holding a touched nominee is where the
//!    cached trace loses its certificate
//!    ([`first_invalidated_position`]); everything before it is still the
//!    exact CELF prefix of the refreshed world.
//! 3. [`repair_nominees`] re-runs CELF from that prefix
//!    ([`imdpp_core::nominees::select_nominees_with_prefix`]) and compares
//!    the repaired objective against a fresh full CELF run on the same
//!    refreshed sketch: the repaired set is kept only while
//!    `f(repaired) ≥ bound × f(fresh)`.  Both runs query only the sketch —
//!    no Monte-Carlo stage — so an apply-time repair costs a small multiple
//!    of nominee selection, not a full solve.
//!
//! Every quantity involved (touched users, CELF selections, objectives) is
//! a pure function of grid-invariant sketch state, so repair decisions and
//! [`RepairStats`] are bit-identical across shard and thread counts —
//! property-tested in `tests/solution_maintenance.rs`.

use imdpp_core::nominees::{
    select_nominees_with_prefix, Nominee, NomineeSelection, NomineeSelectionConfig,
};
use imdpp_core::problem::ImdppInstance;
use imdpp_core::SpreadOracle;
use imdpp_graph::UserId;

/// Absolute slack of the bound comparison, so exact ties (bound = 1.0 with
/// an untouched trace, or identical repaired/fresh sets) keep the repaired
/// solution regardless of floating-point summation order.
const BOUND_EPSILON: f64 = 1e-9;

/// Per-apply maintained-solution bookkeeping, surfaced on the engine's
/// `ApplyReport::solve_repair` and mirrored by the
/// `engine.maintain.{repairs,full_resolves}` counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "repair stats record whether the maintained solution survived; dropping them hides full re-solves"]
pub struct RepairStats {
    /// Greedy positions retained verbatim from the cached trace (the length
    /// of the still-certified CELF prefix).
    pub seeds_retained: usize,
    /// Greedy positions recomputed by the CELF repair tail (including
    /// positions appended beyond the cached trace's length).
    pub positions_repaired: usize,
    /// 1 when this update invalidated the maintained solution — the bound
    /// failed, or paranoid mode (`bound ≥ 1.0`) dropped it — forcing the
    /// next solve to run the full pipeline; 0 otherwise.
    pub full_resolves: u64,
}

impl RepairStats {
    /// Folds another apply's stats into an accumulated total.
    pub fn absorb(&mut self, other: &RepairStats) {
        self.seeds_retained += other.seeds_retained;
        self.positions_repaired += other.positions_repaired;
        self.full_resolves += other.full_resolves;
    }
}

/// Outcome of one [`repair_nominees`] call.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired CELF selection (cached prefix + recomputed tail).
    /// Meaningful only when `kept` is true.
    pub selection: NomineeSelection,
    /// Greedy positions retained from the cached trace.
    pub retained: usize,
    /// The objective of the fresh full CELF run the bound was checked
    /// against (the fresh-greedy upper bound of the tests).
    pub fresh_objective: f64,
    /// Whether the repaired set met the bound and should keep serving.
    pub kept: bool,
}

/// The first greedy position whose nominee was touched by a refresh:
/// position `i` is invalidated when `nominees[i] = (u, x)` and `u` appears
/// in `touched_by_item[x]`.  Returns `nominees.len()` when the whole trace
/// survived (every per-item touched list misses every same-item nominee).
///
/// `touched_by_item` is the per-item output of
/// [`crate::SketchOracle::refresh_tracked`]; its lists are sorted, so each
/// position costs one binary search.
pub fn first_invalidated_position(nominees: &[Nominee], touched_by_item: &[Vec<UserId>]) -> usize {
    nominees
        .iter()
        .position(|&(u, x)| {
            touched_by_item
                .get(x.index())
                .is_some_and(|users| users.binary_search(&u).is_ok())
        })
        .unwrap_or(nominees.len())
}

/// CELF-style repair of a cached greedy trace against a refreshed oracle.
///
/// Re-runs nominee selection from the first invalidated position's prefix
/// and checks the repaired objective against a fresh full selection on the
/// same (already refreshed) oracle: `kept` is true iff
/// `f(repaired) + ε ≥ bound × f(fresh)`.  Because the prefix positions are
/// untouched, their marginals — hence the prefix itself — are exactly what
/// fresh greedy would recompute up to that depth; only the tail can
/// diverge, and the bound quantifies by how much at most.
///
/// Both selections run against `oracle` only (for the engine: the RR
/// sketch), so the cost is two sketch-priced CELF passes — no Monte-Carlo.
pub fn repair_nominees(
    instance: &ImdppInstance,
    oracle: &dyn SpreadOracle,
    universe: &[Nominee],
    selection_config: &NomineeSelectionConfig,
    cached: &[Nominee],
    touched_by_item: &[Vec<UserId>],
    bound: f64,
) -> RepairOutcome {
    let retained = first_invalidated_position(cached, touched_by_item);
    let repaired = select_nominees_with_prefix(
        instance,
        oracle,
        universe,
        selection_config,
        &cached[..retained],
    );
    let fresh = select_nominees_with_prefix(instance, oracle, universe, selection_config, &[]);
    let kept = repaired.objective + BOUND_EPSILON >= bound * fresh.objective;
    RepairOutcome {
        fresh_objective: fresh.objective,
        selection: repaired,
        retained,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SketchConfig, SketchOracle};
    use imdpp_core::nominees::select_nominees_with_oracle;
    use imdpp_core::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::ItemId;

    fn instance(budget: f64) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, 2).unwrap()
    }

    #[test]
    fn first_invalidated_position_scans_per_item() {
        let nominees = vec![
            (UserId(3), ItemId(0)),
            (UserId(1), ItemId(1)),
            (UserId(2), ItemId(0)),
        ];
        let none: Vec<Vec<UserId>> = vec![Vec::new(), Vec::new()];
        assert_eq!(first_invalidated_position(&nominees, &none), 3);
        // User 1 touched for item 0 only: no nominee matches (user 1 is an
        // item-1 nominee).
        let wrong_item = vec![vec![UserId(1)], Vec::new()];
        assert_eq!(first_invalidated_position(&nominees, &wrong_item), 3);
        // Touching user 1 on item 1 invalidates position 1.
        let hit = vec![Vec::new(), vec![UserId(1)]];
        assert_eq!(first_invalidated_position(&nominees, &hit), 1);
        // Touching the head nominee invalidates everything.
        let head = vec![vec![UserId(3)], Vec::new()];
        assert_eq!(first_invalidated_position(&nominees, &head), 0);
        // Out-of-range items are treated as untouched.
        let short: Vec<Vec<UserId>> = vec![vec![UserId(2)]];
        assert_eq!(first_invalidated_position(&nominees, &short), 2);
    }

    #[test]
    fn untouched_trace_repairs_to_itself_and_is_kept() {
        let inst = instance(3.0);
        let oracle =
            SketchOracle::build(inst.scenario(), SketchConfig::fixed(256).with_base_seed(7));
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig::default();
        let full = select_nominees_with_oracle(&inst, &oracle, &universe, &cfg);
        assert!(!full.nominees.is_empty());

        let untouched: Vec<Vec<UserId>> = vec![Vec::new(); inst.scenario().item_count()];
        let outcome = repair_nominees(
            &inst,
            &oracle,
            &universe,
            &cfg,
            &full.nominees,
            &untouched,
            0.95,
        );
        assert!(outcome.kept);
        assert_eq!(outcome.retained, full.nominees.len());
        assert_eq!(outcome.selection.nominees, full.nominees);
        assert_eq!(outcome.selection.objective, full.objective);
        assert_eq!(outcome.fresh_objective, full.objective);
        // An exact tie survives even paranoid bounds at the outcome level.
        let paranoid = repair_nominees(
            &inst,
            &oracle,
            &universe,
            &cfg,
            &full.nominees,
            &untouched,
            1.0,
        );
        assert!(paranoid.kept);
    }

    #[test]
    fn fully_invalidated_trace_equals_fresh_greedy() {
        let inst = instance(3.0);
        let oracle =
            SketchOracle::build(inst.scenario(), SketchConfig::fixed(256).with_base_seed(7));
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig::default();
        let full = select_nominees_with_oracle(&inst, &oracle, &universe, &cfg);
        // Touch every user for every item: position 0 is invalidated and the
        // repair degenerates to a fresh run, which always meets any bound.
        let everyone: Vec<UserId> = inst.scenario().users().collect();
        let all_touched: Vec<Vec<UserId>> = vec![everyone; inst.scenario().item_count()];
        let outcome = repair_nominees(
            &inst,
            &oracle,
            &universe,
            &cfg,
            &full.nominees,
            &all_touched,
            1.0,
        );
        assert!(outcome.kept);
        assert_eq!(outcome.retained, 0);
        assert_eq!(outcome.selection.nominees, full.nominees);
        assert_eq!(outcome.selection.objective, outcome.fresh_objective);
    }
}
