//! The sharded RR-set store: one logical pool of RR sets partitioned across
//! `S` independent shards.
//!
//! ## Why shard
//!
//! The flat [`RrStore`] keeps one arena and one inverted index per item.
//! Past ~10⁵ users both structures become large enough that (a) a refresh
//! touching them stalls on one memory region and (b) parallel generation
//! cannot write shard-locally.  `ShardedRrStore` partitions the sets across
//! `S` shards, each owning *its own arena and its own inverted index*, so
//! maintenance work and (future) parallel generation touch only shard-local
//! memory — the NUMA-friendly layout the ROADMAP's scale item asks for.
//!
//! ## Determinism invariants
//!
//! * **Set → shard assignment is a pure function of the set id**:
//!   `shard(id) = id mod S`, with the shard-local slot `id div S`.  A set's
//!   id equals its RNG stream id (see [`crate::sampler`]), so a sampling
//!   stream lands in the same shard no matter when it is (re)played, and a
//!   sharded store refreshed incrementally holds exactly the sets a rebuilt
//!   one would.
//! * **Global iteration order is id order** regardless of `S`, so
//!   estimates, greedy selections and store-equality checks are
//!   shard-count-independent, and `S = 1` degenerates to exactly the flat
//!   store.
//! * Coverage counting aggregates *per-shard partial counters* (one shared
//!   user bitmap, one count per shard) and the estimate divides the summed
//!   coverage by the summed set count — bit-identical to the flat formula
//!   because both operate on the same integers.
//!
//! Index maintenance inherits the flat store's tombstone + append + periodic
//! compaction scheme per shard; see [`crate::store`] for the invariants and
//! [`IndexStats`] for the counters proving no post-build rebuilds happen.

use crate::store::{IndexStats, RrStore, SetId};
use imdpp_graph::{ItemId, UserId};

/// RR sets for one item, partitioned across shards by `id mod S`.
///
/// The public surface mirrors [`RrStore`] with *global* set ids; use
/// [`ShardedRrStore::shard`] to reach the per-shard stores (whose ids are
/// shard-local).
#[derive(Clone, Debug)]
pub struct ShardedRrStore {
    shards: Vec<RrStore>,
    /// Global set count (`Σ` shard lengths; next id to assign).
    total: usize,
}

impl ShardedRrStore {
    /// Creates an empty store for `item` over `user_count` users with
    /// `shard_count` shards (`0` is treated as `1`).
    pub fn new(item: ItemId, user_count: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        ShardedRrStore {
            shards: (0..shard_count)
                .map(|_| RrStore::new(item, user_count))
                .collect(),
            total: 0,
        }
    }

    /// The item the sets were sampled for.
    pub fn item(&self) -> ItemId {
        self.shards[0].item()
    }

    /// Number of users in the underlying scenario.
    pub fn user_count(&self) -> usize {
        self.shards[0].user_count()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's flat store (set ids inside it are shard-local).
    pub fn shard(&self, shard: usize) -> &RrStore {
        &self.shards[shard]
    }

    /// Total number of RR sets across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total live arena entries across all shards.
    pub fn live_entries(&self) -> usize {
        self.shards.iter().map(|s| s.live_entries()).sum()
    }

    /// The shard holding global set `id`.
    pub fn shard_of(&self, id: SetId) -> usize {
        id as usize % self.shards.len()
    }

    /// The shard-local id of global set `id` (the inverse mapping
    /// `global = local · S + shard` appears inline where iteration already
    /// borrows the shards mutably).
    fn local(&self, id: SetId) -> SetId {
        id / self.shards.len() as SetId
    }

    /// Aggregated inverted-index maintenance counters across shards.
    pub fn index_stats(&self) -> IndexStats {
        let mut stats = IndexStats::default();
        for shard in &self.shards {
            stats.absorb(shard.index_stats());
        }
        stats
    }

    /// Appends a new set, returning its global id (always `len() - 1`
    /// afterwards).  Ids must be assigned densely in order — which they are,
    /// since this method assigns them — for the `id mod S` placement to
    /// match the shard-local slot `id div S`.
    pub fn push_set(&mut self, users: &[UserId]) -> SetId {
        let id = self.total as SetId;
        let shard = self.shard_of(id);
        let local = self.shards[shard].push_set(users);
        debug_assert_eq!(local, self.local(id));
        self.total += 1;
        id
    }

    /// Replaces the contents of global set `id`, patching the owning
    /// shard's index incrementally.
    pub fn replace_set(&mut self, id: SetId, users: &[UserId]) {
        let shard = self.shard_of(id);
        let local = self.local(id);
        self.shards[shard].replace_set(local, users);
    }

    /// The users of global set `id`.
    pub fn set(&self, id: SetId) -> &[u32] {
        self.shards[self.shard_of(id)].set(self.local(id))
    }

    /// Iterator over `(global id, users)` pairs in global id order —
    /// independent of the shard count.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, &[u32])> + '_ {
        (0..self.total as SetId).map(move |id| (id, self.set(id)))
    }

    /// Rebuilds every shard's inverted index with a full counting pass.
    /// Needed once after bulk construction; incremental maintenance takes
    /// over from there.
    pub fn rebuild_index(&mut self) {
        for shard in &mut self.shards {
            shard.rebuild_index();
        }
    }

    /// The sorted, deduplicated *global* ids of all sets containing any of
    /// `users` — aggregated across shards.  The head list is prepared
    /// (bounds-filtered, sorted, deduplicated) once, not per shard.
    pub fn sets_touching(&mut self, users: &[UserId]) -> Vec<SetId> {
        let heads = crate::store::prepare_heads(users, self.user_count());
        let shard_count = self.shards.len();
        let mut ids = Vec::new();
        for (si, shard) in self.shards.iter_mut().enumerate() {
            ids.extend(
                shard
                    .sets_touching_prepared(&heads)
                    .into_iter()
                    .map(|local| local * shard_count as SetId + si as SetId),
            );
        }
        // Shards partition the id space, so cross-shard duplicates cannot
        // occur; per-shard results are already deduplicated.
        ids.sort_unstable();
        ids
    }

    /// Equivalence of every shard's incrementally maintained index with a
    /// fresh rebuild (`debug_assert`ed by the refresh paths).
    pub fn index_matches_rebuild(&self) -> bool {
        self.shards.iter().all(|s| s.index_matches_rebuild())
    }

    /// Number of sets hit by the given seed users: per-shard partial
    /// counters over one shared seed bitmap, summed.
    pub fn coverage_count(&self, seeds: &[UserId]) -> usize {
        if self.total == 0 || seeds.is_empty() {
            return 0;
        }
        let user_count = self.user_count();
        let mut marked = vec![false; user_count];
        for &u in seeds {
            if u.index() < user_count {
                marked[u.index()] = true;
            }
        }
        self.shards
            .iter()
            .map(|s| s.coverage_count_marked(&marked))
            .sum()
    }

    /// Unbiased estimate of the expected adopters of the store's item when
    /// `seeds` are seeded in the first promotion — the flat store's formula
    /// over the aggregated counters, hence shard-count-independent.
    pub fn estimate_adopters(&self, seeds: &[UserId]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.user_count() as f64 * self.coverage_count(seeds) as f64 / self.total as f64
    }

    /// Standard error of [`Self::estimate_adopters`] under the binomial
    /// coverage model.
    pub fn estimate_std_error(&self, seeds: &[UserId]) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let p = self.coverage_count(seeds) as f64 / self.total as f64;
        self.user_count() as f64 * (p * (1.0 - p) / self.total as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(ids: &[u32]) -> Vec<UserId> {
        ids.iter().map(|&u| UserId(u)).collect()
    }

    fn stores_with(shards: usize, sets: &[&[u32]]) -> (RrStore, ShardedRrStore) {
        let mut flat = RrStore::new(ItemId(0), 8);
        let mut sharded = ShardedRrStore::new(ItemId(0), 8, shards);
        for set in sets {
            flat.push_set(&users(set));
            sharded.push_set(&users(set));
        }
        flat.rebuild_index();
        sharded.rebuild_index();
        (flat, sharded)
    }

    const SETS: &[&[u32]] = &[&[0, 1], &[1, 2], &[3], &[4, 5, 6], &[0, 6], &[2], &[7]];

    #[test]
    fn single_shard_is_the_flat_store() {
        let (flat, sharded) = stores_with(1, SETS);
        assert_eq!(sharded.shard_count(), 1);
        for (id, set) in flat.iter() {
            assert_eq!(sharded.set(id), set);
        }
        assert_eq!(
            flat.coverage_count(&users(&[1, 6])),
            sharded.coverage_count(&users(&[1, 6]))
        );
    }

    #[test]
    fn global_iteration_is_id_ordered_for_any_shard_count() {
        for shards in [1, 2, 3, 4, 7] {
            let (flat, sharded) = stores_with(shards, SETS);
            let flat_view: Vec<(SetId, Vec<u32>)> =
                flat.iter().map(|(id, s)| (id, s.to_vec())).collect();
            let sharded_view: Vec<(SetId, Vec<u32>)> =
                sharded.iter().map(|(id, s)| (id, s.to_vec())).collect();
            assert_eq!(flat_view, sharded_view, "{shards} shards");
        }
    }

    #[test]
    fn shard_assignment_is_id_mod_s() {
        let (_, sharded) = stores_with(3, SETS);
        for id in 0..SETS.len() as SetId {
            assert_eq!(sharded.shard_of(id), id as usize % 3);
        }
        // Shard lengths partition the total.
        let total: usize = (0..3).map(|s| sharded.shard(s).len()).sum();
        assert_eq!(total, SETS.len());
    }

    #[test]
    fn estimates_and_frontiers_match_the_flat_store() {
        for shards in [2, 4, 7] {
            let (mut flat, mut sharded) = stores_with(shards, SETS);
            for probe in [&[1u32][..], &[0, 6], &[7], &[2, 3, 4]] {
                assert_eq!(
                    flat.estimate_adopters(&users(probe)),
                    sharded.estimate_adopters(&users(probe)),
                );
                assert_eq!(
                    flat.estimate_std_error(&users(probe)),
                    sharded.estimate_std_error(&users(probe)),
                );
                assert_eq!(
                    flat.sets_touching(&users(probe)),
                    sharded.sets_touching(&users(probe)),
                );
            }
        }
    }

    #[test]
    fn replacement_patches_the_owning_shard_only() {
        let (mut flat, mut sharded) = stores_with(4, SETS);
        let before = sharded.index_stats();
        flat.replace_set(3, &users(&[2, 7]));
        sharded.replace_set(3, &users(&[2, 7]));
        assert_eq!(sharded.set(3), &[2, 7]);
        assert_eq!(
            flat.sets_touching(&users(&[7])),
            sharded.sets_touching(&users(&[7]))
        );
        assert!(sharded.index_matches_rebuild());
        let delta = sharded.index_stats().since(before);
        assert_eq!(delta.full_rebuilds, 0);
        assert!(delta.entries_patched > 0);
        // Untouched shards did no work.
        for s in [0usize, 1, 2] {
            assert_eq!(sharded.shard(s).index_stats().entries_patched, 0);
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = ShardedRrStore::new(ItemId(2), 4, 0);
        assert_eq!(s.shard_count(), 1);
        assert!(s.is_empty());
        assert_eq!(s.estimate_adopters(&users(&[0])), 0.0);
        assert_eq!(s.estimate_std_error(&users(&[0])), 0.0);
    }
}
