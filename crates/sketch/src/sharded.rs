//! The sharded RR-set store: one logical pool of RR sets partitioned across
//! `S` independent shards.
//!
//! ## Why shard
//!
//! The flat [`RrStore`] keeps one arena and one inverted index per item.
//! Past ~10⁵ users both structures become large enough that (a) a refresh
//! touching them stalls on one memory region and (b) parallel generation
//! cannot write shard-locally.  `ShardedRrStore` partitions the sets across
//! `S` shards, each owning *its own arena and its own inverted index*, so
//! maintenance work and (future) parallel generation touch only shard-local
//! memory — the NUMA-friendly layout the ROADMAP's scale item asks for.
//!
//! ## Determinism invariants
//!
//! * **Set → shard assignment is a pure function of the set id**:
//!   `shard(id) = id mod S`, with the shard-local slot `id div S`.  A set's
//!   id equals its RNG stream id (see [`crate::sampler`]), so a sampling
//!   stream lands in the same shard no matter when it is (re)played, and a
//!   sharded store refreshed incrementally holds exactly the sets a rebuilt
//!   one would.
//! * **Global iteration order is id order** regardless of `S`, so
//!   estimates, greedy selections and store-equality checks are
//!   shard-count-independent, and `S = 1` degenerates to exactly the flat
//!   store.
//! * Coverage counting aggregates *per-shard partial counters* (one shared
//!   user bitmap, one count per shard) and the estimate divides the summed
//!   coverage by the summed set count — bit-identical to the flat formula
//!   because both operate on the same integers.
//!
//! Index maintenance inherits the flat store's tombstone + append + periodic
//! compaction scheme per shard; see [`crate::store`] for the invariants and
//! [`IndexStats`] for the counters proving no post-build rebuilds happen.

use crate::incremental::RefreshStats;
use crate::persist;
use crate::sampler;
use crate::store::{IndexStats, RrStore, SetId};
use crate::telemetry::SketchMetrics;
use imdpp_diffusion::{ImdppError, Scenario};
use imdpp_graph::{ItemId, UserId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs every task through `job` on a dynamic work-queue of up to `workers`
/// scoped threads, returning the results **in task order**.  `workers` must
/// already be resolved ([`sampler::effective_threads`]); `workers <= 1`
/// runs inline.
///
/// Workers claim tasks with an atomic ticket counter, so load balances
/// dynamically no matter how skewed individual tasks are — the property
/// that lets one queue serve heterogeneous (item × shard) units instead of
/// one thread per shard.  Each task runs exactly once (tickets are unique),
/// and because a task owns whatever mutable state it carries (e.g. `&mut
/// RrStore`), workers share nothing and the result is identical to the
/// inline loop by construction.
fn run_queue<S: Send, T: Send>(
    tasks: Vec<S>,
    workers: usize,
    job: impl Fn(usize, S) -> T + Sync,
) -> Vec<T> {
    if workers <= 1 || tasks.len() <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, task)| job(i, task))
            .collect();
    }
    let slots: Vec<Mutex<Option<S>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..slots.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(slots.len()))
            .map(|_| {
                let slots = &slots;
                let next = &next;
                let job = &job;
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        // lint: allow(atomic-ordering) — work-stealing
                        // ticket counter: the RMW alone guarantees each task
                        // index is claimed once; task state is handed over
                        // through the slot mutex, so no further ordering is
                        // required.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= slots.len() {
                            break;
                        }
                        let task = slots[i].lock().unwrap_or_else(|e| e.into_inner()).take();
                        if let Some(task) = task {
                            local.push((i, job(i, task)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            let local = match handle.join() {
                Ok(local) => local,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            for (i, result) in local {
                results[i] = Some(result);
            }
        }
    });
    results
        .into_iter()
        .map(|slot| match slot {
            Some(result) => result,
            None => unreachable!("every ticket is claimed exactly once"),
        })
        .collect()
}

/// Runs `job` once per shard on the dynamic work-queue ([`run_queue`]
/// with one task per shard); results are returned in shard order.
fn for_each_shard<T: Send>(
    shards: &mut [RrStore],
    workers: usize,
    job: impl Fn(usize, &mut RrStore) -> T + Sync,
) -> Vec<T> {
    run_queue(shards.iter_mut().collect(), workers, |si, shard| {
        job(si, shard)
    })
}

/// One (item, shard) build task: samples and pushes the streams
/// `{si, si + stride, …} < count` of the shard's item, then performs the
/// shard's one full index build.  Pure shard-local work — the unit both
/// [`ShardedRrStore::build_observed`] and the cross-item
/// [`build_stores_observed`] queue fan out.
fn build_shard_task(
    shard: &mut RrStore,
    si: usize,
    stride: usize,
    scenario: &Scenario,
    base_seed: u64,
    count: usize,
) {
    let item = shard.item();
    let mut scratch = sampler::Scratch::new(scenario.user_count());
    let mut stream = si as u64;
    while (stream as usize) < count {
        let set = sampler::sample_set_with(scenario, item, base_seed, stream, &mut scratch);
        let local = shard.push_set(&set);
        debug_assert_eq!(local as u64 * stride as u64 + si as u64, stream);
        stream += stride as u64;
    }
    shard.rebuild_index();
}

/// One (item, shard) refresh task: queries the shard's index with the
/// prepared frontier, replays every invalidated stream against `updated`,
/// and patches the shard's own index.  Returns the resampled count, the
/// index-maintenance delta and (when `track`) the shard's touched users —
/// the per-shard triple [`merge_refresh`] folds into one store report.
fn refresh_shard_task(
    shard: &mut RrStore,
    si: usize,
    stride: usize,
    updated: &Scenario,
    base_seed: u64,
    prepared: &[u32],
    track: bool,
) -> (usize, IndexStats, Vec<UserId>) {
    let item = shard.item();
    let before = shard.index_stats();
    let invalid = shard.sets_touching_prepared(prepared);
    let mut scratch = sampler::Scratch::new(updated.user_count());
    let mut touched: Vec<UserId> = Vec::new();
    for &local in &invalid {
        if track {
            touched.extend(shard.set_members(local).map(UserId));
        }
        let stream = local as u64 * stride as u64 + si as u64;
        let set = sampler::sample_set_with(updated, item, base_seed, stream, &mut scratch);
        if track {
            touched.extend_from_slice(&set);
        }
        shard.replace_set(local, &set);
    }
    (invalid.len(), shard.index_stats().since(before), touched)
}

/// Folds one store's per-shard refresh triples (in shard order) into the
/// store-level [`RefreshStats`] and touched-user list, recording the
/// semantic counters.  The set counters are shard-independent (the frontier
/// partitions across shards) and the touched list is sorted + deduplicated,
/// so the merged report is identical for any `(threads, shards)` grid point.
fn merge_refresh(
    total_sets: usize,
    per_shard: Vec<(usize, IndexStats, Vec<UserId>)>,
    metrics: &SketchMetrics,
) -> (RefreshStats, Vec<UserId>) {
    let mut stats = RefreshStats {
        total_sets,
        stores: 1,
        ..RefreshStats::default()
    };
    let mut touched: Vec<UserId> = Vec::new();
    for (resampled, delta, shard_touched) in per_shard {
        stats.resampled_sets += resampled;
        stats.index_entries_patched += delta.entries_patched;
        stats.full_rebuilds += delta.full_rebuilds;
        touched.extend(shard_touched);
    }
    touched.sort_unstable();
    touched.dedup();
    metrics.sets_resampled.add(stats.resampled_sets as u64);
    metrics
        .sets_reused
        .add((stats.total_sets - stats.resampled_sets) as u64);
    metrics
        .index_entries_patched
        .add(stats.index_entries_patched);
    metrics.index_full_rebuilds.add(stats.full_rebuilds);
    metrics
        .refresh_resampled_permille
        .record((1000.0 * stats.resampled_fraction()) as u64);
    (stats, touched)
}

/// Builds one [`ShardedRrStore`] per item by fanning **(item × shard)**
/// tasks onto one dynamic work-queue — the cross-item parallel path
/// [`crate::oracle::SketchOracle`] builds through.  Each task samples and
/// indexes one shard of one item ([`build_shard_task`]) and records one
/// `shard_build_ns` observation, exactly like the per-store builds.
///
/// Shard `s` of every item still owns exactly the streams `{s, s + S, …}`
/// and every stream is its own RNG, so the result is bit-identical to
/// building the stores one by one — for any `(threads, shards)` combination
/// and any task interleaving.
pub(crate) fn build_stores_observed(
    scenario: &Scenario,
    items: &[ItemId],
    shard_count: usize,
    base_seed: u64,
    count: usize,
    threads: usize,
    metrics: &SketchMetrics,
) -> Vec<ShardedRrStore> {
    let mut stores: Vec<ShardedRrStore> = items
        .iter()
        .map(|&item| ShardedRrStore::new(item, scenario.user_count(), shard_count))
        .collect();
    metrics.sets_sampled.add((count * items.len()) as u64);
    let stride = stores.first().map_or(1, |s| s.shard_count());
    let mut tasks: Vec<(usize, &mut RrStore)> = Vec::new();
    for store in stores.iter_mut() {
        for (si, shard) in store.shards.iter_mut().enumerate() {
            tasks.push((si, shard));
        }
    }
    let workers = sampler::effective_threads(threads, tasks.len());
    run_queue(tasks, workers, |_, (si, shard)| {
        let _span = metrics.shard_build_ns.start();
        build_shard_task(shard, si, stride, scenario, base_seed, count);
    });
    for store in stores.iter_mut() {
        store.total = count;
    }
    stores
}

/// Refreshes many stores at once by fanning **(item × shard)** tasks onto
/// one dynamic work-queue — the cross-item parallel path every
/// [`crate::oracle::SketchOracle`] refresh goes through.  `frontiers[i]`
/// is store `i`'s head list: `Some(heads)` refreshes the store (even when
/// the prepared frontier comes out empty — the refresh is still counted),
/// `None` skips it entirely, reporting the synthetic "nothing to do" stats
/// and recording no telemetry, exactly like the sequential per-store loop
/// this replaces.
///
/// Returns one `(stats, touched users)` pair per store, in store order.
/// Per-store results are merged from the per-shard triples in shard order
/// ([`merge_refresh`]), so stats, touched lists and every recorded counter
/// are bit-identical to the store-at-a-time path for any `(threads,
/// shards)` combination and any task interleaving.
pub(crate) fn refresh_stores_tracked_observed(
    stores: &mut [ShardedRrStore],
    updated: &Scenario,
    base_seed: u64,
    frontiers: &[Option<&[UserId]>],
    threads: usize,
    metrics: &SketchMetrics,
    track: bool,
) -> Vec<(RefreshStats, Vec<UserId>)> {
    debug_assert_eq!(stores.len(), frontiers.len());
    // Prepared frontiers and per-store refresh telemetry, in store order.
    let prepared: Vec<Option<Vec<u32>>> = stores
        .iter()
        .zip(frontiers)
        .map(|(store, frontier)| {
            frontier.map(|heads| {
                let prepared = crate::store::prepare_heads(heads, store.user_count());
                metrics.refreshes.incr();
                metrics.refresh_frontier_heads.record(prepared.len() as u64);
                prepared
            })
        })
        .collect();
    let strides: Vec<usize> = stores.iter().map(|s| s.shard_count()).collect();
    let mut tasks: Vec<(usize, usize, &mut RrStore)> = Vec::new();
    for (ii, store) in stores.iter_mut().enumerate() {
        if prepared[ii].is_none() {
            continue;
        }
        for (si, shard) in store.shards.iter_mut().enumerate() {
            tasks.push((ii, si, shard));
        }
    }
    let workers = sampler::effective_threads(threads, tasks.len());
    let results = run_queue(tasks, workers, |_, (ii, si, shard)| {
        let _span = metrics.shard_refresh_ns.start();
        let frontier = prepared[ii].as_deref().unwrap_or(&[]);
        (
            ii,
            refresh_shard_task(shard, si, strides[ii], updated, base_seed, frontier, track),
        )
    });
    // Task order is store-major, shard-minor, so regrouping preserves the
    // shard order merge_refresh expects.
    let mut per_store: Vec<Vec<(usize, IndexStats, Vec<UserId>)>> =
        (0..stores.len()).map(|_| Vec::new()).collect();
    for (ii, triple) in results {
        per_store[ii].push(triple);
    }
    stores
        .iter()
        .enumerate()
        .map(|(ii, store)| {
            if prepared[ii].is_none() {
                return (
                    RefreshStats {
                        total_sets: store.len(),
                        stores: 1,
                        ..RefreshStats::default()
                    },
                    Vec::new(),
                );
            }
            debug_assert!(
                store.index_matches_rebuild(),
                "patched inverted index diverged from rebuild_index"
            );
            merge_refresh(store.len(), std::mem::take(&mut per_store[ii]), metrics)
        })
        .collect()
}

/// RR sets for one item, partitioned across shards by `id mod S`.
///
/// The public surface mirrors [`RrStore`] with *global* set ids; use
/// [`ShardedRrStore::shard`] to reach the per-shard stores (whose ids are
/// shard-local).
#[derive(Clone, Debug)]
pub struct ShardedRrStore {
    shards: Vec<RrStore>,
    /// Global set count (`Σ` shard lengths; next id to assign).
    total: usize,
}

impl ShardedRrStore {
    /// Creates an empty store for `item` over `user_count` users with
    /// `shard_count` shards (`0` is treated as `1`).
    pub fn new(item: ItemId, user_count: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        ShardedRrStore {
            shards: (0..shard_count)
                .map(|_| RrStore::new(item, user_count))
                .collect(),
            total: 0,
        }
    }

    /// Builds a store by sampling RR sets `0..count` for `item` against
    /// `scenario`, generating **shard-parallel**: each shard's sets are
    /// sampled, pushed and indexed by one worker, writing only shard-local
    /// memory (`threads` is resolved by [`sampler::effective_threads`];
    /// workers are capped at the shard count, so `S = 1` falls back to the
    /// stream-parallel flat path).
    ///
    /// Because shard `s` owns exactly the streams `{s, s + S, …}` and every
    /// stream is its own RNG, the result is bit-identical to pushing streams
    /// `0..count` sequentially — for any `(threads, shards)` combination.
    /// Each worker ends with its shard's one full index build, so the
    /// aggregated [`IndexStats::full_rebuilds`] is `shard_count` afterwards.
    pub fn build(
        scenario: &Scenario,
        item: ItemId,
        shard_count: usize,
        base_seed: u64,
        count: usize,
        threads: usize,
    ) -> Self {
        Self::build_observed(
            scenario,
            item,
            shard_count,
            base_seed,
            count,
            threads,
            &SketchMetrics::noop(),
        )
    }

    /// [`ShardedRrStore::build`] with telemetry: each shard worker records
    /// its wall-clock into `metrics.shard_build_ns` (one observation per
    /// shard, so the spread measures worker imbalance) and the sampled-set
    /// count folds into `metrics.sets_sampled`.  Recording is write-only —
    /// the built store is bit-identical to the unmetered one.
    pub fn build_observed(
        scenario: &Scenario,
        item: ItemId,
        shard_count: usize,
        base_seed: u64,
        count: usize,
        threads: usize,
        metrics: &SketchMetrics,
    ) -> Self {
        let mut store = ShardedRrStore::new(item, scenario.user_count(), shard_count);
        let shard_count = store.shard_count();
        metrics.sets_sampled.add(count as u64);
        if shard_count == 1 {
            // One shard: the parallel unit degenerates to the stream level.
            let _span = metrics.shard_build_ns.start();
            for set in &sampler::sample_range(scenario, item, base_seed, 0, count, threads) {
                store.shards[0].push_set(set);
            }
            store.shards[0].rebuild_index();
            store.total = count;
            return store;
        }
        let workers = sampler::effective_threads(threads, shard_count);
        for_each_shard(&mut store.shards, workers, |si, shard| {
            let _span = metrics.shard_build_ns.start();
            build_shard_task(shard, si, shard_count, scenario, base_seed, count);
        });
        store.total = count;
        store
    }

    /// Appends the sets of streams `len()..len() + count`, sampled against
    /// `scenario`, shard-parallel like [`ShardedRrStore::build`] — the
    /// growth path of adaptive sizing.  Unlike `build` this patches already
    /// built indexes incrementally (no rebuild), and the stream → shard
    /// partition (`id mod S`) is thread-independent, so grown stores stay
    /// bit-identical to sequentially grown ones.
    pub fn extend(&mut self, scenario: &Scenario, base_seed: u64, count: usize, threads: usize) {
        self.extend_observed(scenario, base_seed, count, threads, &SketchMetrics::noop());
    }

    /// [`ShardedRrStore::extend`] with telemetry: per-shard wall-clock into
    /// `metrics.shard_extend_ns`, grown-set count into
    /// `metrics.sets_sampled`.
    pub fn extend_observed(
        &mut self,
        scenario: &Scenario,
        base_seed: u64,
        count: usize,
        threads: usize,
        metrics: &SketchMetrics,
    ) {
        let item = self.item();
        let first = self.total as u64;
        let shard_count = self.shards.len();
        metrics.sets_sampled.add(count as u64);
        if shard_count == 1 {
            let _span = metrics.shard_extend_ns.start();
            for set in &sampler::sample_range(scenario, item, base_seed, first, count, threads) {
                self.shards[0].push_set(set);
            }
            self.total += count;
            return;
        }
        let end = first + count as u64;
        let workers = sampler::effective_threads(threads, shard_count);
        for_each_shard(&mut self.shards, workers, |si, shard| {
            let _span = metrics.shard_extend_ns.start();
            let mut scratch = sampler::Scratch::new(scenario.user_count());
            // The smallest stream ≥ first congruent to si (mod S).
            let s = shard_count as u64;
            let mut stream = first + (si as u64 + s - first % s) % s;
            while stream < end {
                let set = sampler::sample_set_with(scenario, item, base_seed, stream, &mut scratch);
                let local = shard.push_set(&set);
                debug_assert_eq!(local as u64 * s + si as u64, stream);
                stream += s;
            }
        });
        self.total += count;
    }

    /// Re-samples exactly the sets containing any of `heads` against
    /// `updated` (an already-frozen scenario), **refreshing every shard on
    /// its own worker**: each worker queries its shard's inverted index
    /// with the shared prepared frontier, replays the invalidated streams,
    /// and patches its own index — no cross-shard writes, no rebuilds.
    ///
    /// Returns the merged per-shard [`RefreshStats`].  The frontier is a
    /// pure function of `heads` and the (shard-count-independent) set
    /// contents, and every re-sampled set replays its own RNG stream, so
    /// the refreshed store *and* the returned counters are bit-identical
    /// for any `(threads, shards)` combination.
    pub fn refresh(
        &mut self,
        updated: &Scenario,
        base_seed: u64,
        heads: &[UserId],
        threads: usize,
    ) -> RefreshStats {
        self.refresh_observed(updated, base_seed, heads, threads, &SketchMetrics::noop())
    }

    /// [`ShardedRrStore::refresh`] with telemetry: per-shard wall-clock into
    /// `metrics.shard_refresh_ns`, the prepared frontier size into
    /// `metrics.refresh_frontier_heads`, and the merged [`RefreshStats`]
    /// folded into the `sets_resampled` / `sets_reused` /
    /// `index_entries_patched` / `index_full_rebuilds` counters plus the
    /// `refresh_resampled_permille` fraction histogram.  All of those
    /// semantic values are pure functions of the store contents and the
    /// frontier — shard- and thread-count-independent — so metered runs
    /// stay bit-comparable across the grid.
    pub fn refresh_observed(
        &mut self,
        updated: &Scenario,
        base_seed: u64,
        heads: &[UserId],
        threads: usize,
        metrics: &SketchMetrics,
    ) -> RefreshStats {
        self.refresh_impl(updated, base_seed, heads, threads, metrics, false)
            .0
    }

    /// [`ShardedRrStore::refresh_observed`] that additionally reports the
    /// **touched users**: the sorted, deduplicated union of every re-sampled
    /// set's members *before and after* replacement.  A user absent from
    /// this list kept its covering set-ids bit-identical through the
    /// refresh, so any coverage-based marginal involving only untouched
    /// users is numerically unchanged — the invariant the engine's
    /// maintained-solution repair is built on.
    ///
    /// Tracking is read-only bookkeeping: the refreshed store and the
    /// returned [`RefreshStats`] are bit-identical to the untracked path,
    /// and the touched-user list is a pure function of the store contents
    /// and the frontier (per-shard lists are merged in shard order, then
    /// sorted), hence identical for any `(threads, shards)` combination.
    pub fn refresh_tracked_observed(
        &mut self,
        updated: &Scenario,
        base_seed: u64,
        heads: &[UserId],
        threads: usize,
        metrics: &SketchMetrics,
    ) -> (RefreshStats, Vec<UserId>) {
        self.refresh_impl(updated, base_seed, heads, threads, metrics, true)
    }

    fn refresh_impl(
        &mut self,
        updated: &Scenario,
        base_seed: u64,
        heads: &[UserId],
        threads: usize,
        metrics: &SketchMetrics,
        track: bool,
    ) -> (RefreshStats, Vec<UserId>) {
        let prepared = crate::store::prepare_heads(heads, self.user_count());
        metrics.refreshes.incr();
        metrics.refresh_frontier_heads.record(prepared.len() as u64);
        let item = self.item();
        let shard_count = self.shards.len();
        let per_shard: Vec<(usize, IndexStats, Vec<UserId>)> = if shard_count == 1 {
            // One shard: parallelize over the invalidated streams instead.
            let _span = metrics.shard_refresh_ns.start();
            let shard = &mut self.shards[0];
            let before = shard.index_stats();
            let invalid = shard.sets_touching_prepared(&prepared);
            let mut touched: Vec<UserId> = Vec::new();
            if track {
                for &id in &invalid {
                    touched.extend(shard.set_members(id).map(UserId));
                }
            }
            let streams: Vec<u64> = invalid.iter().map(|&id| id as u64).collect();
            let fresh = sampler::sample_streams(updated, item, base_seed, &streams, threads);
            for (&id, set) in invalid.iter().zip(&fresh) {
                if track {
                    touched.extend_from_slice(set);
                }
                shard.replace_set(id, set);
            }
            vec![(invalid.len(), shard.index_stats().since(before), touched)]
        } else {
            let workers = sampler::effective_threads(threads, shard_count);
            for_each_shard(&mut self.shards, workers, |si, shard| {
                let _span = metrics.shard_refresh_ns.start();
                refresh_shard_task(shard, si, shard_count, updated, base_seed, &prepared, track)
            })
        };
        // The equivalence check the incremental index is specified by: after
        // patching, membership answers match a from-scratch counting rebuild.
        debug_assert!(
            self.index_matches_rebuild(),
            "patched inverted index diverged from rebuild_index"
        );
        // Merge the per-shard work into one store-level report.  The set
        // counters are shard-independent (the frontier partitions across
        // shards); only compaction timing — not counted here — may differ.
        merge_refresh(self.total, per_shard, metrics)
    }

    /// The item the sets were sampled for.
    pub fn item(&self) -> ItemId {
        self.shards[0].item()
    }

    /// Number of users in the underlying scenario.
    pub fn user_count(&self) -> usize {
        self.shards[0].user_count()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's flat store (set ids inside it are shard-local).
    pub fn shard(&self, shard: usize) -> &RrStore {
        &self.shards[shard]
    }

    /// Total number of RR sets across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Total live arena entries across all shards.
    pub fn live_entries(&self) -> usize {
        self.shards.iter().map(|s| s.live_entries()).sum()
    }

    /// Encoded bytes of the live spans across all shards — a pure function
    /// of the set contents, hence shard- and history-independent (garbage
    /// awaiting compaction is excluded).
    pub fn live_arena_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.live_arena_bytes()).sum()
    }

    /// Bytes the live entries would occupy in the uncompressed `u32`-pool
    /// layout — the baseline the compression ratio is measured against.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.uncompressed_bytes()).sum()
    }

    /// The shard holding global set `id`.
    pub fn shard_of(&self, id: SetId) -> usize {
        id as usize % self.shards.len()
    }

    /// The shard-local id of global set `id` (the inverse mapping
    /// `global = local · S + shard` appears inline where iteration already
    /// borrows the shards mutably).
    fn local(&self, id: SetId) -> SetId {
        id / self.shards.len() as SetId
    }

    /// Aggregated inverted-index maintenance counters across shards.
    pub fn index_stats(&self) -> IndexStats {
        let mut stats = IndexStats::default();
        for shard in &self.shards {
            stats.absorb(shard.index_stats());
        }
        stats
    }

    /// Appends a new set, returning its global id (always `len() - 1`
    /// afterwards).  Ids must be assigned densely in order — which they are,
    /// since this method assigns them — for the `id mod S` placement to
    /// match the shard-local slot `id div S`.
    pub fn push_set(&mut self, users: &[UserId]) -> SetId {
        let id = self.total as SetId;
        let shard = self.shard_of(id);
        let local = self.shards[shard].push_set(users);
        debug_assert_eq!(local, self.local(id));
        self.total += 1;
        id
    }

    /// Replaces the contents of global set `id`, patching the owning
    /// shard's index incrementally.
    pub fn replace_set(&mut self, id: SetId, users: &[UserId]) {
        let shard = self.shard_of(id);
        let local = self.local(id);
        self.shards[shard].replace_set(local, users);
    }

    /// The users of global set `id`, decoded in ascending id order
    /// (allocates; hot paths should prefer [`ShardedRrStore::set_members`]).
    pub fn set(&self, id: SetId) -> Vec<u32> {
        self.shards[self.shard_of(id)].set(self.local(id))
    }

    /// Zero-allocation decoding iterator over the users of global set `id`
    /// (ascending id order).
    pub fn set_members(&self, id: SetId) -> crate::arena::SetMembers<'_> {
        self.shards[self.shard_of(id)].set_members(self.local(id))
    }

    /// Iterator over `(global id, users)` pairs in global id order —
    /// independent of the shard count.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, Vec<u32>)> + '_ {
        (0..self.total as SetId).map(move |id| (id, self.set(id)))
    }

    /// Rebuilds every shard's inverted index with a full counting pass.
    /// Needed once after bulk construction; incremental maintenance takes
    /// over from there.
    pub fn rebuild_index(&mut self) {
        for shard in &mut self.shards {
            shard.rebuild_index();
        }
    }

    /// The sorted, deduplicated *global* ids of all sets containing any of
    /// `users` — aggregated across shards.  The head list is prepared
    /// (bounds-filtered, sorted, deduplicated) once, not per shard.
    pub fn sets_touching(&mut self, users: &[UserId]) -> Vec<SetId> {
        let heads = crate::store::prepare_heads(users, self.user_count());
        let shard_count = self.shards.len();
        let mut ids = Vec::new();
        for (si, shard) in self.shards.iter_mut().enumerate() {
            ids.extend(
                shard
                    .sets_touching_prepared(&heads)
                    .into_iter()
                    .map(|local| local * shard_count as SetId + si as SetId),
            );
        }
        // Shards partition the id space, so cross-shard duplicates cannot
        // occur; per-shard results are already deduplicated.
        ids.sort_unstable();
        ids
    }

    /// The sorted *global* ids of all sets containing any of `users`,
    /// answered through a **shared** (`&self`) borrow — the serving-tier
    /// variant of [`ShardedRrStore::sets_touching`] tenant-overlay
    /// construction uses against a pinned snapshot.  Identical output to
    /// the `&mut` path: shards partition the id space, so mapping each
    /// shard-local hit back to `local · S + shard` and sorting reproduces
    /// the global id order with no duplicates.
    pub fn sets_touching_shared(&self, users: &[UserId]) -> Vec<SetId> {
        let shard_count = self.shards.len();
        let mut ids = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            ids.extend(
                shard
                    .sets_touching_shared(users)
                    .into_iter()
                    .map(|local| local * shard_count as SetId + si as SetId),
            );
        }
        ids.sort_unstable();
        ids
    }

    /// Answers up to 64 coverage queries in one pass over every shard's
    /// arena: `masks[u]` carries one bit per query seeding user `u`, `full`
    /// is the union of all live query bits, and `counts[q]` is incremented
    /// by the number of sets query `q` covers — accumulated across shards,
    /// exactly like [`ShardedRrStore::coverage_count`] sums its per-shard
    /// partial counters.  See [`RrStore::coverage_counts_masked`] for the
    /// per-span semantics; the batched counts equal 64 independent
    /// single-query passes by construction.
    pub fn coverage_counts_masked(&self, masks: &[u64], full: u64, counts: &mut [usize]) {
        for shard in &self.shards {
            shard.coverage_counts_masked(masks, full, counts);
        }
    }

    /// Number of sets hit by the marked users, **excluding** the sorted
    /// *global* set ids in `skip` — the base-store side of a tenant
    /// overlay's coverage count, where the skipped sets are answered from
    /// the overlay's patch instead.  Global ids split by residue class
    /// (`shard = id mod S`, `local = id div S`); ascending globals of one
    /// residue class map to ascending locals, so the per-shard skip lists
    /// stay sorted for the flat store's binary search.
    pub fn coverage_count_marked_excluding(&self, marked: &[bool], skip: &[SetId]) -> usize {
        debug_assert!(
            skip.windows(2).all(|w| w[0] < w[1]),
            "skip ids must be sorted"
        );
        let shard_count = self.shards.len();
        if skip.is_empty() {
            return self
                .shards
                .iter()
                .map(|s| s.coverage_count_marked(marked))
                .sum();
        }
        let mut local_skips: Vec<Vec<SetId>> = vec![Vec::new(); shard_count];
        for &id in skip {
            local_skips[id as usize % shard_count].push(id / shard_count as SetId);
        }
        self.shards
            .iter()
            .zip(&local_skips)
            .map(|(shard, skip)| shard.coverage_count_marked_excluding(marked, skip))
            .sum()
    }

    /// Writes the store's persistent form: shard count, global set count,
    /// then each shard's spans in shard order ([`RrStore::serialize_into`]).
    pub(crate) fn serialize_into(&self, out: &mut Vec<u8>) {
        persist::write_varint(self.shards.len() as u32, out);
        persist::write_varint64(self.total as u64, out);
        for shard in &self.shards {
            shard.serialize_into(out);
        }
    }

    /// Reads a store back from its persistent form, validating every span
    /// and rebuilding each shard's inverted index from the decoded contents
    /// — **zero** RR sets are re-sampled.  The shard count is part of the
    /// payload, so a snapshot restores only into an engine configured with
    /// the same sharding (the engine's fingerprint check enforces this
    /// before any store payload is read).
    ///
    /// # Errors
    /// [`ImdppError::InvalidConfig`] on truncation, span corruption, or a
    /// shard layout inconsistent with the recorded set count.
    pub(crate) fn deserialize_from(
        item: ItemId,
        user_count: usize,
        input: &mut &[u8],
    ) -> Result<Self, ImdppError> {
        let shard_count = persist::read_varint(input)? as usize;
        if shard_count == 0 {
            return Err(persist::corrupt("store has zero shards"));
        }
        let total = persist::read_varint64(input)? as usize;
        let mut shards = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let shard = RrStore::deserialize_from(item, user_count, input)?;
            let expected = total / shard_count + usize::from(s < total % shard_count);
            if shard.len() != expected {
                return Err(persist::corrupt(
                    "shard length inconsistent with the recorded set count",
                ));
            }
            shards.push(shard);
        }
        Ok(ShardedRrStore { shards, total })
    }

    /// Equivalence of every shard's incrementally maintained index with a
    /// fresh rebuild (`debug_assert`ed by the refresh paths).
    pub fn index_matches_rebuild(&self) -> bool {
        self.shards.iter().all(|s| s.index_matches_rebuild())
    }

    /// Number of sets hit by the given seed users: per-shard partial
    /// counters over one shared seed bitmap, summed.
    pub fn coverage_count(&self, seeds: &[UserId]) -> usize {
        if self.total == 0 || seeds.is_empty() {
            return 0;
        }
        let user_count = self.user_count();
        let mut marked = vec![false; user_count];
        for &u in seeds {
            if u.index() < user_count {
                marked[u.index()] = true;
            }
        }
        self.shards
            .iter()
            .map(|s| s.coverage_count_marked(&marked))
            .sum()
    }

    /// Unbiased estimate of the expected adopters of the store's item when
    /// `seeds` are seeded in the first promotion — the flat store's formula
    /// over the aggregated counters, hence shard-count-independent.
    pub fn estimate_adopters(&self, seeds: &[UserId]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.user_count() as f64 * self.coverage_count(seeds) as f64 / self.total as f64
    }

    /// Standard error of [`Self::estimate_adopters`] under the binomial
    /// coverage model.
    pub fn estimate_std_error(&self, seeds: &[UserId]) -> f64 {
        if self.total < 2 {
            return 0.0;
        }
        let p = self.coverage_count(seeds) as f64 / self.total as f64;
        self.user_count() as f64 * (p * (1.0 - p) / self.total as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users(ids: &[u32]) -> Vec<UserId> {
        ids.iter().map(|&u| UserId(u)).collect()
    }

    fn stores_with(shards: usize, sets: &[&[u32]]) -> (RrStore, ShardedRrStore) {
        let mut flat = RrStore::new(ItemId(0), 8);
        let mut sharded = ShardedRrStore::new(ItemId(0), 8, shards);
        for set in sets {
            flat.push_set(&users(set));
            sharded.push_set(&users(set));
        }
        flat.rebuild_index();
        sharded.rebuild_index();
        (flat, sharded)
    }

    const SETS: &[&[u32]] = &[&[0, 1], &[1, 2], &[3], &[4, 5, 6], &[0, 6], &[2], &[7]];

    #[test]
    fn single_shard_is_the_flat_store() {
        let (flat, sharded) = stores_with(1, SETS);
        assert_eq!(sharded.shard_count(), 1);
        for (id, set) in flat.iter() {
            assert_eq!(sharded.set(id), set);
        }
        assert_eq!(
            flat.coverage_count(&users(&[1, 6])),
            sharded.coverage_count(&users(&[1, 6]))
        );
    }

    #[test]
    fn global_iteration_is_id_ordered_for_any_shard_count() {
        for shards in [1, 2, 3, 4, 7] {
            let (flat, sharded) = stores_with(shards, SETS);
            let flat_view: Vec<(SetId, Vec<u32>)> =
                flat.iter().map(|(id, s)| (id, s.to_vec())).collect();
            let sharded_view: Vec<(SetId, Vec<u32>)> =
                sharded.iter().map(|(id, s)| (id, s.to_vec())).collect();
            assert_eq!(flat_view, sharded_view, "{shards} shards");
        }
    }

    #[test]
    fn shard_assignment_is_id_mod_s() {
        let (_, sharded) = stores_with(3, SETS);
        for id in 0..SETS.len() as SetId {
            assert_eq!(sharded.shard_of(id), id as usize % 3);
        }
        // Shard lengths partition the total.
        let total: usize = (0..3).map(|s| sharded.shard(s).len()).sum();
        assert_eq!(total, SETS.len());
    }

    #[test]
    fn estimates_and_frontiers_match_the_flat_store() {
        for shards in [2, 4, 7] {
            let (mut flat, mut sharded) = stores_with(shards, SETS);
            for probe in [&[1u32][..], &[0, 6], &[7], &[2, 3, 4]] {
                assert_eq!(
                    flat.estimate_adopters(&users(probe)),
                    sharded.estimate_adopters(&users(probe)),
                );
                assert_eq!(
                    flat.estimate_std_error(&users(probe)),
                    sharded.estimate_std_error(&users(probe)),
                );
                assert_eq!(
                    flat.sets_touching(&users(probe)),
                    sharded.sets_touching(&users(probe)),
                );
            }
        }
    }

    #[test]
    fn replacement_patches_the_owning_shard_only() {
        let (mut flat, mut sharded) = stores_with(4, SETS);
        let before = sharded.index_stats();
        flat.replace_set(3, &users(&[2, 7]));
        sharded.replace_set(3, &users(&[2, 7]));
        assert_eq!(sharded.set(3), &[2, 7]);
        assert_eq!(
            flat.sets_touching(&users(&[7])),
            sharded.sets_touching(&users(&[7]))
        );
        assert!(sharded.index_matches_rebuild());
        let delta = sharded.index_stats().since(before);
        assert_eq!(delta.full_rebuilds, 0);
        assert!(delta.entries_patched > 0);
        // Untouched shards did no work.
        for s in [0usize, 1, 2] {
            assert_eq!(sharded.shard(s).index_stats().entries_patched, 0);
        }
    }

    #[test]
    fn for_each_shard_spawns_workers_and_preserves_order() {
        // Forced worker counts exercise the scoped-spawn path even on
        // single-core machines (the public knob caps at the core count).
        for shards in [2usize, 3, 4, 7] {
            let mut pool: Vec<RrStore> = (0..shards).map(|_| RrStore::new(ItemId(0), 4)).collect();
            for workers in [1usize, 2, 3, 8] {
                let indices = for_each_shard(&mut pool, workers, |si, shard| {
                    shard.push_set(&users(&[si as u32 % 4]));
                    si
                });
                assert_eq!(indices, (0..shards).collect::<Vec<_>>());
            }
            // Every job above ran exactly once per shard per worker count.
            for shard in &pool {
                assert_eq!(shard.len(), 4);
            }
        }
    }

    fn sequential_reference(
        scenario: &imdpp_diffusion::Scenario,
        shards: usize,
        count: usize,
    ) -> ShardedRrStore {
        let mut store = ShardedRrStore::new(ItemId(0), scenario.user_count(), shards);
        for set in &sampler::sample_range(scenario, ItemId(0), 77, 0, count, 1) {
            store.push_set(set);
        }
        store.rebuild_index();
        store
    }

    fn assert_stores_identical(a: &ShardedRrStore, b: &ShardedRrStore, label: &str) {
        assert_eq!(a.len(), b.len(), "{label}");
        for (id, set) in a.iter() {
            assert_eq!(set, b.set(id), "{label}: set {id}");
        }
    }

    #[test]
    fn parallel_build_matches_sequential_pushes() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        for shards in [1usize, 2, 4, 7] {
            let reference = sequential_reference(&scenario, shards, 96);
            for threads in [1usize, 2, 4, 8] {
                let built = ShardedRrStore::build(&scenario, ItemId(0), shards, 77, 96, threads);
                assert_stores_identical(&built, &reference, &format!("{shards}x{threads}"));
                assert!(built.index_matches_rebuild());
                // Exactly one full index build per shard, none beyond.
                assert_eq!(built.index_stats().full_rebuilds, shards as u64);
            }
        }
    }

    #[test]
    fn parallel_extend_matches_sequential_growth() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        for shards in [1usize, 3, 4] {
            let reference = sequential_reference(&scenario, shards, 90);
            for threads in [1usize, 2, 8] {
                // Build 32 then grow twice (odd amounts so shard loads skew).
                let mut grown =
                    ShardedRrStore::build(&scenario, ItemId(0), shards, 77, 32, threads);
                grown.extend(&scenario, 77, 13, threads);
                grown.extend(&scenario, 77, 45, threads);
                assert_stores_identical(&grown, &reference, &format!("{shards}x{threads}"));
                assert!(grown.index_matches_rebuild());
                // Growth patches the index; rebuilds stay at construction.
                assert_eq!(grown.index_stats().full_rebuilds, shards as u64);
            }
        }
    }

    #[test]
    fn parallel_refresh_matches_flat_refresh_and_merges_stats() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        let drifted = scenario.with_base_preference(UserId(1), ItemId(0), 0.9);
        let heads = [UserId(0), UserId(1), UserId(2)];
        let mut flat = ShardedRrStore::build(&scenario, ItemId(0), 1, 77, 128, 1);
        let flat_stats = flat.refresh(&drifted, 77, &heads, 1);
        assert!(flat_stats.resampled_sets > 0);
        for shards in [2usize, 4, 7] {
            for threads in [1usize, 2, 8] {
                let mut store =
                    ShardedRrStore::build(&scenario, ItemId(0), shards, 77, 128, threads);
                let stats = store.refresh(&drifted, 77, &heads, threads);
                assert_stores_identical(&store, &flat, &format!("{shards}x{threads}"));
                // RefreshStats are bit-identical across the grid: the
                // frontier partitions across shards and patched-entry
                // counts depend only on set contents.
                assert_eq!(stats, flat_stats, "{shards} shards, {threads} threads");
                assert_eq!(stats.full_rebuilds, 0);
            }
        }
    }

    #[test]
    fn observed_paths_record_without_changing_results() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        let drifted = scenario.with_base_preference(UserId(1), ItemId(0), 0.9);
        let heads = [UserId(0), UserId(1), UserId(2)];
        let telemetry = imdpp_obs::Telemetry::new();
        let metrics = SketchMetrics::new(&telemetry);

        let mut observed =
            ShardedRrStore::build_observed(&scenario, ItemId(0), 3, 77, 96, 2, &metrics);
        observed.extend_observed(&scenario, 77, 32, 2, &metrics);
        let observed_stats = observed.refresh_observed(&drifted, 77, &heads, 2, &metrics);

        // Bit-identical to the unmetered path, including the stats.
        let mut plain = ShardedRrStore::build(&scenario, ItemId(0), 3, 77, 96, 2);
        plain.extend(&scenario, 77, 32, 2);
        let plain_stats = plain.refresh(&drifted, 77, &heads, 2);
        assert_stores_identical(&observed, &plain, "observed vs plain");
        assert_eq!(observed_stats, plain_stats);

        // ...and the registry saw the work.
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("sketch.sets_sampled"), Some(96 + 32));
        assert_eq!(
            snap.counter("sketch.sets_resampled"),
            Some(observed_stats.resampled_sets as u64)
        );
        assert_eq!(
            snap.counter("sketch.sets_reused"),
            Some((observed_stats.total_sets - observed_stats.resampled_sets) as u64)
        );
        assert_eq!(
            snap.counter("sketch.index_entries_patched"),
            Some(observed_stats.index_entries_patched)
        );
        assert_eq!(snap.counter("sketch.index_full_rebuilds"), Some(0));
        assert_eq!(snap.counter("sketch.refreshes"), Some(1));
        // One wall-clock observation per shard per build/extend/refresh.
        let shard_hist = |name: &str| {
            snap.histogram(name)
                .unwrap_or_else(|| panic!("histogram {name} was never registered"))
        };
        assert_eq!(shard_hist("sketch.shard_build_ns").count, 3);
        assert_eq!(shard_hist("sketch.shard_extend_ns").count, 3);
        assert_eq!(shard_hist("sketch.shard_refresh_ns").count, 3);
        let frontier = shard_hist("sketch.refresh_frontier_heads");
        assert_eq!(frontier.count, 1);
        assert_eq!(frontier.sum, heads.len() as u64);
    }

    #[test]
    fn tracked_refresh_is_bit_identical_and_grid_deterministic() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        let drifted = scenario.with_base_preference(UserId(1), ItemId(0), 0.9);
        let heads = [UserId(0), UserId(1), UserId(2)];
        let metrics = SketchMetrics::noop();

        let mut plain = ShardedRrStore::build(&scenario, ItemId(0), 1, 77, 128, 1);
        // The invalidated ids, and their members before the refresh...
        let invalid = plain.sets_touching(&heads);
        let mut expected: Vec<UserId> = invalid
            .iter()
            .flat_map(|&id| plain.set(id).iter().map(|&u| UserId(u)).collect::<Vec<_>>())
            .collect();
        let plain_stats = plain.refresh(&drifted, 77, &heads, 1);
        // ...plus the same ids' members after it.
        for &id in &invalid {
            expected.extend(plain.set(id).iter().map(|&u| UserId(u)));
        }
        expected.sort_unstable();
        expected.dedup();

        for shards in [1usize, 2, 4, 7] {
            for threads in [1usize, 2, 8] {
                let mut store =
                    ShardedRrStore::build(&scenario, ItemId(0), shards, 77, 128, threads);
                let (stats, touched) =
                    store.refresh_tracked_observed(&drifted, 77, &heads, threads, &metrics);
                assert_stores_identical(&store, &plain, &format!("{shards}x{threads}"));
                assert_eq!(stats, plain_stats, "{shards}x{threads}");
                assert!(!touched.is_empty());
                // The touched-user list is sorted, deduplicated, and the
                // same for every grid point.
                assert!(touched.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(touched, expected, "{shards}x{threads}");
            }
        }
    }

    #[test]
    fn shared_frontier_and_batched_coverage_match_the_single_query_paths() {
        for shards in [1usize, 2, 3, 4, 7] {
            let (_, mut sharded) = stores_with(shards, SETS);
            let queries: &[&[u32]] = &[&[1], &[0, 6], &[7], &[2, 3, 4], &[]];
            // Shared-borrow frontier == exclusive-borrow frontier.
            for seeds in queries {
                assert_eq!(
                    sharded.sets_touching_shared(&users(seeds)),
                    sharded.sets_touching(&users(seeds)),
                    "{shards} shards, seeds {seeds:?}"
                );
            }
            // Batched masked coverage == one coverage_count per query.
            let mut masks = vec![0u64; sharded.user_count()];
            let mut full = 0u64;
            for (q, seeds) in queries.iter().enumerate() {
                for &u in *seeds {
                    masks[u as usize] |= 1 << q;
                    full |= 1 << q;
                }
            }
            let mut counts = vec![0usize; queries.len()];
            sharded.coverage_counts_masked(&masks, full, &mut counts);
            for (q, seeds) in queries.iter().enumerate() {
                assert_eq!(
                    counts[q],
                    sharded.coverage_count(&users(seeds)),
                    "{shards} shards, query {q}"
                );
            }
        }
    }

    #[test]
    fn excluding_coverage_splits_global_skip_ids_correctly() {
        for shards in [1usize, 2, 3, 4] {
            let (_, sharded) = stores_with(shards, SETS);
            let mut marked = vec![false; 8];
            for u in [1usize, 6] {
                marked[u] = true;
            }
            let all: usize = (0..shards)
                .map(|s| sharded.shard(s).coverage_count_marked(&marked))
                .sum();
            assert_eq!(sharded.coverage_count_marked_excluding(&marked, &[]), all);
            // Sets 0, 1, 3, 4 cover {1, 6}; skipping two of them drops two.
            assert_eq!(
                sharded.coverage_count_marked_excluding(&marked, &[0, 4]),
                all - 2,
                "{shards} shards"
            );
            // Skipping every covering set reaches zero.
            assert_eq!(
                sharded.coverage_count_marked_excluding(&marked, &[0, 1, 3, 4]),
                0,
                "{shards} shards"
            );
        }
    }

    #[test]
    fn serialization_round_trips_across_the_shard_grid() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        for shards in [1usize, 2, 4, 7] {
            let mut store = ShardedRrStore::build(&scenario, ItemId(0), shards, 77, 96, 2);
            // Churn so the payload proves garbage is skipped.
            let _ = store.refresh(
                &scenario.with_base_preference(UserId(1), ItemId(0), 0.9),
                77,
                &[UserId(1)],
                2,
            );
            let mut out = Vec::new();
            store.serialize_into(&mut out);
            let mut cursor = out.as_slice();
            let restored =
                ShardedRrStore::deserialize_from(ItemId(0), scenario.user_count(), &mut cursor)
                    .unwrap();
            assert!(cursor.is_empty());
            assert_eq!(restored.shard_count(), shards);
            assert_stores_identical(&restored, &store, &format!("{shards} shards"));
            assert!(restored.index_matches_rebuild());
            assert_eq!(restored.live_arena_bytes(), store.live_arena_bytes());
        }
    }

    #[test]
    fn deserialization_rejects_inconsistent_shard_layouts() {
        let (_, sharded) = stores_with(3, SETS);
        let mut out = Vec::new();
        sharded.serialize_into(&mut out);
        // A truncated payload fails at every cut point.
        for cut in [0, 1, out.len() / 2, out.len() - 1] {
            let mut cursor = &out[..cut];
            assert!(ShardedRrStore::deserialize_from(ItemId(0), 8, &mut cursor).is_err());
        }
        // Zero shards is rejected before any span is read.
        let mut zero = Vec::new();
        persist::write_varint(0, &mut zero);
        persist::write_varint64(0, &mut zero);
        let mut cursor = zero.as_slice();
        assert!(ShardedRrStore::deserialize_from(ItemId(0), 8, &mut cursor).is_err());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = ShardedRrStore::new(ItemId(2), 4, 0);
        assert_eq!(s.shard_count(), 1);
        assert!(s.is_empty());
        assert_eq!(s.estimate_adopters(&users(&[0])), 0.0);
        assert_eq!(s.estimate_std_error(&users(&[0])), 0.0);
    }
}
