//! Dense integer identifiers used across the whole reproduction suite.
//!
//! Users and items are identified by dense `u32` indices.  Newtypes keep the
//! two spaces from being mixed up at compile time while staying `Copy` and
//! 4 bytes wide (the suite routinely stores millions of them in vectors).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a user (a node of the social network).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifier of an item (a promotable product / course / point of interest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ItemId(pub u32);

impl UserId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `UserId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        UserId(u32::try_from(idx).expect("user index exceeds u32::MAX"))
    }
}

impl ItemId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `ItemId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `idx` does not fit in `u32`.
    #[inline]
    pub fn from_index(idx: usize) -> Self {
        ItemId(u32::try_from(idx).expect("item index exceeds u32::MAX"))
    }
}

impl fmt::Debug for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Debug for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

impl From<u32> for ItemId {
    fn from(v: u32) -> Self {
        ItemId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_round_trips_through_index() {
        let u = UserId::from_index(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u, UserId(42));
    }

    #[test]
    fn item_id_round_trips_through_index() {
        let x = ItemId::from_index(7);
        assert_eq!(x.index(), 7);
        assert_eq!(x, ItemId(7));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(ItemId(9).to_string(), "x9");
        assert_eq!(format!("{:?}", UserId(3)), "u3");
        assert_eq!(format!("{:?}", ItemId(9)), "x9");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(UserId(1) < UserId(2));
        assert!(ItemId(5) > ItemId(0));
    }

    #[test]
    #[should_panic(expected = "user index exceeds u32::MAX")]
    fn from_index_panics_on_overflow() {
        let _ = UserId::from_index(u32::MAX as usize + 1);
    }
}
