//! Compressed-sparse-row storage of a weighted directed graph.
//!
//! `CsrGraph` stores both the forward (out-neighbour) and reverse
//! (in-neighbour) adjacency of a directed graph in four flat vectors, which
//! is the access pattern the diffusion simulator and the seed-selection
//! algorithms need: "who does `u` influence?" and "who can influence `u`?"
//! are both answered by one contiguous slice.

use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// A directed edge with a floating-point weight (influence strength).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightedEdge {
    /// Source node.
    pub src: UserId,
    /// Destination node.
    pub dst: UserId,
    /// Edge weight (an influence probability in `[0, 1]` for social graphs).
    pub weight: f64,
}

/// Compressed-sparse-row representation of a weighted directed graph.
///
/// Nodes are the dense indices `0..node_count()`.  Both the out-adjacency and
/// the in-adjacency are materialised so that forward diffusion and reverse
/// influence queries are O(degree).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrGraph {
    node_count: usize,
    // Forward adjacency.
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    out_weights: Vec<f64>,
    // Reverse adjacency.
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
    in_weights: Vec<f64>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list over `node_count` nodes.
    ///
    /// Edges whose endpoints are out of range are rejected with a panic; the
    /// caller ([`crate::builder::GraphBuilder`]) is expected to validate and
    /// deduplicate.
    pub fn from_edges(node_count: usize, edges: &[WeightedEdge]) -> Self {
        for e in edges {
            assert!(
                e.src.index() < node_count && e.dst.index() < node_count,
                "edge {:?} -> {:?} out of range for {} nodes",
                e.src,
                e.dst,
                node_count
            );
        }

        let (out_offsets, out_targets, out_weights) =
            Self::bucket(node_count, edges.iter().map(|e| (e.src, e.dst, e.weight)));
        let (in_offsets, in_sources, in_weights) =
            Self::bucket(node_count, edges.iter().map(|e| (e.dst, e.src, e.weight)));

        CsrGraph {
            node_count,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        }
    }

    /// Counting-sort style bucketing of `(key, value, weight)` triples.
    fn bucket(
        node_count: usize,
        triples: impl Iterator<Item = (UserId, UserId, f64)> + Clone,
    ) -> (Vec<u32>, Vec<u32>, Vec<f64>) {
        let mut counts = vec![0u32; node_count + 1];
        let mut total = 0usize;
        for (k, _, _) in triples.clone() {
            counts[k.index() + 1] += 1;
            total += 1;
        }
        for i in 0..node_count {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut values = vec![0u32; total];
        let mut weights = vec![0.0f64; total];
        for (k, v, w) in triples {
            let pos = cursor[k.index()] as usize;
            values[pos] = v.0;
            weights[pos] = w;
            cursor[k.index()] += 1;
        }
        (offsets, values, weights)
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = UserId> + '_ {
        (0..self.node_count as u32).map(UserId)
    }

    /// Out-neighbours of `u` together with the edge weights.
    #[inline]
    pub fn out_edges(&self, u: UserId) -> impl Iterator<Item = (UserId, f64)> + '_ {
        let lo = self.out_offsets[u.index()] as usize;
        let hi = self.out_offsets[u.index() + 1] as usize;
        self.out_targets[lo..hi]
            .iter()
            .zip(&self.out_weights[lo..hi])
            .map(|(&t, &w)| (UserId(t), w))
    }

    /// In-neighbours of `u` together with the edge weights.
    #[inline]
    pub fn in_edges(&self, u: UserId) -> impl Iterator<Item = (UserId, f64)> + '_ {
        let lo = self.in_offsets[u.index()] as usize;
        let hi = self.in_offsets[u.index() + 1] as usize;
        self.in_sources[lo..hi]
            .iter()
            .zip(&self.in_weights[lo..hi])
            .map(|(&s, &w)| (UserId(s), w))
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: UserId) -> usize {
        (self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]) as usize
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: UserId) -> usize {
        (self.in_offsets[u.index() + 1] - self.in_offsets[u.index()]) as usize
    }

    /// Returns the weight of the edge `u -> v`, if present.
    ///
    /// If parallel edges exist the first one is returned; the
    /// [`crate::builder::GraphBuilder`] deduplicates by default.
    pub fn edge_weight(&self, u: UserId, v: UserId) -> Option<f64> {
        self.out_edges(u).find(|&(t, _)| t == v).map(|(_, w)| w)
    }

    /// True if the edge `u -> v` exists.
    pub fn has_edge(&self, u: UserId, v: UserId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Returns the edges in an order whose [`CsrGraph::from_edges`]
    /// bucketing reproduces **both** the out- and the in-adjacency order of
    /// every node of this graph.
    ///
    /// [`CsrGraph::to_edge_list`] only preserves out-adjacency order (it
    /// enumerates by source, losing the construction order that shaped the
    /// in-lists).  Both adjacencies are projections of the original
    /// construction sequence, so a common linear extension always exists;
    /// this recovers one by a Kahn merge of the per-source and
    /// per-destination chains.  Used by [`CsrGraph::apply_edge_updates`],
    /// where in-adjacency order is load-bearing (RNG-stream replay).
    pub fn interleaved_edge_list(&self) -> Vec<WeightedEdge> {
        // Edge ids in out-major order: per-source chains are consecutive runs.
        let edges = self.to_edge_list();
        let count = edges.len();
        // Pair every in-list entry with its edge id: per-(src, dst) FIFOs in
        // out-major order give a stable pairing even under parallel edges.
        let mut by_pair: std::collections::HashMap<(u32, u32), std::collections::VecDeque<u32>> =
            std::collections::HashMap::new();
        for (id, e) in edges.iter().enumerate() {
            by_pair
                .entry((e.src.0, e.dst.0))
                .or_default()
                .push_back(id as u32);
        }
        // Predecessor constraints: previous edge in the same source chain,
        // previous edge in the same destination (in-list) chain.
        let mut indegree = vec![0u8; count];
        let mut succs: Vec<[u32; 2]> = vec![[u32::MAX; 2]; count];
        for (id, e) in edges.iter().enumerate().skip(1) {
            if edges[id - 1].src == e.src {
                succs[id - 1][0] = id as u32;
                indegree[id] += 1;
            }
        }
        for d in self.nodes() {
            let mut prev: Option<u32> = None;
            for (s, _) in self.in_edges(d) {
                let id = by_pair
                    .get_mut(&(s.0, d.0))
                    .and_then(|q| q.pop_front())
                    .expect("in-list entry must have a matching out-list edge");
                if let Some(p) = prev {
                    succs[p as usize][1] = id;
                    indegree[id as usize] += 1;
                }
                prev = Some(id);
            }
        }
        // Kahn merge, smallest ready id first for determinism.
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..count as u32)
            .filter(|&id| indegree[id as usize] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(count);
        while let Some(std::cmp::Reverse(id)) = ready.pop() {
            order.push(edges[id as usize]);
            for &succ in &succs[id as usize] {
                if succ != u32::MAX {
                    indegree[succ as usize] -= 1;
                    if indegree[succ as usize] == 0 {
                        ready.push(std::cmp::Reverse(succ));
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), count, "adjacency chains must be acyclic");
        order
    }

    /// Returns all edges as a vector (mainly for tests and serialisation).
    pub fn to_edge_list(&self) -> Vec<WeightedEdge> {
        let mut edges = Vec::with_capacity(self.edge_count());
        for u in self.nodes() {
            for (v, w) in self.out_edges(u) {
                edges.push(WeightedEdge {
                    src: u,
                    dst: v,
                    weight: w,
                });
            }
        }
        edges
    }

    /// Produces a new graph with every edge weight transformed by `f`.
    pub fn map_weights(&self, mut f: impl FnMut(UserId, UserId, f64) -> f64) -> CsrGraph {
        let mut g = self.clone();
        for u in 0..self.node_count {
            let lo = self.out_offsets[u] as usize;
            let hi = self.out_offsets[u + 1] as usize;
            for i in lo..hi {
                g.out_weights[i] = f(
                    UserId(u as u32),
                    UserId(self.out_targets[i]),
                    self.out_weights[i],
                );
            }
        }
        // Rebuild the reverse weights from the forward ones to keep them in sync.
        let edges = g.to_edge_list();
        CsrGraph::from_edges(self.node_count, &edges)
    }

    /// Sum of all edge weights (used by dataset statistics).
    pub fn total_weight(&self) -> f64 {
        self.out_weights.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let edges = [
            WeightedEdge {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.5,
            },
            WeightedEdge {
                src: UserId(0),
                dst: UserId(2),
                weight: 0.25,
            },
            WeightedEdge {
                src: UserId(1),
                dst: UserId(3),
                weight: 1.0,
            },
            WeightedEdge {
                src: UserId(2),
                dst: UserId(3),
                weight: 0.75,
            },
        ];
        CsrGraph::from_edges(4, &edges)
    }

    #[test]
    fn counts_nodes_and_edges() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn out_edges_match_input() {
        let g = diamond();
        let mut out0: Vec<_> = g.out_edges(UserId(0)).collect();
        out0.sort_by_key(|(v, _)| v.0);
        assert_eq!(out0, vec![(UserId(1), 0.5), (UserId(2), 0.25)]);
        assert_eq!(g.out_degree(UserId(0)), 2);
        assert_eq!(g.out_degree(UserId(3)), 0);
    }

    #[test]
    fn in_edges_are_reverse_of_out_edges() {
        let g = diamond();
        let mut in3: Vec<_> = g.in_edges(UserId(3)).collect();
        in3.sort_by_key(|(v, _)| v.0);
        assert_eq!(in3, vec![(UserId(1), 1.0), (UserId(2), 0.75)]);
        assert_eq!(g.in_degree(UserId(3)), 2);
        assert_eq!(g.in_degree(UserId(0)), 0);
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(UserId(0), UserId(1)), Some(0.5));
        assert_eq!(g.edge_weight(UserId(1), UserId(0)), None);
        assert!(g.has_edge(UserId(2), UserId(3)));
        assert!(!g.has_edge(UserId(3), UserId(2)));
    }

    #[test]
    fn edge_list_round_trip() {
        let g = diamond();
        let edges = g.to_edge_list();
        let g2 = CsrGraph::from_edges(4, &edges);
        assert_eq!(g2.edge_count(), g.edge_count());
        for u in g.nodes() {
            let a: Vec<_> = g.out_edges(u).collect();
            let b: Vec<_> = g2.out_edges(u).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn interleaved_edge_list_round_trip_preserves_both_adjacencies() {
        // Construction order deliberately not sorted by source, so the
        // in-lists interleave sources: plain `to_edge_list` round-trips
        // would reorder them.
        let edges = [
            WeightedEdge {
                src: UserId(2),
                dst: UserId(0),
                weight: 0.1,
            },
            WeightedEdge {
                src: UserId(1),
                dst: UserId(0),
                weight: 0.2,
            },
            WeightedEdge {
                src: UserId(2),
                dst: UserId(1),
                weight: 0.3,
            },
            WeightedEdge {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.4,
            },
            WeightedEdge {
                src: UserId(0),
                dst: UserId(0),
                weight: 0.5,
            },
        ];
        let g = CsrGraph::from_edges(3, &edges);
        let g2 = CsrGraph::from_edges(3, &g.interleaved_edge_list());
        for u in g.nodes() {
            let out_a: Vec<_> = g.out_edges(u).collect();
            let out_b: Vec<_> = g2.out_edges(u).collect();
            assert_eq!(out_a, out_b, "out-adjacency of {u:?}");
            let in_a: Vec<_> = g.in_edges(u).collect();
            let in_b: Vec<_> = g2.in_edges(u).collect();
            assert_eq!(in_a, in_b, "in-adjacency of {u:?}");
        }
        // In particular node 0's in-list interleaves sources 2, 1, 0 — an
        // order a by-source enumeration cannot produce.
        let in0: Vec<_> = g2.in_edges(UserId(0)).map(|(s, _)| s.0).collect();
        assert_eq!(in0, vec![2, 1, 0]);
    }

    #[test]
    fn map_weights_scales_both_directions() {
        let g = diamond().map_weights(|_, _, w| w * 2.0);
        assert_eq!(g.edge_weight(UserId(0), UserId(1)), Some(1.0));
        let in3: Vec<_> = g.in_edges(UserId(3)).map(|(_, w)| w).collect();
        assert!(in3.contains(&2.0) && in3.contains(&1.5));
    }

    #[test]
    fn total_weight_sums_forward_edges() {
        let g = diamond();
        assert!((g.total_weight() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let edges = [WeightedEdge {
            src: UserId(0),
            dst: UserId(9),
            weight: 0.1,
        }];
        let _ = CsrGraph::from_edges(2, &edges);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
