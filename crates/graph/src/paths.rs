//! Maximum-influence paths, MIOA-style influence regions and hop diameters.
//!
//! The paper's TMI phase uses MIOA \[23\] to identify the users that can be
//! "effectively influenced" by a set of nominees: a user `v` belongs to the
//! influence region of a source set `S` if the *maximum influence path* from
//! some node of `S` to `v` has probability at least a threshold `θ_path`.
//!
//! With edge influence probabilities `p(u, v)`, the probability of a path is
//! the product of its edge probabilities, so the maximum-influence path is a
//! shortest path under the length `-ln p(u, v)`.  This module implements that
//! Dijkstra variant plus helpers for hop diameters of node subsets (used as
//! `d_τ` in dynamic reachability).

use crate::csr::CsrGraph;
use crate::ids::UserId;
use crate::traversal::{bfs, bfs_undirected};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A node paired with the probability of the best path found so far.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    prob: f64,
    node: UserId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on probability; ties broken on node id for determinism.
        self.prob
            .partial_cmp(&other.prob)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of a maximum-influence-path computation.
#[derive(Clone, Debug)]
pub struct InfluencePaths {
    /// Best path probability from the source set to each node (0.0 when
    /// unreachable, 1.0 for the sources themselves).
    probabilities: Vec<f64>,
    /// Predecessor on the best path (`None` for sources / unreachable nodes).
    predecessors: Vec<Option<UserId>>,
}

impl InfluencePaths {
    /// Probability of the maximum influence path reaching `u`.
    pub fn probability(&self, u: UserId) -> f64 {
        self.probabilities[u.index()]
    }

    /// Predecessor of `u` on its maximum influence path.
    pub fn predecessor(&self, u: UserId) -> Option<UserId> {
        self.predecessors[u.index()]
    }

    /// Reconstructs the best path from the source set to `u` (source first).
    /// Returns `None` if `u` is unreachable.
    pub fn path_to(&self, u: UserId) -> Option<Vec<UserId>> {
        if self.probabilities[u.index()] <= 0.0 {
            return None;
        }
        let mut path = vec![u];
        let mut cur = u;
        while let Some(p) = self.predecessors[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Nodes whose maximum-influence-path probability is at least `threshold`.
    pub fn region(&self, threshold: f64) -> Vec<UserId> {
        self.probabilities
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= threshold)
            .map(|(i, _)| UserId::from_index(i))
            .collect()
    }
}

/// Computes maximum-influence paths from a set of sources (Dijkstra on the
/// product-probability semiring).  Edge weights are clamped into `[0, 1]`.
pub fn max_influence_paths(graph: &CsrGraph, sources: &[UserId]) -> InfluencePaths {
    let n = graph.node_count();
    let mut probabilities = vec![0.0f64; n];
    let mut predecessors = vec![None; n];
    let mut heap = BinaryHeap::new();
    for &s in sources {
        if probabilities[s.index()] < 1.0 {
            probabilities[s.index()] = 1.0;
            heap.push(HeapEntry { prob: 1.0, node: s });
        }
    }
    let mut settled = vec![false; n];
    while let Some(HeapEntry { prob, node }) = heap.pop() {
        if settled[node.index()] {
            continue;
        }
        settled[node.index()] = true;
        for (v, w) in graph.out_edges(node) {
            let w = w.clamp(0.0, 1.0);
            let candidate = prob * w;
            if candidate > probabilities[v.index()] {
                probabilities[v.index()] = candidate;
                predecessors[v.index()] = Some(node);
                heap.push(HeapEntry {
                    prob: candidate,
                    node: v,
                });
            }
        }
    }
    InfluencePaths {
        probabilities,
        predecessors,
    }
}

/// MIOA-style influence region: users reachable from `sources` with a
/// maximum-influence-path probability of at least `threshold`.
///
/// This is the "target market" expansion step of TMI (Sec. IV-B of the paper).
pub fn mioa_region(graph: &CsrGraph, sources: &[UserId], threshold: f64) -> Vec<UserId> {
    max_influence_paths(graph, sources).region(threshold)
}

/// Hop diameter of the subgraph induced by `nodes`, measured on the
/// *undirected* social graph restricted to the node subset.
///
/// The exact diameter would require all-pairs BFS; for the sizes the target
/// markets reach this uses the standard double-sweep lower bound, which is
/// exact on trees and a tight estimate in practice.  The result is at least 1
/// for non-singleton sets so that dynamic-reachability recursions always have
/// positive depth.
pub fn subset_hop_diameter(graph: &CsrGraph, nodes: &[UserId]) -> u32 {
    if nodes.len() <= 1 {
        return if nodes.is_empty() { 0 } else { 1 };
    }
    let in_set: std::collections::HashSet<u32> = nodes.iter().map(|u| u.0).collect();
    // First sweep from an arbitrary member.
    let first = restricted_bfs_farthest(graph, nodes[0], &in_set);
    // Second sweep from the farthest node found.
    let second = restricted_bfs_farthest(graph, first.0, &in_set);
    second.1.max(1)
}

/// BFS restricted to a node subset; returns the farthest reachable in-set node
/// and its hop distance.
fn restricted_bfs_farthest(
    graph: &CsrGraph,
    source: UserId,
    in_set: &std::collections::HashSet<u32>,
) -> (UserId, u32) {
    use std::collections::VecDeque;
    let mut dist: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    dist.insert(source.0, 0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    let mut far = (source, 0u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u.0];
        let neighbours = graph
            .out_edges(u)
            .map(|(v, _)| v)
            .chain(graph.in_edges(u).map(|(v, _)| v));
        for v in neighbours {
            if !in_set.contains(&v.0) || dist.contains_key(&v.0) {
                continue;
            }
            dist.insert(v.0, du + 1);
            if du + 1 > far.1 {
                far = (v, du + 1);
            }
            queue.push_back(v);
        }
    }
    far
}

/// Hop eccentricity of a source set over the whole (directed) graph.
pub fn eccentricity(graph: &CsrGraph, sources: &[UserId]) -> u32 {
    bfs(graph, sources, None).eccentricity()
}

/// Double-sweep estimate of the undirected hop diameter of the whole graph.
pub fn graph_hop_diameter(graph: &CsrGraph) -> u32 {
    if graph.node_count() == 0 {
        return 0;
    }
    let d0 = bfs_undirected(graph, &[UserId(0)], None);
    let far = d0
        .reachable()
        .max_by_key(|u| d0.distance(*u).unwrap_or(0))
        .unwrap_or(UserId(0));
    bfs_undirected(graph, &[far], None).eccentricity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 -> 1 (0.9) -> 3 (0.9); 0 -> 2 (0.5) -> 3 (0.5); 0 -> 3 (0.4)
    fn probabilistic_diamond() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(UserId(0), UserId(1), 0.9);
        b.add_edge(UserId(1), UserId(3), 0.9);
        b.add_edge(UserId(0), UserId(2), 0.5);
        b.add_edge(UserId(2), UserId(3), 0.5);
        b.add_edge(UserId(0), UserId(3), 0.4);
        b.build()
    }

    #[test]
    fn max_influence_path_prefers_high_probability_route() {
        let g = probabilistic_diamond();
        let paths = max_influence_paths(&g, &[UserId(0)]);
        assert!((paths.probability(UserId(3)) - 0.81).abs() < 1e-12);
        assert_eq!(
            paths.path_to(UserId(3)).unwrap(),
            vec![UserId(0), UserId(1), UserId(3)]
        );
    }

    #[test]
    fn sources_have_probability_one() {
        let g = probabilistic_diamond();
        let paths = max_influence_paths(&g, &[UserId(0)]);
        assert_eq!(paths.probability(UserId(0)), 1.0);
        assert_eq!(paths.predecessor(UserId(0)), None);
    }

    #[test]
    fn unreachable_nodes_have_zero_probability() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(UserId(0), UserId(1), 0.5);
        let g = b.build();
        let paths = max_influence_paths(&g, &[UserId(0)]);
        assert_eq!(paths.probability(UserId(2)), 0.0);
        assert!(paths.path_to(UserId(2)).is_none());
    }

    #[test]
    fn mioa_region_thresholds_correctly() {
        let g = probabilistic_diamond();
        let region = mioa_region(&g, &[UserId(0)], 0.6);
        // probabilities: u0=1.0, u1=0.9, u2=0.5, u3=0.81
        assert_eq!(region, vec![UserId(0), UserId(1), UserId(3)]);
        let all = mioa_region(&g, &[UserId(0)], 0.0);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn multi_source_paths_take_best_source() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(UserId(0), UserId(2), 0.2);
        b.add_edge(UserId(1), UserId(2), 0.8);
        b.add_edge(UserId(2), UserId(3), 0.5);
        let g = b.build();
        let paths = max_influence_paths(&g, &[UserId(0), UserId(1)]);
        assert!((paths.probability(UserId(2)) - 0.8).abs() < 1e-12);
        assert!((paths.probability(UserId(3)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn subset_diameter_of_path() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_undirected_edge(UserId(i), UserId(i + 1), 1.0);
        }
        let g = b.build();
        let all: Vec<UserId> = (0..6).map(UserId).collect();
        assert_eq!(subset_hop_diameter(&g, &all), 5);
        // Restricting to a sub-path shortens the diameter.
        let sub: Vec<UserId> = (0..3).map(UserId).collect();
        assert_eq!(subset_hop_diameter(&g, &sub), 2);
    }

    #[test]
    fn subset_diameter_handles_small_sets() {
        let g = probabilistic_diamond();
        assert_eq!(subset_hop_diameter(&g, &[]), 0);
        assert_eq!(subset_hop_diameter(&g, &[UserId(1)]), 1);
    }

    #[test]
    fn graph_diameter_of_path_graph() {
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_edge(UserId(i), UserId(i + 1), 1.0);
        }
        let g = b.build();
        assert_eq!(graph_hop_diameter(&g), 3);
        assert_eq!(eccentricity(&g, &[UserId(0)]), 3);
    }
}
