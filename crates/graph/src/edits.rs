//! Edge updates: insertions, deletions and strength changes applied to an
//! existing [`CsrGraph`] without disturbing the adjacency *order* of
//! untouched nodes.
//!
//! Dynamic-IM maintenance (the `imdpp-sketch` crate) re-samples only the RR
//! sets whose traversal could have crossed a touched edge, and proves the
//! refresh equal to a rebuild by *replaying RNG streams*.  That replay is
//! only bit-identical when every untouched node presents its in-edges in the
//! same order before and after the update, so [`CsrGraph::apply_edge_updates`]
//! guarantees:
//!
//! * removals delete one entry without reordering the rest,
//! * reweights change a weight in place,
//! * insertions append at the end of the edge list (and hence at the end of
//!   the destination's in-adjacency).
//!
//! Updates address *directed* edges.  For undirected social graphs (where a
//! friendship is materialised as two directed influence edges) apply the
//! update and its [`EdgeUpdate::mirrored`] counterpart together.

use crate::csr::CsrGraph;
use crate::ids::UserId;
use serde::{Deserialize, Serialize};

/// A single mutation of a weighted directed graph.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EdgeUpdate {
    /// Insert `src → dst` with the given weight; when the edge already
    /// exists this acts as a reweight (upsert).
    Insert {
        /// Source node.
        src: UserId,
        /// Destination node.
        dst: UserId,
        /// New edge weight.
        weight: f64,
    },
    /// Remove `src → dst`; a no-op when the edge does not exist.
    Remove {
        /// Source node.
        src: UserId,
        /// Destination node.
        dst: UserId,
    },
    /// Set the weight of the existing edge `src → dst`; a no-op when the
    /// edge does not exist (use [`EdgeUpdate::Insert`] to upsert).
    Reweight {
        /// Source node.
        src: UserId,
        /// Destination node.
        dst: UserId,
        /// New edge weight.
        weight: f64,
    },
}

impl EdgeUpdate {
    /// The source endpoint of the touched edge.
    pub fn src(&self) -> UserId {
        match *self {
            EdgeUpdate::Insert { src, .. }
            | EdgeUpdate::Remove { src, .. }
            | EdgeUpdate::Reweight { src, .. } => src,
        }
    }

    /// The destination endpoint of the touched edge.
    pub fn dst(&self) -> UserId {
        match *self {
            EdgeUpdate::Insert { dst, .. }
            | EdgeUpdate::Remove { dst, .. }
            | EdgeUpdate::Reweight { dst, .. } => dst,
        }
    }

    /// The same update with source and destination swapped — the companion
    /// update for undirected graphs.
    pub fn mirrored(&self) -> EdgeUpdate {
        match *self {
            EdgeUpdate::Insert { src, dst, weight } => EdgeUpdate::Insert {
                src: dst,
                dst: src,
                weight,
            },
            EdgeUpdate::Remove { src, dst } => EdgeUpdate::Remove { src: dst, dst: src },
            EdgeUpdate::Reweight { src, dst, weight } => EdgeUpdate::Reweight {
                src: dst,
                dst: src,
                weight,
            },
        }
    }
}

impl CsrGraph {
    /// Returns a new graph with the updates applied in order.
    ///
    /// The node count is fixed: updates referencing nodes outside
    /// `0..node_count()` panic (dynamic worlds in this suite have a fixed
    /// user population; growing it invalidates preference matrices and
    /// perception state wholesale).
    ///
    /// Ordering guarantee: the in- and out-adjacency sequences of every node
    /// not touched by an update are preserved exactly; insertions append to
    /// the destination's in-adjacency.  This is what keeps RNG-stream replay
    /// over the updated graph bit-identical for traversals that never visit
    /// a touched destination (see `imdpp_sketch::incremental`).
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> CsrGraph {
        for up in updates {
            assert!(
                up.src().index() < self.node_count() && up.dst().index() < self.node_count(),
                "edge update {:?} out of range for {} nodes",
                up,
                self.node_count()
            );
            if let EdgeUpdate::Insert { weight, .. } | EdgeUpdate::Reweight { weight, .. } = up {
                assert!(weight.is_finite(), "edge weight must be finite");
            }
        }
        // Start from an order that reproduces both adjacency directions:
        // `to_edge_list` alone is by-source and would scramble every node's
        // in-adjacency, invalidating RNG replay for *untouched* sets.
        //
        // Removed entries are tombstoned (`None`) and a `(src, dst)` → slot
        // index makes each update O(1), so a batch of `U` updates costs
        // O(E + U) instead of O(U · E) linear scans.  Per-pair FIFOs handle
        // (never-constructed-here but representable) parallel edges with
        // the same first-match semantics a linear scan would have.
        let mut slots: Vec<Option<crate::csr::WeightedEdge>> =
            self.interleaved_edge_list().into_iter().map(Some).collect();
        let mut index: std::collections::HashMap<(u32, u32), std::collections::VecDeque<usize>> =
            std::collections::HashMap::new();
        for (i, slot) in slots.iter().enumerate() {
            let e = slot.as_ref().expect("freshly wrapped");
            index.entry((e.src.0, e.dst.0)).or_default().push_back(i);
        }
        for up in updates {
            match *up {
                EdgeUpdate::Insert { src, dst, weight } => {
                    let queue = index.entry((src.0, dst.0)).or_default();
                    match queue.front() {
                        Some(&i) => {
                            slots[i].as_mut().expect("indexed slots are live").weight = weight
                        }
                        None => {
                            queue.push_back(slots.len());
                            slots.push(Some(crate::csr::WeightedEdge { src, dst, weight }));
                        }
                    }
                }
                EdgeUpdate::Remove { src, dst } => {
                    if let Some(i) = index.get_mut(&(src.0, dst.0)).and_then(|q| q.pop_front()) {
                        slots[i] = None;
                    }
                }
                EdgeUpdate::Reweight { src, dst, weight } => {
                    if let Some(&i) = index.get(&(src.0, dst.0)).and_then(|q| q.front()) {
                        slots[i].as_mut().expect("indexed slots are live").weight = weight;
                    }
                }
            }
        }
        let edges: Vec<crate::csr::WeightedEdge> = slots.into_iter().flatten().collect();
        CsrGraph::from_edges(self.node_count(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::WeightedEdge;

    fn g() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 2
        CsrGraph::from_edges(
            4,
            &[
                WeightedEdge {
                    src: UserId(0),
                    dst: UserId(1),
                    weight: 0.5,
                },
                WeightedEdge {
                    src: UserId(0),
                    dst: UserId(2),
                    weight: 0.25,
                },
                WeightedEdge {
                    src: UserId(1),
                    dst: UserId(2),
                    weight: 0.75,
                },
            ],
        )
    }

    #[test]
    fn insert_appends_and_upserts() {
        let g2 = g().apply_edge_updates(&[EdgeUpdate::Insert {
            src: UserId(2),
            dst: UserId(3),
            weight: 0.9,
        }]);
        assert_eq!(g2.edge_count(), 4);
        assert_eq!(g2.edge_weight(UserId(2), UserId(3)), Some(0.9));
        // Upsert on an existing edge reweights instead of duplicating.
        let g3 = g().apply_edge_updates(&[EdgeUpdate::Insert {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.1,
        }]);
        assert_eq!(g3.edge_count(), 3);
        assert_eq!(g3.edge_weight(UserId(0), UserId(1)), Some(0.1));
    }

    #[test]
    fn remove_deletes_one_edge_and_tolerates_absence() {
        let g2 = g().apply_edge_updates(&[EdgeUpdate::Remove {
            src: UserId(0),
            dst: UserId(2),
        }]);
        assert_eq!(g2.edge_count(), 2);
        assert!(!g2.has_edge(UserId(0), UserId(2)));
        let g3 = g().apply_edge_updates(&[EdgeUpdate::Remove {
            src: UserId(3),
            dst: UserId(0),
        }]);
        assert_eq!(g3.edge_count(), 3);
    }

    #[test]
    fn reweight_changes_in_place_and_skips_absent_edges() {
        let g2 = g().apply_edge_updates(&[
            EdgeUpdate::Reweight {
                src: UserId(1),
                dst: UserId(2),
                weight: 0.33,
            },
            EdgeUpdate::Reweight {
                src: UserId(2),
                dst: UserId(0),
                weight: 0.9,
            },
        ]);
        assert_eq!(g2.edge_weight(UserId(1), UserId(2)), Some(0.33));
        assert!(!g2.has_edge(UserId(2), UserId(0)));
    }

    #[test]
    fn untouched_in_adjacency_order_is_preserved() {
        // Node 2's in-edges are (0, .25) then (1, .75); removing 0 -> 1 and
        // inserting 3 -> 1 must not disturb that order.
        let g2 = g().apply_edge_updates(&[
            EdgeUpdate::Remove {
                src: UserId(0),
                dst: UserId(1),
            },
            EdgeUpdate::Insert {
                src: UserId(3),
                dst: UserId(1),
                weight: 0.6,
            },
        ]);
        let before: Vec<_> = g().in_edges(UserId(2)).collect();
        let after: Vec<_> = g2.in_edges(UserId(2)).collect();
        assert_eq!(before, after);
        // The inserted edge lands at the end of node 1's in-adjacency.
        let in1: Vec<_> = g2.in_edges(UserId(1)).collect();
        assert_eq!(in1.last(), Some(&(UserId(3), 0.6)));
    }

    #[test]
    fn noop_detection_matches_application() {
        let base = g();
        let cases = [
            (
                EdgeUpdate::Remove {
                    src: UserId(3),
                    dst: UserId(0),
                },
                true,
            ),
            (
                EdgeUpdate::Reweight {
                    src: UserId(2),
                    dst: UserId(0),
                    weight: 0.4,
                },
                true,
            ),
            (
                EdgeUpdate::Reweight {
                    src: UserId(0),
                    dst: UserId(1),
                    weight: 0.5,
                },
                true,
            ),
            (
                EdgeUpdate::Insert {
                    src: UserId(0),
                    dst: UserId(1),
                    weight: 0.5,
                },
                true,
            ),
            (
                EdgeUpdate::Insert {
                    src: UserId(0),
                    dst: UserId(1),
                    weight: 0.6,
                },
                false,
            ),
            (
                EdgeUpdate::Remove {
                    src: UserId(0),
                    dst: UserId(1),
                },
                false,
            ),
        ];
        for (up, expect_noop) in cases {
            let applied = base.apply_edge_updates(&[up]);
            let unchanged = applied.to_edge_list() == base.to_edge_list();
            assert_eq!(unchanged, expect_noop, "{up:?}");
        }
    }

    #[test]
    fn mirrored_swaps_endpoints() {
        let up = EdgeUpdate::Insert {
            src: UserId(1),
            dst: UserId(2),
            weight: 0.3,
        };
        assert_eq!(up.mirrored().src(), UserId(2));
        assert_eq!(up.mirrored().dst(), UserId(1));
        assert_eq!(up.mirrored().mirrored(), up);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_updates() {
        let _ = g().apply_edge_updates(&[EdgeUpdate::Remove {
            src: UserId(9),
            dst: UserId(0),
        }]);
    }
}
