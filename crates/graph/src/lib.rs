//! # imdpp-graph
//!
//! Directed-graph substrate for the IMDPP reproduction.
//!
//! The paper's social network `G_SN = (V, E)` is a (possibly directed) graph
//! whose edges carry an *influence strength* `P_act(u, v) ∈ [0, 1]`.  This
//! crate provides:
//!
//! * compact CSR storage with both out- and in-adjacency ([`csr::CsrGraph`]),
//! * an edge-list builder with deduplication ([`builder::GraphBuilder`]),
//! * order-preserving edge updates — insertions, deletions, strength
//!   changes — for dynamic-graph maintenance ([`edits::EdgeUpdate`]),
//! * the influence-weighted social graph wrapper ([`social::SocialGraph`]),
//! * traversal primitives (BFS / DFS / weakly connected components)
//!   ([`traversal`]),
//! * maximum-influence paths, MIOA-style influence regions and hop diameters
//!   ([`paths`]), used by Dysim's Target Market Identification phase,
//! * clustering utilities (label propagation and agglomerative clustering)
//!   ([`clustering`]), standing in for POT/FGCC when clustering nominees,
//! * random-graph generators (Erdős–Rényi, preferential attachment,
//!   Watts–Strogatz) ([`generators`]) used by the synthetic dataset crate,
//! * degree / density statistics ([`stats`]).
//!
//! All node identifiers are dense `u32` indices wrapped in [`ids::UserId`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod clustering;
pub mod csr;
pub mod edits;
pub mod generators;
pub mod ids;
pub mod paths;
pub mod social;
pub mod stats;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use edits::EdgeUpdate;
pub use ids::{ItemId, UserId};
pub use social::SocialGraph;
