//! Clustering utilities used by Dysim's Target Market Identification phase.
//!
//! The paper clusters nominees with POT \[53\] / FGCC \[54\]; both play the same
//! role: group nominees whose *users are socially close* and whose *items are
//! more complementary than substitutable*.  This module provides two generic
//! clustering algorithms over an arbitrary similarity function so that TMI
//! can plug in its social-distance + relevance similarity:
//!
//! * [`label_propagation`] — community detection over a weighted similarity
//!   graph (POT stand-in),
//! * [`agglomerative`] — average-linkage agglomerative clustering with a
//!   similarity threshold (FGCC stand-in).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A clustering of `n` elements: `assignment[i]` is the cluster index of
/// element `i`, clusters are numbered `0..cluster_count`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster index per element.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub cluster_count: usize,
}

impl Clustering {
    /// Builds a clustering from raw (possibly non-contiguous) labels by
    /// renumbering them densely in order of first appearance.
    pub fn from_labels(labels: &[usize]) -> Self {
        let mut remap = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = remap.len();
            let id = *remap.entry(l).or_insert(next);
            assignment.push(id);
        }
        Clustering {
            assignment,
            cluster_count: remap.len(),
        }
    }

    /// Members of each cluster.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.cluster_count];
        for (i, &c) in self.assignment.iter().enumerate() {
            out[c].push(i);
        }
        out
    }

    /// Number of elements clustered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True if no elements were clustered.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }
}

/// Label-propagation clustering over a similarity function.
///
/// Elements `0..n` start in singleton communities; in each round (processed
/// in a seeded random order) every element adopts the label with the largest
/// total similarity among elements whose similarity to it is positive.  The
/// process stops when no label changes or after `max_rounds`.
pub fn label_propagation(
    n: usize,
    mut similarity: impl FnMut(usize, usize) -> f64,
    max_rounds: usize,
    seed: u64,
) -> Clustering {
    let mut labels: Vec<usize> = (0..n).collect();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            cluster_count: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..max_rounds {
        order.shuffle(&mut rng);
        let mut changed = false;
        for &i in &order {
            // Accumulate similarity mass per label among positive-similarity peers.
            let mut mass: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for (j, &label) in labels.iter().enumerate() {
                if i == j {
                    continue;
                }
                let s = similarity(i, j);
                if s > 0.0 {
                    *mass.entry(label).or_insert(0.0) += s;
                }
            }
            if let Some((&best, _)) = mass
                .iter() // lint: allow(hash-order) — tie-break compares keys; winner is order-free.
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
            {
                if best != labels[i] {
                    labels[i] = best;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Clustering::from_labels(&labels)
}

/// Average-linkage agglomerative clustering: repeatedly merges the pair of
/// clusters with the highest average pairwise similarity, while that average
/// stays at or above `threshold`.
pub fn agglomerative(
    n: usize,
    mut similarity: impl FnMut(usize, usize) -> f64,
    threshold: f64,
) -> Clustering {
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            cluster_count: 0,
        };
    }
    // Materialise the symmetric similarity matrix once.
    let mut sim = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let s = similarity(i, j);
            sim[i * n + j] = s;
            sim[j * n + i] = s;
        }
    }
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let mut total = 0.0;
                for &i in &clusters[a] {
                    for &j in &clusters[b] {
                        total += sim[i * n + j];
                    }
                }
                let avg = total / (clusters[a].len() * clusters[b].len()) as f64;
                if avg >= threshold && best.is_none_or(|(_, _, bavg)| avg > bavg) {
                    best = Some((a, b, avg));
                }
            }
        }
        match best {
            Some((a, b, _)) => {
                let merged = clusters.remove(b);
                clusters[a].extend(merged);
            }
            None => break,
        }
    }
    let mut labels = vec![0usize; n];
    for (c, members) in clusters.iter().enumerate() {
        for &m in members {
            labels[m] = c;
        }
    }
    Clustering::from_labels(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two obvious blobs: elements 0..3 similar to each other, 3..6 similar to
    /// each other, no cross similarity.
    fn two_blob_similarity(i: usize, j: usize) -> f64 {
        let blob = |x: usize| if x < 3 { 0 } else { 1 };
        if blob(i) == blob(j) {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn label_propagation_finds_two_blobs() {
        let c = label_propagation(6, two_blob_similarity, 20, 42);
        assert_eq!(c.cluster_count, 2);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[0], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
    }

    #[test]
    fn label_propagation_on_empty_input() {
        let c = label_propagation(0, |_, _| 1.0, 5, 1);
        assert!(c.is_empty());
        assert_eq!(c.cluster_count, 0);
    }

    #[test]
    fn label_propagation_isolates_dissimilar_elements() {
        // No positive similarity at all: everyone keeps their own label.
        let c = label_propagation(4, |_, _| 0.0, 10, 7);
        assert_eq!(c.cluster_count, 4);
    }

    #[test]
    fn agglomerative_finds_two_blobs() {
        let c = agglomerative(6, two_blob_similarity, 0.5);
        assert_eq!(c.cluster_count, 2);
        let clusters = c.clusters();
        let sizes: Vec<usize> = clusters.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn agglomerative_threshold_prevents_merging() {
        let c = agglomerative(4, |_, _| 0.2, 0.5);
        assert_eq!(c.cluster_count, 4);
    }

    #[test]
    fn agglomerative_single_element() {
        let c = agglomerative(1, |_, _| 1.0, 0.0);
        assert_eq!(c.cluster_count, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn from_labels_renumbers_densely() {
        let c = Clustering::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(c.cluster_count, 3);
        assert_eq!(c.assignment, vec![0, 0, 1, 2, 1]);
    }

    #[test]
    fn clusters_partition_all_elements() {
        let c = label_propagation(6, two_blob_similarity, 20, 3);
        let total: usize = c.clusters().iter().map(|m| m.len()).sum();
        assert_eq!(total, 6);
    }
}
