//! Incremental construction of [`CsrGraph`]s from edge lists.

use crate::csr::{CsrGraph, WeightedEdge};
use crate::ids::UserId;
use std::collections::HashMap;

/// How duplicate `(src, dst)` edges are merged by the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DuplicatePolicy {
    /// Keep the first weight seen.
    KeepFirst,
    /// Keep the last weight seen.
    KeepLast,
    /// Keep the maximum weight.
    KeepMax,
    /// Sum the weights (clamped to 1.0 for probability graphs by the caller).
    Sum,
}

/// Builder accumulating weighted directed edges before freezing them into a
/// [`CsrGraph`].
///
/// The builder validates endpoints, grows the node count on demand and merges
/// duplicate edges according to a [`DuplicatePolicy`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    node_count: usize,
    edges: HashMap<(u32, u32), f64>,
    policy: DuplicatePolicy,
    insertion_order: Vec<(u32, u32)>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new(0)
    }
}

impl GraphBuilder {
    /// Creates a builder over `node_count` nodes (more nodes can be added by
    /// inserting edges with larger endpoints or calling [`Self::ensure_node`]).
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: HashMap::new(),
            policy: DuplicatePolicy::KeepLast,
            insertion_order: Vec::new(),
        }
    }

    /// Sets the duplicate-edge merge policy.
    pub fn with_duplicate_policy(mut self, policy: DuplicatePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Ensures the node `u` exists (extending the node count if needed).
    pub fn ensure_node(&mut self, u: UserId) {
        if u.index() >= self.node_count {
            self.node_count = u.index() + 1;
        }
    }

    /// Number of nodes seen so far.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of distinct edges accumulated so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a directed edge `src -> dst` with the given weight.
    pub fn add_edge(&mut self, src: UserId, dst: UserId, weight: f64) -> &mut Self {
        assert!(weight.is_finite(), "edge weight must be finite");
        self.ensure_node(src);
        self.ensure_node(dst);
        let key = (src.0, dst.0);
        match self.edges.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let old = *e.get();
                let new = match self.policy {
                    DuplicatePolicy::KeepFirst => old,
                    DuplicatePolicy::KeepLast => weight,
                    DuplicatePolicy::KeepMax => old.max(weight),
                    DuplicatePolicy::Sum => old + weight,
                };
                e.insert(new);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(weight);
                self.insertion_order.push(key);
            }
        }
        self
    }

    /// Adds an undirected edge as a pair of directed edges with the same weight.
    pub fn add_undirected_edge(&mut self, a: UserId, b: UserId, weight: f64) -> &mut Self {
        self.add_edge(a, b, weight);
        self.add_edge(b, a, weight);
        self
    }

    /// Freezes the builder into a [`CsrGraph`].
    ///
    /// Edges are emitted in insertion order, which makes the result
    /// deterministic for a deterministic insertion sequence.
    pub fn build(&self) -> CsrGraph {
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(s, d) in &self.insertion_order {
            let w = self.edges[&(s, d)];
            edges.push(WeightedEdge {
                src: UserId(s),
                dst: UserId(d),
                weight: w,
            });
        }
        CsrGraph::from_edges(self.node_count, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(UserId(0), UserId(1), 0.3);
        b.add_edge(UserId(1), UserId(2), 0.6);
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(UserId(0), UserId(1)), Some(0.3));
    }

    #[test]
    fn grows_node_count_from_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(UserId(5), UserId(1), 0.1);
        assert_eq!(b.node_count(), 6);
    }

    #[test]
    fn keep_last_policy_overwrites() {
        let mut b = GraphBuilder::new(2).with_duplicate_policy(DuplicatePolicy::KeepLast);
        b.add_edge(UserId(0), UserId(1), 0.2);
        b.add_edge(UserId(0), UserId(1), 0.9);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(UserId(0), UserId(1)), Some(0.9));
    }

    #[test]
    fn keep_first_policy_ignores_later() {
        let mut b = GraphBuilder::new(2).with_duplicate_policy(DuplicatePolicy::KeepFirst);
        b.add_edge(UserId(0), UserId(1), 0.2);
        b.add_edge(UserId(0), UserId(1), 0.9);
        assert_eq!(b.build().edge_weight(UserId(0), UserId(1)), Some(0.2));
    }

    #[test]
    fn keep_max_policy_takes_maximum() {
        let mut b = GraphBuilder::new(2).with_duplicate_policy(DuplicatePolicy::KeepMax);
        b.add_edge(UserId(0), UserId(1), 0.9);
        b.add_edge(UserId(0), UserId(1), 0.2);
        assert_eq!(b.build().edge_weight(UserId(0), UserId(1)), Some(0.9));
    }

    #[test]
    fn sum_policy_accumulates() {
        let mut b = GraphBuilder::new(2).with_duplicate_policy(DuplicatePolicy::Sum);
        b.add_edge(UserId(0), UserId(1), 0.25);
        b.add_edge(UserId(0), UserId(1), 0.5);
        let w = b.build().edge_weight(UserId(0), UserId(1)).unwrap();
        assert!((w - 0.75).abs() < 1e-12);
    }

    #[test]
    fn undirected_edge_creates_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(UserId(0), UserId(1), 0.4);
        let g = b.build();
        assert_eq!(g.edge_weight(UserId(0), UserId(1)), Some(0.4));
        assert_eq!(g.edge_weight(UserId(1), UserId(0)), Some(0.4));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(UserId(0), UserId(1), f64::NAN);
    }
}
