//! The influence-weighted social network `G_SN`.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::edits::EdgeUpdate;
use crate::ids::UserId;
use crate::stats::DegreeStats;
use serde::{Deserialize, Serialize};

/// The social network of the IMDPP problem: a directed graph whose edge
/// weights are the *initial* influence strengths `P_act(u, v, 0)`.
///
/// The diffusion crate layers dynamic influence updates on top of these
/// initial strengths; this type only owns the static topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SocialGraph {
    graph: CsrGraph,
    directed: bool,
}

impl SocialGraph {
    /// Wraps a CSR graph as a social network.
    ///
    /// `directed` records whether friendships were interpreted as directed
    /// (Amazon+Pokec in the paper) or undirected (Douban, Gowalla, Yelp).
    pub fn new(graph: CsrGraph, directed: bool) -> Self {
        SocialGraph { graph, directed }
    }

    /// Builds a social graph from `(u, v, strength)` triples.
    ///
    /// When `directed` is false each triple is materialised in both
    /// directions with the same strength.
    pub fn from_influence_edges(
        node_count: usize,
        edges: impl IntoIterator<Item = (UserId, UserId, f64)>,
        directed: bool,
    ) -> Self {
        let mut b = GraphBuilder::new(node_count);
        for (u, v, w) in edges {
            let w = w.clamp(0.0, 1.0);
            if directed {
                b.add_edge(u, v, w);
            } else {
                b.add_undirected_edge(u, v, w);
            }
        }
        SocialGraph::new(b.build(), directed)
    }

    /// The underlying CSR topology.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Whether the friendship edges are directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of users.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of directed influence edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of friendships (undirected edge pairs count once).
    pub fn friendship_count(&self) -> usize {
        if self.directed {
            self.graph.edge_count()
        } else {
            self.graph.edge_count() / 2
        }
    }

    /// Iterator over all users.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.graph.nodes()
    }

    /// Initial influence strength `P_act(u, v, 0)`, zero when `u` and `v` are
    /// not connected.
    #[inline]
    pub fn influence(&self, u: UserId, v: UserId) -> f64 {
        self.graph.edge_weight(u, v).unwrap_or(0.0)
    }

    /// Out-neighbours of `u` with their influence strengths.
    #[inline]
    pub fn influenced_by(&self, u: UserId) -> impl Iterator<Item = (UserId, f64)> + '_ {
        self.graph.out_edges(u)
    }

    /// In-neighbours of `u` (users who can influence `u`) with strengths.
    #[inline]
    pub fn influencers_of(&self, u: UserId) -> impl Iterator<Item = (UserId, f64)> + '_ {
        self.graph.in_edges(u)
    }

    /// Out-degree of `u` (used by the cost model `c_{u,x} ∝ out-degree`).
    #[inline]
    pub fn out_degree(&self, u: UserId) -> usize {
        self.graph.out_degree(u)
    }

    /// Returns a new social graph with the edge updates applied in order;
    /// strengths are clamped to `[0, 1]` like
    /// [`SocialGraph::from_influence_edges`].
    ///
    /// Updates address *directed* influence edges.  For an undirected social
    /// network (every friendship materialised in both directions) pass each
    /// update together with its [`EdgeUpdate::mirrored`] counterpart so the
    /// two directions stay in sync.
    ///
    /// The adjacency order of untouched users is preserved exactly — the
    /// property the incremental sketch maintenance of `imdpp-sketch` relies
    /// on (see [`CsrGraph::apply_edge_updates`]).
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> SocialGraph {
        let clamped: Vec<EdgeUpdate> = updates
            .iter()
            .map(|up| match *up {
                EdgeUpdate::Insert { src, dst, weight } => EdgeUpdate::Insert {
                    src,
                    dst,
                    weight: weight.clamp(0.0, 1.0),
                },
                EdgeUpdate::Reweight { src, dst, weight } => EdgeUpdate::Reweight {
                    src,
                    dst,
                    weight: weight.clamp(0.0, 1.0),
                },
                remove => remove,
            })
            .collect();
        SocialGraph {
            graph: self.graph.apply_edge_updates(&clamped),
            directed: self.directed,
        }
    }

    /// Average influence strength over all edges (reported in Table II).
    pub fn average_influence_strength(&self) -> f64 {
        if self.graph.edge_count() == 0 {
            return 0.0;
        }
        self.graph.total_weight() / self.graph.edge_count() as f64
    }

    /// Degree statistics of the social graph.
    pub fn degree_stats(&self) -> DegreeStats {
        DegreeStats::of(&self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle(directed: bool) -> SocialGraph {
        SocialGraph::from_influence_edges(
            3,
            vec![
                (UserId(0), UserId(1), 0.5),
                (UserId(1), UserId(2), 0.25),
                (UserId(2), UserId(0), 0.75),
            ],
            directed,
        )
    }

    #[test]
    fn directed_graph_keeps_edge_orientation() {
        let g = triangle(true);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.friendship_count(), 3);
        assert_eq!(g.influence(UserId(0), UserId(1)), 0.5);
        assert_eq!(g.influence(UserId(1), UserId(0)), 0.0);
    }

    #[test]
    fn undirected_graph_duplicates_edges() {
        let g = triangle(false);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.friendship_count(), 3);
        assert_eq!(g.influence(UserId(1), UserId(0)), 0.5);
    }

    #[test]
    fn influence_strengths_are_clamped() {
        let g = SocialGraph::from_influence_edges(2, vec![(UserId(0), UserId(1), 1.7)], true);
        assert_eq!(g.influence(UserId(0), UserId(1)), 1.0);
    }

    #[test]
    fn average_influence_strength_matches_mean() {
        let g = triangle(true);
        assert!((g.average_influence_strength() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn neighbour_iterators_agree_with_influence() {
        let g = triangle(true);
        let out: Vec<_> = g.influenced_by(UserId(0)).collect();
        assert_eq!(out, vec![(UserId(1), 0.5)]);
        let inn: Vec<_> = g.influencers_of(UserId(0)).collect();
        assert_eq!(inn, vec![(UserId(2), 0.75)]);
        assert_eq!(g.out_degree(UserId(0)), 1);
    }

    #[test]
    fn edge_updates_clamp_strengths_and_keep_directedness() {
        let g = triangle(true);
        let g2 = g.apply_edge_updates(&[
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 1.7,
            },
            EdgeUpdate::Insert {
                src: UserId(1),
                dst: UserId(0),
                weight: 0.3,
            },
        ]);
        assert_eq!(g2.influence(UserId(0), UserId(1)), 1.0);
        assert_eq!(g2.influence(UserId(1), UserId(0)), 0.3);
        assert!(g2.is_directed());
        assert_eq!(g2.edge_count(), 4);
        // The original is untouched.
        assert_eq!(g.influence(UserId(0), UserId(1)), 0.5);
    }

    #[test]
    fn empty_graph_has_zero_average_strength() {
        let g = SocialGraph::from_influence_edges(3, Vec::new(), true);
        assert_eq!(g.average_influence_strength(), 0.0);
        assert_eq!(g.user_count(), 3);
    }
}
