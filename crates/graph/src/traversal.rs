//! Breadth-first / depth-first traversal and connectivity helpers.

use crate::csr::CsrGraph;
use crate::ids::UserId;
use std::collections::VecDeque;

/// Result of a BFS from a set of sources: hop distance per node, `u32::MAX`
/// when unreachable.
#[derive(Clone, Debug)]
pub struct BfsDistances {
    distances: Vec<u32>,
}

/// Sentinel marking an unreachable node in [`BfsDistances`].
pub const UNREACHABLE: u32 = u32::MAX;

impl BfsDistances {
    /// Hop distance to `u` (`None` if unreachable).
    pub fn distance(&self, u: UserId) -> Option<u32> {
        let d = self.distances[u.index()];
        (d != UNREACHABLE).then_some(d)
    }

    /// Nodes reachable from the sources (including the sources themselves).
    pub fn reachable(&self) -> impl Iterator<Item = UserId> + '_ {
        self.distances
            .iter()
            .enumerate()
            .filter(|(_, &d)| d != UNREACHABLE)
            .map(|(i, _)| UserId::from_index(i))
    }

    /// Number of reachable nodes.
    pub fn reachable_count(&self) -> usize {
        self.distances.iter().filter(|&&d| d != UNREACHABLE).count()
    }

    /// Largest finite hop distance (the eccentricity of the source set).
    pub fn eccentricity(&self) -> u32 {
        self.distances
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }
}

/// Multi-source BFS over out-edges within an optional hop limit.
pub fn bfs(graph: &CsrGraph, sources: &[UserId], max_hops: Option<u32>) -> BfsDistances {
    let mut distances = vec![UNREACHABLE; graph.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if distances[s.index()] == UNREACHABLE {
            distances[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = distances[u.index()];
        if let Some(limit) = max_hops {
            if du >= limit {
                continue;
            }
        }
        for (v, _) in graph.out_edges(u) {
            if distances[v.index()] == UNREACHABLE {
                distances[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    BfsDistances { distances }
}

/// Multi-source BFS that treats every edge as undirected (follows both out-
/// and in-edges).  Used for weakly-connected components and social distance.
pub fn bfs_undirected(graph: &CsrGraph, sources: &[UserId], max_hops: Option<u32>) -> BfsDistances {
    let mut distances = vec![UNREACHABLE; graph.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if distances[s.index()] == UNREACHABLE {
            distances[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = distances[u.index()];
        if let Some(limit) = max_hops {
            if du >= limit {
                continue;
            }
        }
        let neighbours = graph
            .out_edges(u)
            .map(|(v, _)| v)
            .chain(graph.in_edges(u).map(|(v, _)| v));
        for v in neighbours {
            if distances[v.index()] == UNREACHABLE {
                distances[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    BfsDistances { distances }
}

/// Iterative DFS preorder from a single source over out-edges.
pub fn dfs_preorder(graph: &CsrGraph, source: UserId) -> Vec<UserId> {
    let mut visited = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push in reverse so lower-indexed neighbours are visited first.
        let mut neigh: Vec<UserId> = graph.out_edges(u).map(|(v, _)| v).collect();
        neigh.sort_unstable_by(|a, b| b.cmp(a));
        for v in neigh {
            if !visited[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Weakly-connected component labelling.
///
/// Returns `(labels, component_count)` where `labels[i]` is the component of
/// node `i` in `0..component_count`.
pub fn weakly_connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        labels[start] = next;
        queue.push_back(UserId::from_index(start));
        while let Some(u) = queue.pop_front() {
            let neighbours = graph
                .out_edges(u)
                .map(|(v, _)| v)
                .chain(graph.in_edges(u).map(|(v, _)| v));
            for v in neighbours {
                if labels[v.index()] == u32::MAX {
                    labels[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (labels, next as usize)
}

/// Size of the largest weakly-connected component.
pub fn largest_component_size(graph: &CsrGraph) -> usize {
    let (labels, count) = weakly_connected_components(graph);
    if count == 0 {
        return 0;
    }
    let mut sizes = vec![0usize; count];
    for l in labels {
        sizes[l as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(UserId(i as u32), UserId(i as u32 + 1), 1.0);
        }
        b.build()
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = path_graph(5);
        let d = bfs(&g, &[UserId(0)], None);
        assert_eq!(d.distance(UserId(0)), Some(0));
        assert_eq!(d.distance(UserId(4)), Some(4));
        assert_eq!(d.reachable_count(), 5);
        assert_eq!(d.eccentricity(), 4);
    }

    #[test]
    fn bfs_respects_hop_limit() {
        let g = path_graph(5);
        let d = bfs(&g, &[UserId(0)], Some(2));
        assert_eq!(d.distance(UserId(2)), Some(2));
        assert_eq!(d.distance(UserId(3)), None);
        assert_eq!(d.reachable_count(), 3);
    }

    #[test]
    fn bfs_is_directed() {
        let g = path_graph(3);
        let d = bfs(&g, &[UserId(2)], None);
        assert_eq!(d.reachable_count(), 1);
    }

    #[test]
    fn undirected_bfs_ignores_direction() {
        let g = path_graph(3);
        let d = bfs_undirected(&g, &[UserId(2)], None);
        assert_eq!(d.reachable_count(), 3);
        assert_eq!(d.distance(UserId(0)), Some(2));
    }

    #[test]
    fn multi_source_bfs_takes_minimum() {
        let g = path_graph(6);
        let d = bfs(&g, &[UserId(0), UserId(4)], None);
        assert_eq!(d.distance(UserId(5)), Some(1));
        assert_eq!(d.distance(UserId(3)), Some(3));
    }

    #[test]
    fn dfs_preorder_visits_reachable_nodes_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(UserId(0), UserId(1), 1.0);
        b.add_edge(UserId(0), UserId(2), 1.0);
        b.add_edge(UserId(1), UserId(3), 1.0);
        b.add_edge(UserId(2), UserId(3), 1.0);
        let g = b.build();
        let order = dfs_preorder(&g, UserId(0));
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], UserId(0));
        assert_eq!(order[1], UserId(1)); // lower-index neighbour first
    }

    #[test]
    fn components_on_disconnected_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(UserId(0), UserId(1), 1.0);
        b.add_edge(UserId(2), UserId(3), 1.0);
        let g = b.build();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(largest_component_size(&g), 2);
    }

    #[test]
    fn components_of_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 0);
        assert_eq!(largest_component_size(&g), 0);
    }
}
