//! Random-graph generators used by the synthetic dataset crate.
//!
//! The paper evaluates on real crawls (Douban, Gowalla, Yelp, Amazon+Pokec)
//! whose defining structural features are (i) heavy-tailed degree
//! distributions, (ii) high clustering in the friendship graph and (iii) a
//! wide range of densities.  The three classic models below cover those
//! regimes:
//!
//! * [`erdos_renyi`] — homogeneous baseline topology,
//! * [`preferential_attachment`] — Barabási–Albert style power-law degrees,
//! * [`watts_strogatz`] — high-clustering small worlds (used for the
//!   course-promotion classes of the empirical study).

use crate::csr::CsrGraph;
use crate::ids::UserId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates a directed Erdős–Rényi graph `G(n, p)`.
///
/// Each ordered pair `(u, v)`, `u != v`, is an edge independently with
/// probability `p`.  Weights are left at 1.0; callers re-weight as needed.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < p {
                edges.push(crate::csr::WeightedEdge {
                    src: UserId(u as u32),
                    dst: UserId(v as u32),
                    weight: 1.0,
                });
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Generates an undirected preferential-attachment (Barabási–Albert) graph
/// with `n` nodes, each new node attaching to `m` existing nodes, returned as
/// a directed graph with both orientations of every friendship.
///
/// The resulting out-degree distribution is heavy-tailed, matching the social
/// networks of Table II.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "each new node must attach to at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let m0 = (m + 1).min(n.max(1));
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // Repeated-endpoint list implements preferential attachment in O(1) per draw.
    let mut endpoints: Vec<u32> = Vec::new();

    // Seed clique over the first m0 nodes.
    for a in 0..m0 {
        for b in (a + 1)..m0 {
            edges.push((a as u32, b as u32));
            endpoints.push(a as u32);
            endpoints.push(b as u32);
        }
    }
    if m0 == 1 {
        endpoints.push(0);
    }

    for new in m0..n {
        let mut chosen: HashSet<u32> = HashSet::with_capacity(m);
        let mut guard = 0usize;
        while chosen.len() < m.min(new) && guard < 50 * m {
            let pick = endpoints[rng.gen_range(0..endpoints.len())];
            if pick as usize != new {
                chosen.insert(pick);
            }
            guard += 1;
        }
        // Fallback to uniform picks if the multiset was too concentrated.
        while chosen.len() < m.min(new) {
            let pick = rng.gen_range(0..new) as u32;
            chosen.insert(pick);
        }
        // Iterate the chosen targets in sorted order: `HashSet` iteration
        // order varies per process, and it feeds back into `endpoints`, so
        // without sorting the *structure* would differ run to run for the
        // same seed.
        // lint: allow(hash-order) — collected and sorted right below.
        let mut chosen: Vec<u32> = chosen.into_iter().collect();
        chosen.sort_unstable();
        for t in chosen {
            edges.push((new as u32, t));
            endpoints.push(new as u32);
            endpoints.push(t);
        }
    }

    let mut weighted = Vec::with_capacity(edges.len() * 2);
    for (a, b) in edges {
        weighted.push(crate::csr::WeightedEdge {
            src: UserId(a),
            dst: UserId(b),
            weight: 1.0,
        });
        weighted.push(crate::csr::WeightedEdge {
            src: UserId(b),
            dst: UserId(a),
            weight: 1.0,
        });
    }
    CsrGraph::from_edges(n, &weighted)
}

/// Generates a Watts–Strogatz small-world graph: a ring lattice where every
/// node is connected to its `k` nearest neighbours (k must be even), with each
/// edge rewired with probability `beta`.  Returned with both orientations.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n.max(1), "k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut neighbours: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    // Ring lattice.
    for u in 0..n {
        for offset in 1..=(k / 2) {
            let v = (u + offset) % n;
            neighbours[u].insert(v);
            neighbours[v].insert(u);
        }
    }
    // Rewire clockwise edges.
    for u in 0..n {
        for offset in 1..=(k / 2) {
            let v = (u + offset) % n;
            if rng.gen::<f64>() < beta && neighbours[u].contains(&v) {
                // Pick a new endpoint not already a neighbour and not u.
                let mut guard = 0;
                loop {
                    let w = rng.gen_range(0..n);
                    if w != u && !neighbours[u].contains(&w) {
                        neighbours[u].remove(&v);
                        neighbours[v].remove(&u);
                        neighbours[u].insert(w);
                        neighbours[w].insert(u);
                        break;
                    }
                    guard += 1;
                    if guard > 10 * n {
                        break;
                    }
                }
            }
        }
    }
    let mut edges = Vec::new();
    // lint: allow(hash-order) — the outer loop walks the Vec in index
    // order; each per-node HashSet is collected and sorted below before
    // any edge is emitted.
    for (u, nu) in neighbours.iter().enumerate() {
        // Emit the adjacency in sorted order: `HashSet` iteration order
        // varies per process, and CSR bucketing preserves input order, so
        // without sorting the adjacency layout (and everything seeded from
        // it) would differ run to run for the same seed.
        let mut vs: Vec<usize> = nu.iter().copied().collect();
        vs.sort_unstable();
        for v in vs {
            edges.push(crate::csr::WeightedEdge {
                src: UserId(u as u32),
                dst: UserId(v as u32),
                weight: 1.0,
            });
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Assigns influence strengths to an unweighted topology using the weighted
/// cascade convention `p(u, v) = min(1, base / in_degree(v))` perturbed by a
/// multiplicative jitter in `[1 - jitter, 1 + jitter]`.
///
/// The weighted-cascade convention is the standard way the IM literature
/// (including \[1\], \[23\]) derives influence probabilities from topology; the
/// jitter avoids exactly identical strengths so that Table II's average
/// initial strength can be tuned.
pub fn weighted_cascade_strengths(graph: &CsrGraph, base: f64, jitter: f64, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    graph.map_weights(|_, v, _| {
        let indeg = graph.in_degree(v).max(1) as f64;
        let jit = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        ((base / indeg) * jit).clamp(0.001, 1.0)
    })
}

/// Assigns uniform influence strengths drawn from `[lo, hi]`.
pub fn uniform_strengths(graph: &CsrGraph, lo: f64, hi: f64, seed: u64) -> CsrGraph {
    assert!(lo <= hi, "lo must not exceed hi");
    let mut rng = StdRng::seed_from_u64(seed);
    graph.map_weights(|_, _, _| rng.gen_range(lo..=hi).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn erdos_renyi_edge_count_is_near_expectation() {
        let g = erdos_renyi(100, 0.05, 7);
        let expected = 100.0 * 99.0 * 0.05;
        let m = g.edge_count() as f64;
        assert!((m - expected).abs() < expected * 0.5, "m = {m}");
    }

    #[test]
    fn erdos_renyi_zero_probability_is_empty() {
        let g = erdos_renyi(50, 0.0, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn preferential_attachment_has_heavy_tail() {
        let g = preferential_attachment(500, 3, 11);
        let s = DegreeStats::of(&g);
        // Mean degree ≈ 2 * m (undirected), max much larger than mean.
        assert!(s.mean_out_degree > 4.0 && s.mean_out_degree < 8.0);
        assert!(s.max_out_degree as f64 > 4.0 * s.mean_out_degree);
    }

    #[test]
    fn preferential_attachment_is_symmetric() {
        let g = preferential_attachment(50, 2, 3);
        for u in g.nodes() {
            for (v, _) in g.out_edges(u) {
                assert!(g.has_edge(v, u), "missing reverse edge {v:?} -> {u:?}");
            }
        }
    }

    #[test]
    fn preferential_attachment_is_deterministic_per_seed() {
        let a = preferential_attachment(100, 2, 42);
        let b = preferential_attachment(100, 2, 42);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.to_edge_list().len(), b.to_edge_list().len());
    }

    #[test]
    fn watts_strogatz_preserves_mean_degree() {
        let g = watts_strogatz(100, 6, 0.1, 5);
        let s = DegreeStats::of(&g);
        assert!(
            (s.mean_out_degree - 6.0).abs() < 0.5,
            "{}",
            s.mean_out_degree
        );
    }

    #[test]
    fn watts_strogatz_zero_beta_is_ring_lattice() {
        let g = watts_strogatz(10, 4, 0.0, 5);
        for u in g.nodes() {
            assert_eq!(g.out_degree(u), 4);
        }
    }

    #[test]
    fn weighted_cascade_clamps_to_probability_range() {
        let g = preferential_attachment(100, 3, 1);
        let w = weighted_cascade_strengths(&g, 1.0, 0.2, 2);
        for e in w.to_edge_list() {
            assert!(e.weight > 0.0 && e.weight <= 1.0);
        }
    }

    #[test]
    fn uniform_strengths_stay_in_range() {
        let g = erdos_renyi(50, 0.1, 3);
        let w = uniform_strengths(&g, 0.05, 0.15, 4);
        for e in w.to_edge_list() {
            assert!(e.weight >= 0.05 && e.weight <= 0.15);
        }
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn watts_strogatz_rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 1);
    }
}
