//! Degree / density statistics for graphs (Table II style summaries).

use crate::csr::CsrGraph;
use serde::{Deserialize, Serialize};

/// Summary statistics of the degree distribution of a directed graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of nodes.
    pub node_count: usize,
    /// Number of directed edges.
    pub edge_count: usize,
    /// Mean out-degree.
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of isolated nodes (no in- or out-edges).
    pub isolated_nodes: usize,
    /// Edge density `|E| / (|V| * (|V| - 1))`.
    pub density: f64,
}

impl DegreeStats {
    /// Computes degree statistics for a graph.
    pub fn of(graph: &CsrGraph) -> Self {
        let n = graph.node_count();
        let m = graph.edge_count();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut isolated = 0usize;
        for u in graph.nodes() {
            let out = graph.out_degree(u);
            let inn = graph.in_degree(u);
            max_out = max_out.max(out);
            max_in = max_in.max(inn);
            if out == 0 && inn == 0 {
                isolated += 1;
            }
        }
        let density = if n > 1 {
            m as f64 / (n as f64 * (n as f64 - 1.0))
        } else {
            0.0
        };
        DegreeStats {
            node_count: n,
            edge_count: m,
            mean_out_degree: if n > 0 { m as f64 / n as f64 } else { 0.0 },
            max_out_degree: max_out,
            max_in_degree: max_in,
            isolated_nodes: isolated,
            density,
        }
    }
}

/// Out-degree histogram of a graph, as `(degree, node_count)` pairs sorted by
/// degree.  Used to check that synthetic generators reproduce heavy-tailed
/// degree distributions.
pub fn out_degree_histogram(graph: &CsrGraph) -> Vec<(usize, usize)> {
    use std::collections::BTreeMap;
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for u in graph.nodes() {
        *hist.entry(graph.out_degree(u)).or_insert(0) += 1;
    }
    hist.into_iter().collect()
}

/// Fits the exponent of a power-law `P(k) ∝ k^(-α)` to the out-degree
/// distribution using the discrete maximum-likelihood estimator over degrees
/// `>= k_min`.  Returns `None` when fewer than two nodes qualify.
pub fn power_law_exponent(graph: &CsrGraph, k_min: usize) -> Option<f64> {
    let k_min = k_min.max(1);
    let mut sum_log = 0.0f64;
    let mut count = 0usize;
    for u in graph.nodes() {
        let k = graph.out_degree(u);
        if k >= k_min {
            sum_log += (k as f64 / (k_min as f64 - 0.5)).ln();
            count += 1;
        }
    }
    if count < 2 || sum_log <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / sum_log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ids::UserId;

    fn star(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new(n as usize + 1);
        for i in 1..=n {
            b.add_edge(UserId(0), UserId(i), 1.0);
        }
        b.build()
    }

    #[test]
    fn stats_of_star_graph() {
        let g = star(4);
        let s = DegreeStats::of(&g);
        assert_eq!(s.node_count, 5);
        assert_eq!(s.edge_count, 4);
        assert_eq!(s.max_out_degree, 4);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.isolated_nodes, 0);
        assert!((s.mean_out_degree - 0.8).abs() < 1e-12);
        assert!((s.density - 4.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_nodes_are_counted() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(UserId(0), UserId(1), 1.0);
        let s = DegreeStats::of(&b.build());
        assert_eq!(s.isolated_nodes, 2);
    }

    #[test]
    fn histogram_groups_by_degree() {
        let g = star(3);
        let hist = out_degree_histogram(&g);
        assert_eq!(hist, vec![(0, 3), (3, 1)]);
    }

    #[test]
    fn power_law_estimator_needs_enough_nodes() {
        let g = star(2);
        assert!(power_law_exponent(&g, 5).is_none());
    }

    #[test]
    fn power_law_estimator_returns_plausible_exponent() {
        // A graph where degrees roughly follow k^-2: many degree-1, few high.
        let mut b = GraphBuilder::new(200);
        let mut next = 1u32;
        for hub in 0..10u32 {
            let fanout = if hub == 0 { 60 } else { 6 };
            for _ in 0..fanout {
                if next as usize >= 199 {
                    break;
                }
                b.add_edge(UserId(hub), UserId(next), 1.0);
                next += 1;
            }
        }
        let alpha = power_law_exponent(&b.build(), 1).unwrap();
        assert!(alpha > 1.0 && alpha < 5.0, "alpha = {alpha}");
    }

    #[test]
    fn stats_of_empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.node_count, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.density, 0.0);
    }
}
