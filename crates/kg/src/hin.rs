//! The heterogeneous information network `G_KG = (V, E, Φ, Ψ)`.
//!
//! Facts are stored as undirected typed edges between typed nodes ("ITEM
//! iPhone SUPPORTS FEATURE Bluetooth").  Item nodes are additionally indexed
//! by their dense [`ItemId`] so that relevance computation can iterate item
//! pairs cheaply.

use crate::types::{EdgeType, NodeType};
use imdpp_graph::ItemId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a knowledge-graph node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KgNodeId(pub u32);

impl KgNodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for KgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A typed undirected fact edge of the knowledge graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fact {
    /// One endpoint.
    pub a: KgNodeId,
    /// The other endpoint.
    pub b: KgNodeId,
    /// The relation type `Ψ((a, b))`.
    pub edge_type: EdgeType,
}

/// Immutable knowledge graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    node_types: Vec<NodeType>,
    node_names: Vec<String>,
    /// Adjacency: for each node, `(neighbour, edge type)` pairs.
    adjacency: Vec<Vec<(KgNodeId, EdgeType)>>,
    /// Dense item index -> KG node.
    item_nodes: Vec<KgNodeId>,
    /// KG node -> dense item index (for ITEM nodes only).
    node_to_item: HashMap<KgNodeId, ItemId>,
    fact_count: usize,
}

impl KnowledgeGraph {
    /// Number of nodes (all types).
    pub fn node_count(&self) -> usize {
        self.node_types.len()
    }

    /// Number of undirected fact edges.
    pub fn fact_count(&self) -> usize {
        self.fact_count
    }

    /// Number of items (nodes of type [`NodeType::Item`]).
    pub fn item_count(&self) -> usize {
        self.item_nodes.len()
    }

    /// The type of a node.
    pub fn node_type(&self, n: KgNodeId) -> NodeType {
        self.node_types[n.index()]
    }

    /// The human-readable name of a node (may be empty).
    pub fn node_name(&self, n: KgNodeId) -> &str {
        &self.node_names[n.index()]
    }

    /// The KG node corresponding to a dense item id.
    pub fn item_node(&self, item: ItemId) -> KgNodeId {
        self.item_nodes[item.index()]
    }

    /// The dense item id of a KG node, if it is an item node.
    pub fn item_of_node(&self, n: KgNodeId) -> Option<ItemId> {
        self.node_to_item.get(&n).copied()
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.item_nodes.len()).map(ItemId::from_index)
    }

    /// Neighbours of `n` along edges of any type.
    pub fn neighbours(&self, n: KgNodeId) -> impl Iterator<Item = (KgNodeId, EdgeType)> + '_ {
        self.adjacency[n.index()].iter().copied()
    }

    /// Neighbours of `n` along edges of type `et` whose endpoint has type `nt`.
    pub fn typed_neighbours(
        &self,
        n: KgNodeId,
        et: EdgeType,
        nt: NodeType,
    ) -> impl Iterator<Item = KgNodeId> + '_ {
        self.adjacency[n.index()]
            .iter()
            .filter(move |(m, e)| *e == et && self.node_type(*m) == nt)
            .map(|(m, _)| *m)
    }

    /// Degree of a node counting all fact edges.
    pub fn degree(&self, n: KgNodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Counts nodes per node type.
    pub fn node_type_counts(&self) -> HashMap<NodeType, usize> {
        let mut counts = HashMap::new();
        for t in &self.node_types {
            *counts.entry(*t).or_insert(0) += 1;
        }
        counts
    }

    /// Counts fact edges per edge type.
    pub fn edge_type_counts(&self) -> HashMap<EdgeType, usize> {
        let mut counts = HashMap::new();
        for adj in &self.adjacency {
            for (_, et) in adj {
                *counts.entry(*et).or_insert(0) += 1;
            }
        }
        // Each undirected fact was stored twice.
        // lint: allow(hash-order) — in-place halving of every value; the
        // visit order cannot affect the result.
        for c in counts.values_mut() {
            *c /= 2;
        }
        counts
    }
}

/// Incremental builder for [`KnowledgeGraph`].
#[derive(Clone, Debug, Default)]
pub struct KnowledgeGraphBuilder {
    node_types: Vec<NodeType>,
    node_names: Vec<String>,
    facts: Vec<Fact>,
    item_nodes: Vec<KgNodeId>,
}

impl KnowledgeGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node of the given type with a display name; items are indexed
    /// densely in insertion order (the first item added becomes `ItemId(0)`).
    pub fn add_node(&mut self, node_type: NodeType, name: impl Into<String>) -> KgNodeId {
        let id = KgNodeId(u32::try_from(self.node_types.len()).expect("too many KG nodes"));
        self.node_types.push(node_type);
        self.node_names.push(name.into());
        if node_type == NodeType::Item {
            self.item_nodes.push(id);
        }
        id
    }

    /// Convenience wrapper adding an ITEM node and returning its dense id.
    pub fn add_item(&mut self, name: impl Into<String>) -> ItemId {
        self.add_node(NodeType::Item, name);
        ItemId::from_index(self.item_nodes.len() - 1)
    }

    /// Adds an undirected fact edge.
    pub fn add_fact(&mut self, a: KgNodeId, b: KgNodeId, edge_type: EdgeType) -> &mut Self {
        assert!(
            a.index() < self.node_types.len() && b.index() < self.node_types.len(),
            "fact endpoints must be existing nodes"
        );
        assert_ne!(a, b, "self-loop facts are not allowed");
        self.facts.push(Fact { a, b, edge_type });
        self
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_types.len()
    }

    /// Freezes the builder into an immutable [`KnowledgeGraph`].
    pub fn build(self) -> KnowledgeGraph {
        let mut adjacency = vec![Vec::new(); self.node_types.len()];
        for f in &self.facts {
            adjacency[f.a.index()].push((f.b, f.edge_type));
            adjacency[f.b.index()].push((f.a, f.edge_type));
        }
        let mut node_to_item = HashMap::with_capacity(self.item_nodes.len());
        for (idx, &node) in self.item_nodes.iter().enumerate() {
            node_to_item.insert(node, ItemId::from_index(idx));
        }
        KnowledgeGraph {
            node_types: self.node_types,
            node_names: self.node_names,
            adjacency,
            item_nodes: self.item_nodes,
            node_to_item,
            fact_count: self.facts.len(),
        }
    }
}

/// Builds the tiny Apple-products knowledge graph of Fig. 1(a) of the paper:
/// iPhone, AirPods, wireless charger and charging cable with their features
/// (Bluetooth, Qi standard) and brand (Apple Inc.).
///
/// Item ids: 0 = iPhone, 1 = AirPods, 2 = wireless charger, 3 = charging cable.
pub fn figure1_knowledge_graph() -> KnowledgeGraph {
    let mut b = KnowledgeGraphBuilder::new();
    let iphone = b.add_node(NodeType::Item, "iPhone");
    let airpods = b.add_node(NodeType::Item, "AirPods");
    let charger = b.add_node(NodeType::Item, "wireless charger");
    let cable = b.add_node(NodeType::Item, "charging cable");
    let bluetooth = b.add_node(NodeType::Feature, "Bluetooth");
    let qi = b.add_node(NodeType::Feature, "Qi standard");
    let apple = b.add_node(NodeType::Brand, "Apple Inc.");
    b.add_fact(iphone, bluetooth, EdgeType::Supports);
    b.add_fact(airpods, bluetooth, EdgeType::Supports);
    b.add_fact(iphone, qi, EdgeType::Supports);
    b.add_fact(charger, qi, EdgeType::Supports);
    b.add_fact(iphone, apple, EdgeType::ProducedBy);
    b.add_fact(airpods, apple, EdgeType::ProducedBy);
    b.add_fact(cable, iphone, EdgeType::RelatedTo);
    b.add_fact(cable, charger, EdgeType::RelatedTo);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_indexes_items_densely() {
        let mut b = KnowledgeGraphBuilder::new();
        let x0 = b.add_item("a");
        let _f = b.add_node(NodeType::Feature, "f");
        let x1 = b.add_item("b");
        let kg = b.build();
        assert_eq!(x0, ItemId(0));
        assert_eq!(x1, ItemId(1));
        assert_eq!(kg.item_count(), 2);
        assert_eq!(kg.item_of_node(kg.item_node(ItemId(1))), Some(ItemId(1)));
        assert_eq!(kg.node_name(kg.item_node(ItemId(1))), "b");
    }

    #[test]
    fn figure1_graph_matches_paper() {
        let kg = figure1_knowledge_graph();
        assert_eq!(kg.item_count(), 4);
        assert_eq!(kg.node_count(), 7);
        assert_eq!(kg.fact_count(), 8);
        let counts = kg.node_type_counts();
        assert_eq!(counts[&NodeType::Item], 4);
        assert_eq!(counts[&NodeType::Feature], 2);
        assert_eq!(counts[&NodeType::Brand], 1);
        let ec = kg.edge_type_counts();
        assert_eq!(ec[&EdgeType::Supports], 4);
        assert_eq!(ec[&EdgeType::ProducedBy], 2);
        assert_eq!(ec[&EdgeType::RelatedTo], 2);
    }

    #[test]
    fn typed_neighbours_filter_by_type() {
        let kg = figure1_knowledge_graph();
        let iphone = kg.item_node(ItemId(0));
        let features: Vec<_> = kg
            .typed_neighbours(iphone, EdgeType::Supports, NodeType::Feature)
            .map(|n| kg.node_name(n).to_string())
            .collect();
        assert_eq!(features.len(), 2);
        assert!(features.contains(&"Bluetooth".to_string()));
        assert!(features.contains(&"Qi standard".to_string()));
        let brands: Vec<_> = kg
            .typed_neighbours(iphone, EdgeType::ProducedBy, NodeType::Brand)
            .collect();
        assert_eq!(brands.len(), 1);
    }

    #[test]
    fn degree_counts_all_edges() {
        let kg = figure1_knowledge_graph();
        let iphone = kg.item_node(ItemId(0));
        assert_eq!(kg.degree(iphone), 4); // bluetooth, qi, apple, cable
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop_facts() {
        let mut b = KnowledgeGraphBuilder::new();
        let n = b.add_node(NodeType::Item, "x");
        b.add_fact(n, n, EdgeType::RelatedTo);
    }

    #[test]
    #[should_panic(expected = "existing nodes")]
    fn rejects_dangling_facts() {
        let mut b = KnowledgeGraphBuilder::new();
        let n = b.add_node(NodeType::Item, "x");
        b.add_fact(n, KgNodeId(99), EdgeType::RelatedTo);
    }

    #[test]
    fn empty_graph_is_valid() {
        let kg = KnowledgeGraphBuilder::new().build();
        assert_eq!(kg.node_count(), 0);
        assert_eq!(kg.item_count(), 0);
        assert_eq!(kg.fact_count(), 0);
    }
}
