//! # imdpp-kg
//!
//! Knowledge-graph substrate for the IMDPP reproduction.
//!
//! The paper models item relationships with a knowledge graph (a
//! heterogeneous information network `G_KG = (V, E, Φ, Ψ)`), a set of
//! *meta-graphs* describing complementary and substitutable relationships,
//! and a *personal item network* per user whose edge relevances are a
//! personally-weighted combination of the meta-graph relevance scores.
//!
//! This crate provides:
//!
//! * typed nodes and edges of the HIN ([`types`], [`hin`]),
//! * the item catalogue with importances `w_x` ([`items`]),
//! * meta-graph schemas and instance counting ([`metagraph`]),
//! * shared per-meta-graph item relevance matrices `s(x, y | m)`
//!   ([`relevance`]),
//! * per-user dynamic meta-graph weightings `W_meta(u, m, ζ_t)` and the
//!   derived complementary / substitutable relevances `r_C`, `r_S`
//!   ([`personal`]),
//! * Table-II style statistics ([`stats`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hin;
pub mod items;
pub mod metagraph;
pub mod personal;
pub mod relevance;
pub mod stats;
pub mod types;

pub use hin::{KgNodeId, KnowledgeGraph, KnowledgeGraphBuilder};
pub use items::ItemCatalog;
pub use metagraph::{MetaGraph, MetaGraphId, MetaGraphShape, RelationKind};
pub use personal::PersonalPerception;
pub use relevance::{RelevanceMatrix, RelevanceModel};
pub use types::{EdgeType, NodeType};

pub use imdpp_graph::{ItemId, UserId};
