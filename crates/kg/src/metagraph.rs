//! Meta-graph schemas describing complementary / substitutable relationships.
//!
//! A meta-graph is a small schema over node and edge *types* whose instances
//! in the knowledge graph connect two ITEM endpoints (Fig. 1(b) of the
//! paper).  The shapes implemented below cover the meta-graphs the paper
//! draws and the ones its datasets need:
//!
//! * [`MetaGraphShape::DirectLink`]    — ITEM —e— ITEM (the paper's `m3`),
//! * [`MetaGraphShape::SharedNeighbour`] — ITEM —e— T —e— ITEM (the paper's
//!   `m1` with T = FEATURE and `m2` with T = BRAND),
//! * [`MetaGraphShape::CoupledNeighbours`] — ITEM —e1— T1 —?— T2 —e2— ITEM
//!   where the two mid nodes must be adjacent: a genuinely graph-shaped (not
//!   path-shaped) schema used for richer KGs.
//!
//! Each meta-graph carries the [`RelationKind`] it describes, so that the
//! personal item network can combine complementary meta-graphs into `r_C`
//! and substitutable ones into `r_S`.

use crate::hin::KnowledgeGraph;
use crate::types::{EdgeType, NodeType};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Whether a meta-graph captures a complementary or a substitutable
/// relationship between its two ITEM endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelationKind {
    /// Adopting one endpoint increases the preference for the other
    /// (cross elasticity of complements).
    Complementary,
    /// Adopting one endpoint decreases the preference for the other.
    Substitutable,
}

impl fmt::Display for RelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationKind::Complementary => write!(f, "complementary"),
            RelationKind::Substitutable => write!(f, "substitutable"),
        }
    }
}

/// Index of a meta-graph within an ordered meta-graph collection (e.g.
/// [`MetaGraph::default_set`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetaGraphId(pub u32);

impl MetaGraphId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The structural schema of a meta-graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetaGraphShape {
    /// ITEM —edge— ITEM.
    DirectLink {
        /// The edge type connecting the two items.
        edge: EdgeType,
    },
    /// ITEM —edge— (via) —edge— ITEM, e.g. two items supporting the same
    /// FEATURE or produced by the same BRAND.
    SharedNeighbour {
        /// Node type of the shared middle node.
        via: NodeType,
        /// Edge type on both sides.
        edge: EdgeType,
    },
    /// ITEM —e1— T1 —any— T2 —e2— ITEM where the two middle nodes are
    /// themselves connected by any fact edge.
    CoupledNeighbours {
        /// Node type adjacent to the first item.
        via_a: NodeType,
        /// Edge type between the first item and `via_a`.
        edge_a: EdgeType,
        /// Node type adjacent to the second item.
        via_b: NodeType,
        /// Edge type between the second item and `via_b`.
        edge_b: EdgeType,
    },
}

/// A meta-graph: a schema plus the relationship kind it describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaGraph {
    /// The structural schema.
    pub shape: MetaGraphShape,
    /// Whether instances indicate complementarity or substitutability.
    pub kind: RelationKind,
}

impl MetaGraph {
    /// Complementary "shared feature" meta-graph (`m1` in Fig. 1(b)).
    pub fn shared_feature() -> Self {
        MetaGraph {
            shape: MetaGraphShape::SharedNeighbour {
                via: NodeType::Feature,
                edge: EdgeType::Supports,
            },
            kind: RelationKind::Complementary,
        }
    }

    /// Complementary "same brand" meta-graph (`m2` in Fig. 1(b)).
    pub fn same_brand() -> Self {
        MetaGraph {
            shape: MetaGraphShape::SharedNeighbour {
                via: NodeType::Brand,
                edge: EdgeType::ProducedBy,
            },
            kind: RelationKind::Complementary,
        }
    }

    /// Complementary "directly related" meta-graph (`m3` in Fig. 1(b)).
    pub fn directly_related() -> Self {
        MetaGraph {
            shape: MetaGraphShape::DirectLink {
                edge: EdgeType::RelatedTo,
            },
            kind: RelationKind::Complementary,
        }
    }

    /// Substitutable "same category" meta-graph: items in the same category
    /// usually satisfy the same need.
    pub fn same_category() -> Self {
        MetaGraph {
            shape: MetaGraphShape::SharedNeighbour {
                via: NodeType::Category,
                edge: EdgeType::BelongsTo,
            },
            kind: RelationKind::Substitutable,
        }
    }

    /// Substitutable "same keyword" meta-graph (used by the course KG, where
    /// two courses sharing core keywords cover the same material).
    pub fn same_keyword() -> Self {
        MetaGraph {
            shape: MetaGraphShape::SharedNeighbour {
                via: NodeType::Keyword,
                edge: EdgeType::TaggedWith,
            },
            kind: RelationKind::Substitutable,
        }
    }

    /// The default meta-graph collection used throughout the experiments:
    /// three complementary meta-graphs (`m1`–`m3` of the paper) and two
    /// substitutable ones.
    pub fn default_set() -> Vec<MetaGraph> {
        vec![
            MetaGraph::shared_feature(),
            MetaGraph::same_brand(),
            MetaGraph::directly_related(),
            MetaGraph::same_category(),
            MetaGraph::same_keyword(),
        ]
    }

    /// Counts the instances of this meta-graph in `kg` connecting the item
    /// nodes `a` and `b` (both must be ITEM nodes).
    ///
    /// For [`MetaGraphShape::DirectLink`] the count is 0 or 1; for the shared
    /// shapes it is the number of distinct middle nodes (or middle pairs).
    pub fn instance_count(
        &self,
        kg: &KnowledgeGraph,
        a: crate::hin::KgNodeId,
        b: crate::hin::KgNodeId,
    ) -> usize {
        match self.shape {
            MetaGraphShape::DirectLink { edge } => kg
                .neighbours(a)
                .filter(|(n, e)| *n == b && *e == edge)
                .count()
                .min(1),
            MetaGraphShape::SharedNeighbour { via, edge } => {
                let na: HashSet<_> = kg.typed_neighbours(a, edge, via).collect();
                if na.is_empty() {
                    return 0;
                }
                kg.typed_neighbours(b, edge, via)
                    .filter(|n| na.contains(n))
                    .count()
            }
            MetaGraphShape::CoupledNeighbours {
                via_a,
                edge_a,
                via_b,
                edge_b,
            } => {
                let na: Vec<_> = kg.typed_neighbours(a, edge_a, via_a).collect();
                let nb: HashSet<_> = kg.typed_neighbours(b, edge_b, via_b).collect();
                if na.is_empty() || nb.is_empty() {
                    return 0;
                }
                let mut count = 0;
                for m1 in &na {
                    for (m2, _) in kg.neighbours(*m1) {
                        if nb.contains(&m2) {
                            count += 1;
                        }
                    }
                }
                count
            }
        }
    }

    /// Counts instances of this meta-graph anchored at `a` on both ends
    /// (the PathSim-style self count used for normalisation).
    pub fn self_count(&self, kg: &KnowledgeGraph, a: crate::hin::KgNodeId) -> usize {
        match self.shape {
            MetaGraphShape::DirectLink { .. } => 1,
            MetaGraphShape::SharedNeighbour { via, edge } => {
                kg.typed_neighbours(a, edge, via).count().max(1)
            }
            MetaGraphShape::CoupledNeighbours { via_a, edge_a, .. } => {
                kg.typed_neighbours(a, edge_a, via_a).count().max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hin::figure1_knowledge_graph;
    use imdpp_graph::ItemId;

    #[test]
    fn default_set_has_three_complementary_and_two_substitutable() {
        let set = MetaGraph::default_set();
        assert_eq!(set.len(), 5);
        let comp = set
            .iter()
            .filter(|m| m.kind == RelationKind::Complementary)
            .count();
        assert_eq!(comp, 3);
    }

    #[test]
    fn shared_feature_counts_common_features() {
        let kg = figure1_knowledge_graph();
        let iphone = kg.item_node(ItemId(0));
        let airpods = kg.item_node(ItemId(1));
        let charger = kg.item_node(ItemId(2));
        let m1 = MetaGraph::shared_feature();
        // iPhone and AirPods share Bluetooth.
        assert_eq!(m1.instance_count(&kg, iphone, airpods), 1);
        // iPhone and wireless charger share Qi standard.
        assert_eq!(m1.instance_count(&kg, iphone, charger), 1);
        // AirPods and wireless charger share nothing.
        assert_eq!(m1.instance_count(&kg, airpods, charger), 0);
    }

    #[test]
    fn same_brand_counts_common_brand() {
        let kg = figure1_knowledge_graph();
        let iphone = kg.item_node(ItemId(0));
        let airpods = kg.item_node(ItemId(1));
        let cable = kg.item_node(ItemId(3));
        let m2 = MetaGraph::same_brand();
        assert_eq!(m2.instance_count(&kg, iphone, airpods), 1);
        assert_eq!(m2.instance_count(&kg, iphone, cable), 0);
    }

    #[test]
    fn direct_link_counts_related_to_edges() {
        let kg = figure1_knowledge_graph();
        let iphone = kg.item_node(ItemId(0));
        let cable = kg.item_node(ItemId(3));
        let charger = kg.item_node(ItemId(2));
        let m3 = MetaGraph::directly_related();
        assert_eq!(m3.instance_count(&kg, iphone, cable), 1);
        assert_eq!(m3.instance_count(&kg, cable, charger), 1);
        assert_eq!(m3.instance_count(&kg, iphone, charger), 0);
    }

    #[test]
    fn self_count_reflects_attachment_degree() {
        let kg = figure1_knowledge_graph();
        let iphone = kg.item_node(ItemId(0));
        let cable = kg.item_node(ItemId(3));
        let m1 = MetaGraph::shared_feature();
        assert_eq!(m1.self_count(&kg, iphone), 2); // Bluetooth + Qi
        assert_eq!(m1.self_count(&kg, cable), 1); // clamped minimum
    }

    #[test]
    fn coupled_neighbours_matches_adjacent_middles() {
        // ITEM a — FEATURE f — BRAND brand — ITEM b, with f adjacent to brand.
        let mut b = crate::hin::KnowledgeGraphBuilder::new();
        let a_item = b.add_node(NodeType::Item, "a");
        let b_item = b.add_node(NodeType::Item, "b");
        let f = b.add_node(NodeType::Feature, "f");
        let brand = b.add_node(NodeType::Brand, "brand");
        b.add_fact(a_item, f, EdgeType::Supports);
        b.add_fact(b_item, brand, EdgeType::ProducedBy);
        b.add_fact(f, brand, EdgeType::RelatedTo);
        let kg = b.build();
        let mg = MetaGraph {
            shape: MetaGraphShape::CoupledNeighbours {
                via_a: NodeType::Feature,
                edge_a: EdgeType::Supports,
                via_b: NodeType::Brand,
                edge_b: EdgeType::ProducedBy,
            },
            kind: RelationKind::Complementary,
        };
        assert_eq!(mg.instance_count(&kg, a_item, b_item), 1);
        assert_eq!(mg.instance_count(&kg, b_item, a_item), 0); // asymmetric roles
    }

    #[test]
    fn relation_kind_display() {
        assert_eq!(RelationKind::Complementary.to_string(), "complementary");
        assert_eq!(RelationKind::Substitutable.to_string(), "substitutable");
    }
}
