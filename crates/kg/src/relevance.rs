//! Shared item–item relevance matrices `s(x, y | m)` per meta-graph.
//!
//! Following SCSE / PathSim style measures, the relevance between items `x`
//! and `y` under a meta-graph `m` is the symmetrised, normalised instance
//! count
//!
//! ```text
//! s(x, y | m) = 2 · count_m(x, y) / (count_m(x, x) + count_m(y, y))
//! ```
//!
//! clamped into `[0, 1]`.  The matrices are *shared across users*: dynamic
//! personal perception enters through the per-user meta-graph weightings of
//! [`crate::personal::PersonalPerception`], not through per-user copies of
//! these matrices.  This keeps memory proportional to
//! `|meta-graphs| · nnz + |users| · |meta-graphs|` instead of
//! `|users| · |items|²`.

use crate::hin::KnowledgeGraph;
use crate::metagraph::{MetaGraph, MetaGraphId, MetaGraphShape, RelationKind};
use imdpp_graph::ItemId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sparse symmetric item×item relevance matrix with scores in `[0, 1]`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RelevanceMatrix {
    /// Per item: sorted list of `(other item, score)` with positive score.
    rows: Vec<Vec<(ItemId, f64)>>,
}

impl RelevanceMatrix {
    /// Builds an empty matrix over `item_count` items.
    pub fn empty(item_count: usize) -> Self {
        RelevanceMatrix {
            rows: vec![Vec::new(); item_count],
        }
    }

    /// Builds a matrix from an unordered map of pair scores.  Scores are
    /// clamped into `[0, 1]`; zero entries are dropped; the matrix is
    /// symmetrised by storing each pair in both rows.
    pub fn from_pairs(item_count: usize, pairs: &HashMap<(u32, u32), f64>) -> Self {
        let mut rows: Vec<Vec<(ItemId, f64)>> = vec![Vec::new(); item_count];
        // Iterate in key order: with duplicate pairs (e.g. both (a,b) and
        // (b,a) present) the dedup below keeps the first row entry, and
        // `sort_unstable` gives no order guarantee among equal keys — so
        // hash order could pick the surviving score.
        // lint: allow(hash-order) — collected and sorted before use.
        let mut entries: Vec<(&(u32, u32), &f64)> = pairs.iter().collect();
        entries.sort_unstable_by_key(|(&k, _)| k);
        for (&(a, b), &score) in entries {
            let s = score.clamp(0.0, 1.0);
            if s <= 0.0 || a == b {
                continue;
            }
            rows[a as usize].push((ItemId(b), s));
            rows[b as usize].push((ItemId(a), s));
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|(i, _)| i.0);
            row.dedup_by_key(|(i, _)| i.0);
        }
        RelevanceMatrix { rows }
    }

    /// Number of items covered by the matrix.
    pub fn item_count(&self) -> usize {
        self.rows.len()
    }

    /// The relevance score between two items (0.0 when absent).
    pub fn score(&self, x: ItemId, y: ItemId) -> f64 {
        if x == y {
            return 0.0;
        }
        self.rows[x.index()]
            .binary_search_by_key(&y.0, |(i, _)| i.0)
            .map(|pos| self.rows[x.index()][pos].1)
            .unwrap_or(0.0)
    }

    /// Items with positive relevance to `x`.
    pub fn neighbours(&self, x: ItemId) -> impl Iterator<Item = (ItemId, f64)> + '_ {
        self.rows[x.index()].iter().copied()
    }

    /// Number of non-zero (directed) entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|r| r.len()).sum()
    }
}

/// The collection of meta-graphs together with their relevance matrices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RelevanceModel {
    metagraphs: Vec<MetaGraph>,
    matrices: Vec<RelevanceMatrix>,
    item_count: usize,
}

impl RelevanceModel {
    /// Computes the relevance matrices of every meta-graph over a knowledge
    /// graph.
    ///
    /// Counting is performed with inverted indices (middle node → attached
    /// items) so the cost is proportional to the number of meta-graph
    /// instances rather than to `|items|²`.
    pub fn compute(kg: &KnowledgeGraph, metagraphs: Vec<MetaGraph>) -> Self {
        let item_count = kg.item_count();
        let mut matrices = Vec::with_capacity(metagraphs.len());
        for mg in &metagraphs {
            matrices.push(Self::compute_matrix(kg, mg));
        }
        RelevanceModel {
            metagraphs,
            matrices,
            item_count,
        }
    }

    /// Builds a model from precomputed matrices (used by tests and synthetic
    /// dataset generators that author relevance directly).
    pub fn from_matrices(
        metagraphs: Vec<MetaGraph>,
        matrices: Vec<RelevanceMatrix>,
        item_count: usize,
    ) -> Self {
        assert_eq!(
            metagraphs.len(),
            matrices.len(),
            "one matrix per meta-graph is required"
        );
        for m in &matrices {
            assert_eq!(m.item_count(), item_count, "matrix item count mismatch");
        }
        RelevanceModel {
            metagraphs,
            matrices,
            item_count,
        }
    }

    fn compute_matrix(kg: &KnowledgeGraph, mg: &MetaGraph) -> RelevanceMatrix {
        let item_count = kg.item_count();
        let mut counts: HashMap<(u32, u32), f64> = HashMap::new();
        // Pair counts via inverted index on the middle node(s).
        match mg.shape {
            MetaGraphShape::DirectLink { edge } => {
                for x in kg.items() {
                    let nx = kg.item_node(x);
                    for (n, e) in kg.neighbours(nx) {
                        if e != edge {
                            continue;
                        }
                        if let Some(y) = kg.item_of_node(n) {
                            if y.0 > x.0 {
                                *counts.entry((x.0, y.0)).or_insert(0.0) += 1.0;
                            }
                        }
                    }
                }
            }
            MetaGraphShape::SharedNeighbour { via, edge } => {
                // middle node -> items attached to it through `edge`.
                for mid in 0..kg.node_count() {
                    let mid = crate::hin::KgNodeId(mid as u32);
                    if kg.node_type(mid) != via {
                        continue;
                    }
                    let attached: Vec<ItemId> = kg
                        .neighbours(mid)
                        .filter(|(_, e)| *e == edge)
                        .filter_map(|(n, _)| kg.item_of_node(n))
                        .collect();
                    for i in 0..attached.len() {
                        for j in (i + 1)..attached.len() {
                            let (a, b) = if attached[i].0 < attached[j].0 {
                                (attached[i].0, attached[j].0)
                            } else {
                                (attached[j].0, attached[i].0)
                            };
                            if a != b {
                                *counts.entry((a, b)).or_insert(0.0) += 1.0;
                            }
                        }
                    }
                }
            }
            MetaGraphShape::CoupledNeighbours {
                via_a,
                edge_a,
                via_b,
                edge_b,
            } => {
                // For each adjacent (m1: via_a, m2: via_b) pair, link the items
                // attached to m1 via edge_a with the items attached to m2 via
                // edge_b.  Count both orientations and halve to symmetrise.
                for mid in 0..kg.node_count() {
                    let m1 = crate::hin::KgNodeId(mid as u32);
                    if kg.node_type(m1) != via_a {
                        continue;
                    }
                    let items_a: Vec<ItemId> = kg
                        .neighbours(m1)
                        .filter(|(_, e)| *e == edge_a)
                        .filter_map(|(n, _)| kg.item_of_node(n))
                        .collect();
                    if items_a.is_empty() {
                        continue;
                    }
                    for (m2, _) in kg.neighbours(m1) {
                        if kg.node_type(m2) != via_b {
                            continue;
                        }
                        let items_b: Vec<ItemId> = kg
                            .neighbours(m2)
                            .filter(|(_, e)| *e == edge_b)
                            .filter_map(|(n, _)| kg.item_of_node(n))
                            .collect();
                        for &a in &items_a {
                            for &b in &items_b {
                                if a == b {
                                    continue;
                                }
                                let key = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
                                *counts.entry(key).or_insert(0.0) += 0.5;
                            }
                        }
                    }
                }
            }
        }
        // PathSim-style normalisation by the self counts of the endpoints.
        let self_counts: Vec<f64> = kg
            .items()
            .map(|x| mg.self_count(kg, kg.item_node(x)) as f64)
            .collect();
        let mut scores: HashMap<(u32, u32), f64> = HashMap::with_capacity(counts.len());
        // lint: allow(hash-order) — each distinct key is written exactly once
        // into `scores`; no accumulation, so visit order cannot matter.
        for ((a, b), c) in counts {
            let denom = self_counts[a as usize] + self_counts[b as usize];
            if denom > 0.0 {
                scores.insert((a, b), (2.0 * c / denom).clamp(0.0, 1.0));
            }
        }
        RelevanceMatrix::from_pairs(item_count, &scores)
    }

    /// Number of meta-graphs in the model.
    pub fn len(&self) -> usize {
        self.metagraphs.len()
    }

    /// True if the model contains no meta-graphs.
    pub fn is_empty(&self) -> bool {
        self.metagraphs.is_empty()
    }

    /// Number of items the matrices cover.
    pub fn item_count(&self) -> usize {
        self.item_count
    }

    /// The meta-graphs of the model.
    pub fn metagraphs(&self) -> &[MetaGraph] {
        &self.metagraphs
    }

    /// The relevance matrix of a meta-graph.
    pub fn matrix(&self, id: MetaGraphId) -> &RelevanceMatrix {
        &self.matrices[id.index()]
    }

    /// Ids of the meta-graphs with the given relationship kind.
    pub fn ids_of_kind(&self, kind: RelationKind) -> Vec<MetaGraphId> {
        self.metagraphs
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == kind)
            .map(|(i, _)| MetaGraphId(i as u32))
            .collect()
    }

    /// Restricts the model to its first `k` meta-graphs (used by the Fig. 13
    /// sensitivity study on the number of meta-graphs).
    pub fn truncated(&self, k: usize) -> RelevanceModel {
        let k = k.min(self.metagraphs.len());
        RelevanceModel {
            metagraphs: self.metagraphs[..k].to_vec(),
            matrices: self.matrices[..k].to_vec(),
            item_count: self.item_count,
        }
    }

    /// The unweighted average relevance of kind `kind` between `x` and `y`
    /// over the meta-graphs of that kind (each user's perception starts from
    /// this value under uniform weightings).
    pub fn base_relevance(&self, x: ItemId, y: ItemId, kind: RelationKind) -> f64 {
        let ids = self.ids_of_kind(kind);
        if ids.is_empty() {
            return 0.0;
        }
        let sum: f64 = ids.iter().map(|id| self.matrix(*id).score(x, y)).sum();
        (sum / ids.len() as f64).clamp(0.0, 1.0)
    }

    /// Items that have positive relevance (of either kind) to `x` under any
    /// meta-graph, without duplicates.
    pub fn related_items(&self, x: ItemId) -> Vec<ItemId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for m in &self.matrices {
            for (y, _) in m.neighbours(x) {
                if seen.insert(y.0) {
                    out.push(y);
                }
            }
        }
        out.sort_unstable_by_key(|i| i.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hin::figure1_knowledge_graph;

    fn model() -> RelevanceModel {
        RelevanceModel::compute(&figure1_knowledge_graph(), MetaGraph::default_set())
    }

    #[test]
    fn matrix_scores_are_symmetric_and_bounded() {
        let m = model();
        for id in 0..m.len() {
            let mat = m.matrix(MetaGraphId(id as u32));
            for x in 0..m.item_count() {
                for y in 0..m.item_count() {
                    let (x, y) = (ItemId(x as u32), ItemId(y as u32));
                    let s = mat.score(x, y);
                    assert!((0.0..=1.0).contains(&s));
                    assert!((s - mat.score(y, x)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn shared_feature_relevance_matches_hand_computation() {
        let m = model();
        let m1 = m.matrix(MetaGraphId(0)); // shared_feature
                                           // iPhone has 2 features, AirPods 1, shared 1 => 2*1/(2+1) = 2/3.
        let s = m1.score(ItemId(0), ItemId(1));
        assert!((s - 2.0 / 3.0).abs() < 1e-9, "s = {s}");
        // iPhone/charger share Qi: 2*1/(2+1) = 2/3.
        assert!((m1.score(ItemId(0), ItemId(2)) - 2.0 / 3.0).abs() < 1e-9);
        // AirPods/charger share nothing.
        assert_eq!(m1.score(ItemId(1), ItemId(2)), 0.0);
    }

    #[test]
    fn direct_link_relevance_is_one_for_related_pairs() {
        let m = model();
        let m3 = m.matrix(MetaGraphId(2)); // directly_related
        assert!((m3.score(ItemId(0), ItemId(3)) - 1.0).abs() < 1e-9);
        assert_eq!(m3.score(ItemId(1), ItemId(2)), 0.0);
    }

    #[test]
    fn diagonal_is_zero() {
        let m = model();
        for id in 0..m.len() {
            let mat = m.matrix(MetaGraphId(id as u32));
            for x in 0..m.item_count() {
                assert_eq!(mat.score(ItemId(x as u32), ItemId(x as u32)), 0.0);
            }
        }
    }

    #[test]
    fn ids_of_kind_partition_the_metagraphs() {
        let m = model();
        let comp = m.ids_of_kind(RelationKind::Complementary);
        let sub = m.ids_of_kind(RelationKind::Substitutable);
        assert_eq!(comp.len() + sub.len(), m.len());
        assert_eq!(comp, vec![MetaGraphId(0), MetaGraphId(1), MetaGraphId(2)]);
    }

    #[test]
    fn truncated_model_keeps_prefix() {
        let m = model();
        let t = m.truncated(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.item_count(), m.item_count());
        assert_eq!(m.truncated(99).len(), m.len());
    }

    #[test]
    fn base_relevance_averages_over_kind() {
        let m = model();
        // Complementary: m1 gives 2/3, m2 gives 2*1/(1+1)=1, m3 gives 0 for (iPhone, AirPods).
        let r = m.base_relevance(ItemId(0), ItemId(1), RelationKind::Complementary);
        assert!((r - (2.0 / 3.0 + 1.0 + 0.0) / 3.0).abs() < 1e-9, "r = {r}");
        // No substitutable meta-graph matches anything in the Fig. 1 KG.
        assert_eq!(
            m.base_relevance(ItemId(0), ItemId(1), RelationKind::Substitutable),
            0.0
        );
    }

    #[test]
    fn related_items_unions_all_metagraphs() {
        let m = model();
        let rel = m.related_items(ItemId(0));
        // iPhone is related to AirPods (feature/brand), charger (feature), cable (direct link).
        assert_eq!(rel, vec![ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn from_pairs_drops_zero_and_clamps() {
        let mut pairs = HashMap::new();
        pairs.insert((0u32, 1u32), 1.7);
        pairs.insert((1u32, 2u32), 0.0);
        let m = RelevanceMatrix::from_pairs(3, &pairs);
        assert_eq!(m.score(ItemId(0), ItemId(1)), 1.0);
        assert_eq!(m.score(ItemId(1), ItemId(2)), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn empty_model_is_harmless() {
        let kg = figure1_knowledge_graph();
        let m = RelevanceModel::compute(&kg, Vec::new());
        assert!(m.is_empty());
        assert_eq!(
            m.base_relevance(ItemId(0), ItemId(1), RelationKind::Complementary),
            0.0
        );
        assert!(m.related_items(ItemId(0)).is_empty());
    }
}
