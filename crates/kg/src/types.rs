//! Node and edge types of the heterogeneous information network.
//!
//! These correspond to the type-mapping functions `Φ` (node types) and `Ψ`
//! (edge types) of the paper's knowledge graph definition.  The variants
//! cover the entities appearing in the paper's figures and datasets (items,
//! features, brands, categories, …) plus numbered custom types so that the
//! synthetic Yelp/Amazon-style KGs can reach the type counts of Table II.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Type of a knowledge-graph node (`Φ(v)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeType {
    /// A promotable item (product, course, point of interest).
    Item,
    /// A feature supported by items (e.g. *Bluetooth*, *Qi standard*).
    Feature,
    /// A brand / producer (e.g. *Apple Inc.*).
    Brand,
    /// A category or genre.
    Category,
    /// A geographic location (used by the Gowalla / Yelp style KGs).
    Location,
    /// A keyword / tag (used by the course-promotion KG).
    Keyword,
    /// Additional dataset-specific node type (numbered).
    Custom(u8),
}

impl NodeType {
    /// A short lowercase name for display and CSV output.
    pub fn name(&self) -> String {
        match self {
            NodeType::Item => "item".to_string(),
            NodeType::Feature => "feature".to_string(),
            NodeType::Brand => "brand".to_string(),
            NodeType::Category => "category".to_string(),
            NodeType::Location => "location".to_string(),
            NodeType::Keyword => "keyword".to_string(),
            NodeType::Custom(k) => format!("custom{k}"),
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Type of a knowledge-graph edge (`Ψ(e)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EdgeType {
    /// ITEM *supports* FEATURE (Fig. 1(a) of the paper).
    Supports,
    /// ITEM *produced by* BRAND.
    ProducedBy,
    /// ITEM *belongs to* CATEGORY.
    BelongsTo,
    /// ITEM *located at* LOCATION.
    LocatedAt,
    /// ITEM *tagged with* KEYWORD.
    TaggedWith,
    /// Generic item–item relation asserted directly in the KG
    /// (e.g. "also bought", "prerequisite of").
    RelatedTo,
    /// Additional dataset-specific edge type (numbered).
    Custom(u8),
}

impl EdgeType {
    /// A short lowercase name for display and CSV output.
    pub fn name(&self) -> String {
        match self {
            EdgeType::Supports => "supports".to_string(),
            EdgeType::ProducedBy => "produced_by".to_string(),
            EdgeType::BelongsTo => "belongs_to".to_string(),
            EdgeType::LocatedAt => "located_at".to_string(),
            EdgeType::TaggedWith => "tagged_with".to_string(),
            EdgeType::RelatedTo => "related_to".to_string(),
            EdgeType::Custom(k) => format!("custom{k}"),
        }
    }
}

impl fmt::Display for EdgeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_type_names_are_stable() {
        assert_eq!(NodeType::Item.name(), "item");
        assert_eq!(NodeType::Feature.to_string(), "feature");
        assert_eq!(NodeType::Custom(3).name(), "custom3");
    }

    #[test]
    fn edge_type_names_are_stable() {
        assert_eq!(EdgeType::Supports.name(), "supports");
        assert_eq!(EdgeType::ProducedBy.to_string(), "produced_by");
        assert_eq!(EdgeType::Custom(1).name(), "custom1");
    }

    #[test]
    fn types_are_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeType::Item);
        s.insert(NodeType::Item);
        s.insert(NodeType::Brand);
        assert_eq!(s.len(), 2);
        assert!(NodeType::Item < NodeType::Custom(0));
    }
}
