//! The catalogue of promotable items with their campaign importances `w_x`.

use imdpp_graph::ItemId;
use serde::{Deserialize, Serialize};

/// The target item set `I` together with the importance set `W = {w_x}`
/// (Definition 1 of the paper) and optional display names.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ItemCatalog {
    importance: Vec<f64>,
    names: Vec<String>,
}

impl ItemCatalog {
    /// Builds a catalogue from per-item importances; names default to `x{i}`.
    pub fn from_importances(importance: Vec<f64>) -> Self {
        for (i, w) in importance.iter().enumerate() {
            assert!(
                w.is_finite() && *w >= 0.0,
                "importance of item {i} must be finite and non-negative, got {w}"
            );
        }
        let names = (0..importance.len()).map(|i| format!("x{i}")).collect();
        ItemCatalog { importance, names }
    }

    /// Builds a catalogue with uniform importance 1.0.
    pub fn uniform(item_count: usize) -> Self {
        Self::from_importances(vec![1.0; item_count])
    }

    /// Builds a catalogue with names and importances.
    pub fn with_names(importance: Vec<f64>, names: Vec<String>) -> Self {
        assert_eq!(
            importance.len(),
            names.len(),
            "importances and names must have the same length"
        );
        let mut c = Self::from_importances(importance);
        c.names = names;
        c
    }

    /// Number of items.
    pub fn item_count(&self) -> usize {
        self.importance.len()
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.importance.len()).map(ItemId::from_index)
    }

    /// Importance `w_x` of an item.
    #[inline]
    pub fn importance(&self, x: ItemId) -> f64 {
        self.importance[x.index()]
    }

    /// Display name of an item.
    pub fn name(&self, x: ItemId) -> &str {
        &self.names[x.index()]
    }

    /// Average importance over the catalogue (reported in Table II).
    pub fn average_importance(&self) -> f64 {
        if self.importance.is_empty() {
            return 0.0;
        }
        self.importance.iter().sum::<f64>() / self.importance.len() as f64
    }

    /// Replaces the importance of an item (used by experiment setups).
    pub fn set_importance(&mut self, x: ItemId, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "importance must be non-negative");
        self.importance[x.index()] = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_catalog_has_unit_importance() {
        let c = ItemCatalog::uniform(3);
        assert_eq!(c.item_count(), 3);
        assert_eq!(c.importance(ItemId(1)), 1.0);
        assert_eq!(c.average_importance(), 1.0);
        assert_eq!(c.name(ItemId(2)), "x2");
    }

    #[test]
    fn named_catalog_keeps_names() {
        let c = ItemCatalog::with_names(
            vec![1.0, 0.5],
            vec!["iPhone".to_string(), "AirPods".to_string()],
        );
        assert_eq!(c.name(ItemId(0)), "iPhone");
        assert!((c.average_importance() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn set_importance_updates_value() {
        let mut c = ItemCatalog::uniform(2);
        c.set_importance(ItemId(0), 2.5);
        assert_eq!(c.importance(ItemId(0)), 2.5);
    }

    #[test]
    fn items_iterates_in_order() {
        let c = ItemCatalog::uniform(4);
        let ids: Vec<ItemId> = c.items().collect();
        assert_eq!(ids, vec![ItemId(0), ItemId(1), ItemId(2), ItemId(3)]);
    }

    #[test]
    fn empty_catalog_average_is_zero() {
        let c = ItemCatalog::uniform(0);
        assert_eq!(c.average_importance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_importance() {
        let _ = ItemCatalog::from_importances(vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn rejects_mismatched_names() {
        let _ = ItemCatalog::with_names(vec![1.0], vec![]);
    }
}
