//! Dynamic personal perception: per-user meta-graph weightings and the
//! derived personal item networks.
//!
//! The paper captures each user's perception of item relationships with a
//! *personal item network* `G_PIN(u, ζ_t)`: the complementary relevance
//! `r_C(u, x, y, ζ_t)` and substitutable relevance `r_S(u, x, y, ζ_t)` are
//! personally-weighted combinations of the shared meta-graph relevance
//! scores `s(x, y | m)`, with weightings `W_meta(u, m, ζ_t)` that grow as
//! the user adopts items connected by instances of `m` (Fig. 1(c)–(d)).
//!
//! This module owns the weightings and the relevance / similarity queries;
//! the diffusion crate drives the update schedule.

use crate::metagraph::{MetaGraphId, RelationKind};
use crate::relevance::RelevanceModel;
use imdpp_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Lower bound kept on every meta-graph weighting so that no relationship
/// kind can be permanently "forgotten".
pub const MIN_WEIGHT: f64 = 0.01;

/// Per-user dynamic meta-graph weightings over a shared [`RelevanceModel`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PersonalPerception {
    #[serde(skip, default = "default_model")]
    model: Arc<RelevanceModel>,
    user_count: usize,
    /// Flat `user_count × model.len()` weight matrix.
    weights: Vec<f64>,
}

// Referenced only through the `#[serde(default = "default_model")]` attribute
// above, which the offline serde stand-in accepts but never expands.
#[allow(dead_code)]
fn default_model() -> Arc<RelevanceModel> {
    Arc::new(RelevanceModel::from_matrices(Vec::new(), Vec::new(), 0))
}

impl PersonalPerception {
    /// Creates perceptions for `user_count` users with every weighting set to
    /// `initial_weight`.
    pub fn uniform(model: Arc<RelevanceModel>, user_count: usize, initial_weight: f64) -> Self {
        assert!(
            (MIN_WEIGHT..=1.0).contains(&initial_weight),
            "initial weight must be in [{MIN_WEIGHT}, 1]"
        );
        let weights = vec![initial_weight; user_count * model.len()];
        PersonalPerception {
            model,
            user_count,
            weights,
        }
    }

    /// Creates perceptions with explicit per-user initial weightings
    /// (`initial[u]` must have one entry per meta-graph).
    pub fn from_weights(model: Arc<RelevanceModel>, initial: &[Vec<f64>]) -> Self {
        let m = model.len();
        let mut weights = Vec::with_capacity(initial.len() * m);
        for row in initial {
            assert_eq!(row.len(), m, "one weight per meta-graph is required");
            for &w in row {
                weights.push(w.clamp(MIN_WEIGHT, 1.0));
            }
        }
        PersonalPerception {
            model,
            user_count: initial.len(),
            weights,
        }
    }

    /// The shared relevance model.
    pub fn model(&self) -> &Arc<RelevanceModel> {
        &self.model
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Number of meta-graphs.
    pub fn metagraph_count(&self) -> usize {
        self.model.len()
    }

    #[inline]
    fn offset(&self, u: UserId) -> usize {
        u.index() * self.model.len()
    }

    /// The weighting `W_meta(u, m)`.
    #[inline]
    pub fn weight(&self, u: UserId, m: MetaGraphId) -> f64 {
        self.weights[self.offset(u) + m.index()]
    }

    /// Overwrites the weighting `W_meta(u, m)` (clamped to `[MIN_WEIGHT, 1]`).
    pub fn set_weight(&mut self, u: UserId, m: MetaGraphId, w: f64) {
        let off = self.offset(u);
        self.weights[off + m.index()] = w.clamp(MIN_WEIGHT, 1.0);
    }

    /// The full weight vector of a user.
    pub fn weight_vector(&self, u: UserId) -> &[f64] {
        let off = self.offset(u);
        &self.weights[off..off + self.model.len()]
    }

    /// Personal relevance of the given kind between two items in `u`'s
    /// perception: the weighting-scaled sum of the meta-graph scores,
    /// clamped into `[0, 1]`,
    ///
    /// ```text
    /// r(u, x, y) = min(1, Σ_m W(u, m) · s(x, y | m))    (m of `kind`)
    /// ```
    ///
    /// The weightings act as absolute significances (Fig. 1(c)–(d) of the
    /// paper): as a user's weighting on a meta-graph grows — or as more
    /// meta-graphs describe the relationship — the perceived relevance grows,
    /// which is exactly the behaviour the Fig. 13 sensitivity study relies
    /// on.
    pub fn relevance(&self, u: UserId, x: ItemId, y: ItemId, kind: RelationKind) -> f64 {
        if x == y {
            return 0.0;
        }
        let mut total = 0.0;
        for (idx, mg) in self.model.metagraphs().iter().enumerate() {
            if mg.kind != kind {
                continue;
            }
            let id = MetaGraphId(idx as u32);
            total += self.weight(u, id) * self.model.matrix(id).score(x, y);
        }
        total.clamp(0.0, 1.0)
    }

    /// Complementary relevance `r_C(u, x, y)`.
    #[inline]
    pub fn complementary(&self, u: UserId, x: ItemId, y: ItemId) -> f64 {
        self.relevance(u, x, y, RelationKind::Complementary)
    }

    /// Substitutable relevance `r_S(u, x, y)`.
    #[inline]
    pub fn substitutable(&self, u: UserId, x: ItemId, y: ItemId) -> f64 {
        self.relevance(u, x, y, RelationKind::Substitutable)
    }

    /// Average relevance `r̄(x, y)` of a kind over a set of users (used by
    /// TMI and DRE; over *all* users when `users` covers everyone).
    pub fn average_relevance(
        &self,
        users: impl IntoIterator<Item = UserId>,
        x: ItemId,
        y: ItemId,
        kind: RelationKind,
    ) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for u in users {
            sum += self.relevance(u, x, y, kind);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Items `y` related to `x` in `u`'s perception, with their
    /// `(complementary, substitutable)` relevances.  Only items that have a
    /// positive score under at least one meta-graph are returned.
    pub fn personal_item_network(&self, u: UserId, x: ItemId) -> Vec<(ItemId, f64, f64)> {
        self.model
            .related_items(x)
            .into_iter()
            .map(|y| (y, self.complementary(u, x, y), self.substitutable(u, x, y)))
            .filter(|(_, c, s)| *c > 0.0 || *s > 0.0)
            .collect()
    }

    /// Updates `u`'s weightings after new adoptions (the paper's *relevance
    /// measurement* factor, Sec. V-A (1)).
    ///
    /// For every meta-graph `m`, the evidence is the total relevance
    /// `s(a, b | m)` over pairs of a newly adopted item `a` and any other
    /// item `b` the user has adopted; the weighting grows by
    /// `learning_rate · evidence`, clamped into `[MIN_WEIGHT, 1]`.  This
    /// mirrors Fig. 1(d): adopting iPhone + AirPods raises the weight of the
    /// meta-graphs that connect them.
    pub fn update_on_adoption(
        &mut self,
        u: UserId,
        newly_adopted: &[ItemId],
        all_adopted: &[ItemId],
        learning_rate: f64,
    ) {
        if newly_adopted.is_empty() || self.model.is_empty() {
            return;
        }
        let m_count = self.model.len();
        let mut evidence = vec![0.0f64; m_count];
        for &a in newly_adopted {
            for &b in all_adopted {
                if a == b {
                    continue;
                }
                for (idx, e) in evidence.iter_mut().enumerate() {
                    let id = MetaGraphId(idx as u32);
                    *e += self.model.matrix(id).score(a, b);
                }
            }
        }
        let off = self.offset(u);
        for (idx, &e) in evidence.iter().enumerate() {
            if e > 0.0 {
                let w = self.weights[off + idx] + learning_rate * e;
                self.weights[off + idx] = w.clamp(MIN_WEIGHT, 1.0);
            }
        }
    }

    /// Cosine similarity of the weight vectors of two users, in `[0, 1]`.
    /// Used by the *influence learning* factor: users with similar
    /// perceptions influence each other more strongly.
    pub fn weighting_similarity(&self, u: UserId, v: UserId) -> f64 {
        let a = self.weight_vector(u);
        let b = self.weight_vector(v);
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for i in 0..a.len() {
            dot += a[i] * b[i];
            na += a[i] * a[i];
            nb += b[i] * b[i];
        }
        if na <= 0.0 || nb <= 0.0 {
            0.0
        } else {
            (dot / (na.sqrt() * nb.sqrt())).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hin::figure1_knowledge_graph;
    use crate::metagraph::MetaGraph;

    fn perception(users: usize) -> PersonalPerception {
        let model = Arc::new(RelevanceModel::compute(
            &figure1_knowledge_graph(),
            MetaGraph::default_set(),
        ));
        PersonalPerception::uniform(model, users, 0.2)
    }

    #[test]
    fn uniform_initialisation_sets_all_weights() {
        let p = perception(3);
        assert_eq!(p.user_count(), 3);
        assert_eq!(p.metagraph_count(), 5);
        for m in 0..5 {
            assert_eq!(p.weight(UserId(1), MetaGraphId(m)), 0.2);
        }
    }

    #[test]
    fn relevance_is_the_weighted_sum_of_matrix_scores() {
        let p = perception(1);
        let model = p.model().clone();
        let rc = p.complementary(UserId(0), ItemId(0), ItemId(1));
        // With uniform weights 0.2, the relevance is 0.2 · Σ_m s(x, y | m_C).
        let expected: f64 = model
            .ids_of_kind(RelationKind::Complementary)
            .into_iter()
            .map(|id| 0.2 * model.matrix(id).score(ItemId(0), ItemId(1)))
            .sum();
        assert!((rc - expected.clamp(0.0, 1.0)).abs() < 1e-12);
        // Relevance grows when the user's weightings grow.
        let mut heavier = perception(1);
        heavier.set_weight(UserId(0), MetaGraphId(0), 1.0);
        assert!(heavier.complementary(UserId(0), ItemId(0), ItemId(1)) > rc);
    }

    #[test]
    fn relevance_bounds_and_diagonal() {
        let p = perception(1);
        for x in 0..4u32 {
            for y in 0..4u32 {
                let r = p.complementary(UserId(0), ItemId(x), ItemId(y));
                assert!((0.0..=1.0).contains(&r));
                if x == y {
                    assert_eq!(r, 0.0);
                }
            }
        }
    }

    #[test]
    fn adoption_update_raises_matching_weights() {
        let mut p = perception(2);
        let before = p.weight(UserId(0), MetaGraphId(0));
        // User 0 adopts iPhone and AirPods: shared-feature and same-brand
        // meta-graphs connect them, so their weights must grow.
        p.update_on_adoption(UserId(0), &[ItemId(1)], &[ItemId(0), ItemId(1)], 0.3);
        assert!(p.weight(UserId(0), MetaGraphId(0)) > before);
        assert!(p.weight(UserId(0), MetaGraphId(1)) > before);
        // The direct-link meta-graph has no iPhone–AirPods instance: unchanged.
        assert_eq!(p.weight(UserId(0), MetaGraphId(2)), before);
        // Other users are untouched.
        assert_eq!(p.weight(UserId(1), MetaGraphId(0)), before);
    }

    #[test]
    fn adoption_update_raises_relevance_to_third_items() {
        // Fig. 1(d): after adopting iPhone and AirPods the relevance between
        // iPhone and the wireless charger grows (shared-feature weight grew).
        let mut p = perception(1);
        let before = p.complementary(UserId(0), ItemId(0), ItemId(2));
        p.update_on_adoption(UserId(0), &[ItemId(1)], &[ItemId(0), ItemId(1)], 0.5);
        let after = p.complementary(UserId(0), ItemId(0), ItemId(2));
        assert!(
            after > before,
            "relevance should grow: before {before}, after {after}"
        );
    }

    #[test]
    fn weights_are_clamped_to_one() {
        let mut p = perception(1);
        for _ in 0..100 {
            p.update_on_adoption(UserId(0), &[ItemId(1)], &[ItemId(0), ItemId(1)], 1.0);
        }
        for m in 0..p.metagraph_count() {
            assert!(p.weight(UserId(0), MetaGraphId(m as u32)) <= 1.0);
        }
    }

    #[test]
    fn empty_adoption_is_a_no_op() {
        let mut p = perception(1);
        let before: Vec<f64> = p.weight_vector(UserId(0)).to_vec();
        p.update_on_adoption(UserId(0), &[], &[ItemId(0)], 0.5);
        assert_eq!(p.weight_vector(UserId(0)), &before[..]);
    }

    #[test]
    fn weighting_similarity_is_one_for_identical_vectors() {
        let p = perception(2);
        assert!((p.weighting_similarity(UserId(0), UserId(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighting_similarity_decreases_after_divergence() {
        let mut p = perception(2);
        p.set_weight(UserId(0), MetaGraphId(0), 1.0);
        p.set_weight(UserId(1), MetaGraphId(4), 1.0);
        let s = p.weighting_similarity(UserId(0), UserId(1));
        assert!(s < 1.0 && s > 0.0);
    }

    #[test]
    fn personal_item_network_lists_related_items() {
        let p = perception(1);
        let net = p.personal_item_network(UserId(0), ItemId(0));
        let ids: Vec<ItemId> = net.iter().map(|(y, _, _)| *y).collect();
        assert_eq!(ids, vec![ItemId(1), ItemId(2), ItemId(3)]);
        for (_, c, s) in net {
            assert!((0.0..=1.0).contains(&c) && (0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn average_relevance_over_users() {
        let mut p = perception(2);
        p.update_on_adoption(UserId(0), &[ItemId(1)], &[ItemId(0), ItemId(1)], 0.5);
        let avg = p.average_relevance(
            vec![UserId(0), UserId(1)],
            ItemId(0),
            ItemId(1),
            RelationKind::Complementary,
        );
        let r0 = p.complementary(UserId(0), ItemId(0), ItemId(1));
        let r1 = p.complementary(UserId(1), ItemId(0), ItemId(1));
        assert!((avg - (r0 + r1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_weights_are_clamped_on_construction() {
        let model = Arc::new(RelevanceModel::compute(
            &figure1_knowledge_graph(),
            vec![MetaGraph::shared_feature()],
        ));
        let p = PersonalPerception::from_weights(model, &[vec![5.0], vec![0.0]]);
        assert_eq!(p.weight(UserId(0), MetaGraphId(0)), 1.0);
        assert_eq!(p.weight(UserId(1), MetaGraphId(0)), MIN_WEIGHT);
    }

    #[test]
    #[should_panic(expected = "one weight per meta-graph")]
    fn from_weights_validates_row_length() {
        let model = Arc::new(RelevanceModel::compute(
            &figure1_knowledge_graph(),
            MetaGraph::default_set(),
        ));
        let _ = PersonalPerception::from_weights(model, &[vec![0.2]]);
    }
}
