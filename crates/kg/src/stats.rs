//! Knowledge-graph statistics in the shape of Table II of the paper.

use crate::hin::KnowledgeGraph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a knowledge graph.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KgStats {
    /// Number of distinct node types present.
    pub node_type_count: usize,
    /// Total number of nodes.
    pub node_count: usize,
    /// Number of item nodes.
    pub item_count: usize,
    /// Number of distinct edge types present.
    pub edge_type_count: usize,
    /// Total number of fact edges.
    pub fact_count: usize,
    /// Average degree of item nodes.
    pub avg_item_degree: f64,
}

impl KgStats {
    /// Computes the statistics of a knowledge graph.
    pub fn of(kg: &KnowledgeGraph) -> Self {
        let node_types = kg.node_type_counts();
        let edge_types = kg.edge_type_counts();
        let item_degree_sum: usize = kg.items().map(|x| kg.degree(kg.item_node(x))).sum();
        KgStats {
            node_type_count: node_types.len(),
            node_count: kg.node_count(),
            item_count: kg.item_count(),
            edge_type_count: edge_types.len(),
            fact_count: kg.fact_count(),
            avg_item_degree: if kg.item_count() > 0 {
                item_degree_sum as f64 / kg.item_count() as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hin::figure1_knowledge_graph;

    #[test]
    fn figure1_stats() {
        let s = KgStats::of(&figure1_knowledge_graph());
        assert_eq!(s.node_type_count, 3);
        assert_eq!(s.node_count, 7);
        assert_eq!(s.item_count, 4);
        assert_eq!(s.edge_type_count, 3);
        assert_eq!(s.fact_count, 8);
        assert!(s.avg_item_degree > 0.0);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let s = KgStats::of(&crate::hin::KnowledgeGraphBuilder::new().build());
        assert_eq!(s.node_count, 0);
        assert_eq!(s.avg_item_degree, 0.0);
    }
}
