//! Machine-readable benchmark summaries.
//!
//! The acceptance benches print their measurements to stdout for humans;
//! [`BenchSummary`] additionally records the key numbers as
//! `results/bench_<name>.json` so the perf trajectory of the suite is
//! captured per run (and per PR, when CI executes the benches).  The JSON is
//! hand-rolled — the offline workspace has no `serde_json` — and the format
//! is deliberately flat:
//!
//! ```json
//! {
//!   "bench": "adaptive_pipeline",
//!   "metrics": {
//!     "tmi_monte_carlo_seconds": 0.032,
//!     "tmi_rr_sketch_seconds": 0.009
//!   }
//! }
//! ```

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// A named collection of scalar benchmark metrics, written as
/// `bench_<name>.json` into the results directory.
#[derive(Clone, Debug)]
pub struct BenchSummary {
    name: String,
    metrics: Vec<(String, f64)>,
}

impl BenchSummary {
    /// Starts a summary for the bench called `name` (lowercase identifier,
    /// e.g. `"adaptive_pipeline"`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchSummary {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// Records one scalar metric (insertion order is preserved; re-using a
    /// key records a second entry rather than overwriting).
    pub fn record(&mut self, metric: impl Into<String>, value: f64) -> &mut Self {
        self.metrics.push((metric.into(), value));
        self
    }

    /// Records the process's peak resident set size (`VmHWM`) as a
    /// `peak_rss_bytes` metric.  A no-op on platforms without
    /// `/proc/self/status` (see [`imdpp_obs::peak_rss_bytes`]), so summaries
    /// stay comparable across OSes rather than carrying a `null`.
    pub fn record_peak_rss(&mut self) -> &mut Self {
        if let Some(bytes) = imdpp_obs::peak_rss_bytes() {
            self.record("peak_rss_bytes", bytes as f64);
        }
        self
    }

    /// Number of recorded metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The summary as a JSON document (non-finite values become `null`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"metrics\": {");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            if value.is_finite() {
                out.push_str(&format!("\"{}\": {value}", escape(key)));
            } else {
                out.push_str(&format!("\"{}\": null", escape(key)));
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The directory summaries are written to: `IMDPP_BENCH_OUT` when set,
    /// the workspace-root `results/` directory otherwise (cargo runs bench
    /// binaries with the *package* directory as cwd, so a relative
    /// `results/` would scatter files across `crates/*/results`).
    pub fn out_dir() -> PathBuf {
        if let Ok(dir) = std::env::var("IMDPP_BENCH_OUT") {
            return PathBuf::from(dir);
        }
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
    }

    /// Writes `bench_<name>.json` into [`BenchSummary::out_dir`], creating
    /// the directory if needed.  Returns the path written to.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Self::out_dir();
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("bench_{}.json", self.name));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// Escapes the characters JSON string literals cannot carry raw.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_ordered() {
        let mut s = BenchSummary::new("demo");
        s.record("alpha_seconds", 0.5).record("beta_count", 3.0);
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"alpha_seconds\": 0.5"));
        assert!(json.contains("\"beta_count\": 3"));
        assert!(json.find("alpha_seconds").unwrap() < json.find("beta_count").unwrap());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_recorded_on_linux() {
        let mut s = BenchSummary::new("demo");
        s.record_peak_rss();
        assert_eq!(s.len(), 1);
        // Any real process has touched at least a megabyte by now.
        let json = s.to_json();
        assert!(json.contains("\"peak_rss_bytes\": "));
        assert!(!json.contains("\"peak_rss_bytes\": null"));
    }

    #[test]
    fn non_finite_values_become_null() {
        let mut s = BenchSummary::new("demo");
        s.record("nan", f64::NAN);
        assert!(s.to_json().contains("\"nan\": null"));
    }

    #[test]
    fn escape_handles_quotes_and_newlines() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn write_creates_the_json_file() {
        let dir = std::env::temp_dir().join("imdpp-bench-summary-test");
        // Scope the env override to this test's write via a direct path
        // check: write into a temp results dir by temporarily setting the
        // variable is racy across threads, so just exercise to_json + a
        // manual write here.
        std::fs::create_dir_all(&dir).unwrap();
        let mut s = BenchSummary::new("unit_test");
        s.record("value", 1.25);
        let path = dir.join("bench_unit_test.json");
        std::fs::write(&path, s.to_json()).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("\"value\": 1.25"));
        std::fs::remove_file(path).ok();
    }
}
