//! # imdpp-bench
//!
//! Shared fixtures for the Criterion benchmarks.  The benches themselves live
//! in `benches/` and cover, per DESIGN.md §5:
//!
//! * `graph_ops` — CSR construction, BFS, maximum-influence paths (substrate
//!   costs),
//! * `relevance` — meta-graph instance counting and personal-relevance
//!   queries,
//! * `diffusion` — single simulations and Monte-Carlo estimation (the `M`
//!   sensitivity of footnote 12),
//! * `nominee_selection` — CELF-lazy vs plain greedy MCP selection,
//! * `dysim_vs_baselines` — end-to-end selection time of Dysim and the
//!   baselines (the relative comparison behind Figs. 9(d), 9(g), 9(h)),
//! * `tdsi_window` — restricted two-slot timing search vs the full search,
//! * `sketch_oracle` / `adaptive_pipeline` / `engine_concurrency` — the
//!   acceptance benches; each also writes a machine-readable
//!   `results/bench_<name>.json` via [`summary::BenchSummary`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod summary;

use imdpp_core::{CostModel, ImdppInstance};
use imdpp_datasets::{generate, DatasetKind};
use imdpp_diffusion::scenario::toy_scenario;

pub use summary::BenchSummary;

/// A small fully-wired instance (6 users, 4 items) for micro-benchmarks.
pub fn toy_instance(budget: f64, promotions: u32) -> ImdppInstance {
    let scenario = toy_scenario();
    let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
    ImdppInstance::new(scenario, costs, budget, promotions).expect("valid toy instance")
}

/// The 100-user Amazon-shaped instance used by the selection benchmarks.
pub fn tiny_amazon_instance(budget: f64, promotions: u32) -> ImdppInstance {
    generate(&DatasetKind::AmazonTiny.config())
        .instance
        .with_budget(budget)
        .with_promotions(promotions)
}

/// A medium synthetic Yelp-shaped instance for diffusion benchmarks
/// (`scale` shrinks the preset; 0.25 ≈ 200 users).
pub fn yelp_instance(scale: f64, budget: f64, promotions: u32) -> ImdppInstance {
    generate(&DatasetKind::YelpSmall.config().scaled(scale))
        .instance
        .with_budget(budget)
        .with_promotions(promotions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        assert_eq!(toy_instance(2.0, 2).promotions(), 2);
        assert_eq!(tiny_amazon_instance(100.0, 2).scenario().user_count(), 100);
        assert!(yelp_instance(0.1, 100.0, 2).scenario().user_count() >= 20);
    }
}
