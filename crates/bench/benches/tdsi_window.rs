//! DESIGN.md §5.3: the restricted two-slot timing window of TDSI vs the full
//! `[t̂, T]` search.

use criterion::{criterion_group, criterion_main, Criterion};
use imdpp_bench::tiny_amazon_instance;
use imdpp_core::eval::Evaluator;
use imdpp_core::market::TargetMarket;
use imdpp_core::tdsi::assign_timings;
use imdpp_diffusion::SeedGroup;
use imdpp_graph::{ItemId, UserId};

fn bench_tdsi(c: &mut Criterion) {
    let instance = tiny_amazon_instance(150.0, 8);
    let users: Vec<UserId> = instance.scenario().users().collect();
    let market = TargetMarket {
        index: 0,
        nominees: vec![
            (UserId(0), ItemId(0)),
            (UserId(1), ItemId(1)),
            (UserId(2), ItemId(2)),
        ],
        users,
        diameter: 4,
    };
    let pending = market.nominees.clone();

    let mut group = c.benchmark_group("tdsi_timing_search");
    group.sample_size(10);
    group.bench_function("two_slot_window", |b| {
        b.iter(|| {
            let evaluator = Evaluator::new(&instance, 8, 5);
            let mut sg = SeedGroup::new();
            assign_timings(&evaluator, &market, pending.clone(), &mut sg, 8, 8, false).len()
        })
    });
    group.bench_function("full_horizon_search", |b| {
        b.iter(|| {
            let evaluator = Evaluator::new(&instance, 8, 5);
            let mut sg = SeedGroup::new();
            assign_timings(&evaluator, &market, pending.clone(), &mut sg, 8, 8, true).len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tdsi);
criterion_main!(benches);
