//! DESIGN.md §5.1: CELF-style lazy MCP nominee selection vs the plain greedy.

use criterion::{criterion_group, criterion_main, Criterion};
use imdpp_bench::tiny_amazon_instance;
use imdpp_core::eval::Evaluator;
use imdpp_core::nominees::{select_nominees, select_nominees_plain_greedy, NomineeSelectionConfig};

fn bench_nominee_selection(c: &mut Criterion) {
    let instance = tiny_amazon_instance(100.0, 2);
    let universe = instance.nominee_universe(Some(24));
    let config = NomineeSelectionConfig {
        max_nominees: Some(4),
        ..Default::default()
    };

    let mut group = c.benchmark_group("nominee_selection");
    group.sample_size(10);
    group.bench_function("celf_lazy", |b| {
        b.iter(|| {
            let evaluator = Evaluator::new(&instance, 8, 1);
            select_nominees(&evaluator, &universe, &config)
                .nominees
                .len()
        })
    });
    group.bench_function("plain_greedy", |b| {
        b.iter(|| {
            let evaluator = Evaluator::new(&instance, 8, 1);
            select_nominees_plain_greedy(&evaluator, &universe, &config)
                .nominees
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nominee_selection);
criterion_main!(benches);
