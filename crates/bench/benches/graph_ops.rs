//! Substrate benchmarks: CSR construction, BFS, maximum-influence paths and
//! MIOA regions on a preferential-attachment graph.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imdpp_graph::generators::{preferential_attachment, weighted_cascade_strengths};
use imdpp_graph::paths::{max_influence_paths, mioa_region, subset_hop_diameter};
use imdpp_graph::traversal::bfs;
use imdpp_graph::UserId;

fn bench_graph_ops(c: &mut Criterion) {
    let raw = preferential_attachment(2_000, 5, 42);
    let graph = weighted_cascade_strengths(&raw, 1.0, 0.2, 7);
    let edges = graph.to_edge_list();

    c.bench_function("csr_from_edges_2k_nodes", |b| {
        b.iter(|| imdpp_graph::CsrGraph::from_edges(black_box(2_000), black_box(&edges)))
    });

    c.bench_function("bfs_full_2k_nodes", |b| {
        b.iter(|| bfs(black_box(&graph), &[UserId(0)], None).reachable_count())
    });

    c.bench_function("max_influence_paths_2k_nodes", |b| {
        b.iter(|| max_influence_paths(black_box(&graph), &[UserId(0)]).probability(UserId(1_999)))
    });

    c.bench_function("mioa_region_threshold_0.05", |b| {
        b.iter(|| mioa_region(black_box(&graph), &[UserId(0), UserId(1)], 0.05).len())
    });

    let subset: Vec<UserId> = (0..200).map(UserId).collect();
    c.bench_function("subset_hop_diameter_200_nodes", |b| {
        b.iter(|| subset_hop_diameter(black_box(&graph), black_box(&subset)))
    });
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
