//! Diffusion benchmarks: single stochastic campaigns and Monte-Carlo
//! estimation at different sample counts (the accuracy/time trade-off behind
//! the paper's `M = 100` choice).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use imdpp_bench::yelp_instance;
use imdpp_diffusion::{simulate, Seed, SeedGroup, SpreadEstimator};
use imdpp_graph::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_diffusion(c: &mut Criterion) {
    let instance = yelp_instance(0.25, 200.0, 5);
    let scenario = instance.scenario();
    let seeds = SeedGroup::from_seeds(vec![
        Seed::new(UserId(0), ItemId(0), 1),
        Seed::new(UserId(1), ItemId(1), 2),
        Seed::new(UserId(2), ItemId(2), 3),
    ]);

    c.bench_function("simulate_single_campaign_T5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            simulate(black_box(scenario), black_box(&seeds), 5, &mut rng).adoption_count()
        })
    });

    let frozen = scenario.with_dynamics(imdpp_diffusion::DynamicsConfig::frozen());
    c.bench_function("simulate_single_campaign_T5_frozen_dynamics", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            simulate(black_box(&frozen), black_box(&seeds), 5, &mut rng).adoption_count()
        })
    });

    let mut group = c.benchmark_group("monte_carlo_samples");
    group.sample_size(10);
    for samples in [10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &m| {
            b.iter(|| {
                SpreadEstimator::new(scenario, m, 3)
                    .with_threads(1)
                    .mean_spread(&seeds, 5)
            })
        });
    }
    group.finish();

    let mut parallel = c.benchmark_group("monte_carlo_parallel");
    parallel.sample_size(10);
    parallel.bench_function("100_samples_all_threads", |b| {
        b.iter(|| SpreadEstimator::new(scenario, 100, 3).mean_spread(&seeds, 5))
    });
    parallel.finish();
}

criterion_group!(benches, bench_diffusion);
criterion_main!(benches);
