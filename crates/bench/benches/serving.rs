//! Serving-tier benchmark: the three production axes the tier is built
//! around, measured together on the yelp-scale preset —
//!
//! * **tenants** — copy-on-write overlay construction cost and footprint
//!   for 1 / 4 / 16 tenants on one shared base engine (the O(deltas)
//!   memory story, reported in bytes against the base arena),
//! * **readers** — batched spread throughput with 1 and 4 reader threads,
//! * **writer churn** — each reader axis measured both against a quiet
//!   engine and against one whose writer keeps landing localized edge
//!   updates (the serving regime: coalesced reads racing an incremental
//!   writer).
//!
//! Plus the warm-restart path: persist / restore wall-clock and a check
//! that the restored engine resampled nothing.  Key measurements are
//! written to `results/bench_serving.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use imdpp_bench::{yelp_instance, BenchSummary};
use imdpp_core::nominees::Nominee;
use imdpp_core::{DysimConfig, EdgeUpdate, OracleKind, ScenarioUpdate};
use imdpp_engine::Engine;
use imdpp_graph::{ItemId, UserId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SETS_PER_ITEM: usize = 1024;
const BATCH: usize = 32;
const MEASURE_WINDOW: Duration = Duration::from_millis(300);

fn build_engine() -> Engine {
    let instance = yelp_instance(0.25, 120.0, 3);
    Engine::for_instance(&instance)
        .config(DysimConfig {
            mc_samples: 8,
            candidate_users: Some(32),
            max_nominees: Some(6),
            ..DysimConfig::default()
        })
        .oracle(OracleKind::RrSketch {
            sets_per_item: SETS_PER_ITEM,
            shards: 2,
            threads: 0,
        })
        .build()
        .expect("yelp instance is valid")
}

/// 32 varied queries: rotations of prefixes of an 8-nominee pool (see the
/// amortization gate in `engine_concurrency.rs` for the rationale).
fn batch_queries(engine: &Engine, nominees: &[Nominee]) -> Vec<Vec<Nominee>> {
    let items = engine.snapshot().scenario().item_count() as u32;
    let mut pool = nominees.to_vec();
    let mut u = 0u32;
    while pool.len() < 8 {
        pool.push((UserId(u), ItemId(u % items)));
        u += 1;
    }
    pool.truncate(8);
    let mut queries = Vec::new();
    'fill: for len in 1..=pool.len() {
        for rot in 0..len {
            let mut q = pool[..len].to_vec();
            q.rotate_left(rot);
            queries.push(q);
            if queries.len() == BATCH {
                break 'fill;
            }
        }
    }
    queries
}

/// The fixed edge the churn writer keeps reweighting (never a no-op:
/// strength alternates per step).
fn writer_edge(engine: &Engine) -> (UserId, UserId) {
    let snapshot = engine.snapshot();
    let scenario = snapshot.scenario();
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");
    let (src, _) = scenario
        .social()
        .influencers_of(quiet)
        .next()
        .expect("yelp preset users have friends");
    (src, quiet)
}

fn writer_update(edge: (UserId, UserId), step: usize) -> ScenarioUpdate {
    let weight = if step.is_multiple_of(2) { 0.35 } else { 0.65 };
    let up = EdgeUpdate::Reweight {
        src: edge.0,
        dst: edge.1,
        weight,
    };
    ScenarioUpdate::Edges(vec![up, up.mirrored()])
}

/// Batched-read throughput with `readers` threads, optionally against a
/// live writer.  Returns (queries answered per second, writer updates).
fn batch_qps_under_churn(
    engine: &Arc<Engine>,
    queries: &[Vec<Nominee>],
    readers: usize,
    churn: bool,
) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..readers {
        let engine = Arc::clone(engine);
        let queries = queries.to_vec();
        let stop = Arc::clone(&stop);
        // lint: allow(spawn) — bench harness readers measuring the serving
        // tier under contention; no engine work is scheduled here.
        handles.push(std::thread::spawn(move || {
            let refs: Vec<&[Nominee]> = queries.iter().map(Vec::as_slice).collect();
            let mut answered = 0u64;
            // lint: allow(atomic-ordering) — advisory stop flag; a stale
            // read only extends the window by one batch.
            while !stop.load(Ordering::Relaxed) {
                let values = engine.static_spread_batch(&refs);
                assert_eq!(values.len(), refs.len());
                answered += refs.len() as u64;
            }
            answered
        }));
    }

    let edge = writer_edge(engine);
    let start = Instant::now();
    let mut updates = 0u64;
    while start.elapsed() < MEASURE_WINDOW {
        if churn {
            let report = engine
                .apply(&writer_update(edge, updates as usize))
                .expect("in-range update");
            assert!(!report.was_empty);
            updates += 1;
        } else {
            std::thread::yield_now();
        }
    }
    // lint: allow(atomic-ordering) — advisory stop flag; join() below is
    // the real synchronisation point.
    stop.store(true, Ordering::Relaxed);
    let answered: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (answered as f64 / MEASURE_WINDOW.as_secs_f64(), updates)
}

fn bench_serving(c: &mut Criterion) {
    let mut summary = BenchSummary::new("serving");
    let engine = Arc::new(build_engine());
    let seeds = engine.solve();
    let nominees: Vec<Nominee> = seeds.seeds().iter().map(|s| (s.user, s.item)).collect();
    let queries = batch_queries(&engine, &nominees);
    println!(
        "serving tier on the yelp-scale preset: {} users, {} RR sets",
        engine.snapshot().scenario().user_count(),
        SETS_PER_ITEM * engine.snapshot().scenario().item_count(),
    );

    // --- Tenant axis: overlay construction cost and footprint. -----------
    let base_arena = engine
        .snapshot()
        .oracle()
        .as_sketch()
        .expect("sketch-backed engine")
        .live_arena_bytes();
    summary.record("base_arena_bytes", base_arena as f64);
    let users = engine.snapshot().scenario().user_count() as u32;
    let items = engine.snapshot().scenario().item_count() as u32;
    for tenants in [1usize, 4, 16] {
        let start = Instant::now();
        let mut overlay_bytes = 0u64;
        let mut probe = 0.0f64;
        for t in 0..tenants {
            let deltas = [
                (
                    UserId((t as u32 * 5) % users),
                    ItemId(t as u32 % items),
                    0.8,
                ),
                (
                    UserId((t as u32 * 7 + 1) % users),
                    ItemId((t as u32 + 1) % items),
                    0.1,
                ),
            ];
            let tenant = engine.tenant(&deltas).expect("in-range deltas");
            overlay_bytes += tenant.overlay_bytes();
            probe += tenant.static_spread(&nominees);
        }
        let seconds = start.elapsed().as_secs_f64();
        assert!(probe.is_finite() && probe >= 0.0);
        println!(
            "{tenants} tenant overlay(s): {overlay_bytes} B total \
             (base arena {base_arena} B) built+queried in {seconds:.3}s"
        );
        summary.record(
            format!("tenants_{tenants}_overlay_bytes"),
            overlay_bytes as f64,
        );
        summary.record(format!("tenants_{tenants}_build_seconds"), seconds);
    }

    // --- Readers × writer-churn axes: batched reads against the store. ---
    for readers in [1usize, 4] {
        for churn in [false, true] {
            let (qps, updates) = batch_qps_under_churn(&engine, &queries, readers, churn);
            let label = if churn { "churn" } else { "quiet" };
            println!(
                "{readers} reader(s), {label} writer: {qps:.0} batched queries/s \
                 alongside {updates} updates"
            );
            summary.record(format!("readers_{readers}_{label}_queries_per_second"), qps);
            summary.record(
                format!("readers_{readers}_{label}_writer_updates"),
                updates as f64,
            );
        }
    }

    // --- Warm restart: persist / restore wall-clock, zero resampling. ----
    let path = BenchSummary::out_dir().join("bench_serving_engine.bin");
    let start = Instant::now();
    engine.persist(&path).expect("persist succeeds");
    let persist_seconds = start.elapsed().as_secs_f64();
    let image_bytes = std::fs::metadata(&path).expect("image written").len();
    // The caller supplies the (drifted) world on restore — the image holds
    // sketch + epoch + solution, not the scenario.
    let current = engine.snapshot();
    let start = Instant::now();
    let restored = Engine::for_instance(current.instance())
        .config(DysimConfig {
            mc_samples: 8,
            candidate_users: Some(32),
            max_nominees: Some(6),
            ..DysimConfig::default()
        })
        .oracle(OracleKind::RrSketch {
            sets_per_item: SETS_PER_ITEM,
            shards: 2,
            threads: 0,
        })
        .restore(&path)
        .expect("restore succeeds");
    let restore_seconds = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        restored.telemetry().counter("sketch.sets_sampled"),
        Some(0),
        "warm restart must not resample"
    );
    assert_eq!(restored.epoch(), engine.epoch());
    println!(
        "warm restart: persisted {image_bytes} B in {persist_seconds:.3}s, \
         restored in {restore_seconds:.3}s with zero RR sets resampled"
    );
    summary.record("persist_seconds", persist_seconds);
    summary.record("restore_seconds", restore_seconds);
    summary.record("image_bytes", image_bytes as f64);

    // Criterion timing of the two serving primitives for the record.
    let refs: Vec<&[Nominee]> = queries.iter().map(Vec::as_slice).collect();
    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.bench_function("batch_32_static_spread", |b| {
        b.iter(|| engine.static_spread_batch(&refs))
    });
    let deltas = [(UserId(0), ItemId(0), 0.8)];
    group.bench_function("tenant_overlay_build", |b| {
        b.iter(|| {
            engine
                .tenant(&deltas)
                .expect("in-range deltas")
                .overlay_bytes()
        })
    });
    group.finish();

    summary.record_peak_rss();
    match summary.write() {
        Ok(path) => println!("bench summary written to {}", path.display()),
        Err(e) => eprintln!("could not write bench summary: {e}"),
    }
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
