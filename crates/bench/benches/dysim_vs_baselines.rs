//! End-to-end selection time of Dysim and the baselines on the 100-user
//! Amazon-shaped instance — the relative comparison behind the execution-time
//! figures (9(d), 9(g), 9(h)).  Absolute times differ from the paper's
//! HP DL580 numbers; the ordering (PS fast, HAG slow, Dysim competitive) is
//! the reproduced signal.

use criterion::{criterion_group, criterion_main, Criterion};
use imdpp_baselines::{Algorithm, BaselineConfig, Bgrd, Drhga, Hag, PathScore};
use imdpp_bench::tiny_amazon_instance;
use imdpp_core::DysimConfig;
use imdpp_engine::Engine;

fn bench_algorithms(c: &mut Criterion) {
    let instance = tiny_amazon_instance(100.0, 3);
    let dysim_config = DysimConfig {
        mc_samples: 8,
        candidate_users: Some(16),
        ..DysimConfig::default()
    };
    let baseline_config = BaselineConfig {
        mc_samples: 8,
        candidate_users: Some(16),
        ..BaselineConfig::default()
    };

    let mut group = c.benchmark_group("selection_time_amazon_tiny");
    group.sample_size(10);
    // Built once outside the timed closure: the baselines iterate on
    // `&instance` directly, so the comparison must not charge Dysim for
    // per-iteration session setup (amortized once per session in practice).
    let engine = Engine::for_instance(&instance)
        .config(dysim_config.clone())
        .build()
        .expect("valid engine");
    group.bench_function("Dysim", |b| b.iter(|| engine.solve().len()));
    group.bench_function("BGRD", |b| {
        b.iter(|| Bgrd::new(baseline_config).select(&instance).len())
    });
    group.bench_function("HAG", |b| {
        b.iter(|| Hag::new(baseline_config).select(&instance).len())
    });
    group.bench_function("PS", |b| {
        b.iter(|| PathScore::new(baseline_config).select(&instance).len())
    });
    group.bench_function("DRHGA", |b| {
        b.iter(|| Drhga::new(baseline_config).select(&instance).len())
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
