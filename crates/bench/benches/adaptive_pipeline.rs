//! End-to-end benchmark and acceptance checks of the sketch-backed Dysim
//! pipeline on the Yelp-scale preset:
//!
//! * nominee-selection (TMI) time of the config-driven run with the
//!   Monte-Carlo estimator vs the RR-sketch oracle (including sketch
//!   construction) — reports the measured selection speedup,
//! * per-round sketch refresh in the `imdpp-engine` adaptive loop under a
//!   localized edge update — asserts fewer than 50% of the RR sets are
//!   re-sampled each round (the sample-reuse guarantee extended to edge
//!   updates) and reports the measured fractions,
//! * incremental edge-update refresh vs a full rebuild of the sketch.
//!
//! Key measurements are also written to `results/bench_adaptive_pipeline.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imdpp_bench::{yelp_instance, BenchSummary};
use imdpp_core::nominees::{select_nominees_with_oracle, NomineeSelectionConfig};
use imdpp_core::{DysimConfig, EdgeUpdate, Evaluator, ImdppInstance, OracleKind, ScenarioUpdate};
use imdpp_engine::Engine;
use imdpp_sketch::{SketchConfig, SketchOracle};
use std::time::Instant;

const SETS_PER_ITEM: usize = 2048;

fn instance() -> ImdppInstance {
    // ~200 users, Yelp-shaped KG and strengths, a 3-promotion campaign.
    yelp_instance(0.25, 120.0, 3)
}

/// A localized edge update near the least-connected user: reweight one
/// incoming influence edge (both directions — the Yelp preset's friendships
/// are undirected, so the two directed edges move together).
fn localized_edge_update(instance: &ImdppInstance, bump: f64) -> Vec<EdgeUpdate> {
    let scenario = instance.scenario();
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");
    let (v, w) = scenario
        .social()
        .influencers_of(quiet)
        .next()
        .expect("yelp preset users have friends");
    let up = EdgeUpdate::Reweight {
        src: v,
        dst: quiet,
        weight: (w + bump).min(1.0),
    };
    vec![up, up.mirrored()]
}

fn bench_adaptive_pipeline(c: &mut Criterion) {
    let mut summary = BenchSummary::new("adaptive_pipeline");
    let instance = instance();
    let scenario = instance.scenario();
    println!(
        "yelp-scale preset: {} users, {} items, {} influence edges",
        scenario.user_count(),
        scenario.item_count(),
        scenario.social().edge_count()
    );

    // `mc_samples: 30` is the suite's default estimator budget (the paper
    // uses M = 100); the sketch must win against a realistic configuration,
    // not a deliberately starved one.
    let config = DysimConfig {
        candidate_users: Some(32),
        max_nominees: Some(6),
        ..DysimConfig::default()
    };
    let selection_config = NomineeSelectionConfig {
        max_nominees: config.max_nominees,
        stop_on_nonpositive_gain: true,
    };
    let universe = instance.nominee_universe(config.candidate_users);

    // --- Selection speedup: the same TMI stage, estimators swapped. -------
    let mc_start = Instant::now();
    let evaluator = Evaluator::new(&instance, config.mc_samples, config.base_seed);
    let mc_selection =
        select_nominees_with_oracle(&instance, &evaluator, &universe, &selection_config);
    let mc_time = mc_start.elapsed();

    let sketch_start = Instant::now();
    let sketch = SketchOracle::build(
        scenario,
        SketchConfig::fixed(SETS_PER_ITEM).with_base_seed(config.base_seed),
    );
    let sketch_selection =
        select_nominees_with_oracle(&instance, &sketch, &universe, &selection_config);
    let sketch_time = sketch_start.elapsed();

    assert!(!mc_selection.nominees.is_empty() && !sketch_selection.nominees.is_empty());
    let speedup = mc_time.as_secs_f64() / sketch_time.as_secs_f64().max(1e-9);
    summary.record("tmi_monte_carlo_seconds", mc_time.as_secs_f64());
    summary.record(
        "tmi_rr_sketch_incl_build_seconds",
        sketch_time.as_secs_f64(),
    );
    summary.record("tmi_selection_speedup", speedup);
    println!(
        "TMI nominee selection ({} candidates): monte-carlo {:.3}s ({} evals) vs \
         rr-sketch {:.3}s incl. build ({} evals) — {speedup:.1}x speedup",
        universe.len(),
        mc_time.as_secs_f64(),
        mc_selection.evaluations,
        sketch_time.as_secs_f64(),
        sketch_selection.evaluations,
    );
    // Timing is reported but deliberately not hard-asserted: wall-clock on a
    // loaded CI runner is nondeterministic, and the CI gates of this bench
    // are the deterministic quantities below (resample fraction per round,
    // refresh == rebuild).  A measured slowdown is still surfaced loudly.
    if speedup <= 1.0 {
        eprintln!(
            "WARNING: sketch-backed selection (incl. build) did not beat Monte-Carlo \
             selection on this run: {:.3}s vs {:.3}s",
            sketch_time.as_secs_f64(),
            mc_time.as_secs_f64()
        );
    }

    // --- Adaptive loop: per-round refresh on localized edge updates. ------
    let drift: Vec<ScenarioUpdate> = vec![
        ScenarioUpdate::Edges(localized_edge_update(&instance, 0.10)),
        ScenarioUpdate::Edges(localized_edge_update(&instance, 0.17)),
    ];
    let sketched_config = config.clone().with_oracle(OracleKind::RrSketch {
        sets_per_item: SETS_PER_ITEM,
        shards: 1,
        threads: 0,
    });
    let engine = Engine::for_instance(&instance)
        .config(sketched_config.clone())
        .build()
        .expect("yelp instance is valid");
    let report = engine.adaptive(instance.promotions(), &drift);
    assert!(instance.is_feasible(&report.seeds));
    assert_eq!(report.refresh_fractions.len(), drift.len());
    // `IMDPP_METRICS=<path>`: dump the engine's telemetry snapshot (counters,
    // gauges, latency histograms) accumulated by the adaptive run above.
    if let Some(path) = imdpp_obs::metrics_env_path() {
        match engine.telemetry().write_to(&path) {
            Ok(()) => println!("telemetry snapshot written to {}", path.display()),
            Err(e) => eprintln!("IMDPP_METRICS: failed to write {}: {e}", path.display()),
        }
    }
    for (round, &fraction) in report.refresh_fractions.iter().enumerate() {
        println!(
            "adaptive round {}: refreshed {:.2}% of RR sets (reused {:.2}%)",
            round + 2,
            100.0 * fraction,
            100.0 * (1.0 - fraction),
        );
        summary.record(
            format!("adaptive_round_{}_refresh_fraction", round + 2),
            fraction,
        );
        assert!(
            fraction < 0.5,
            "localized edge update must re-sample < 50% of RR sets per round, got {:.2}%",
            100.0 * fraction
        );
    }

    // --- Maintained solutions: repaired solve vs fresh greedy per batch. ---
    // Two identical engines drift through the same localized churn; one
    // maintains its solution across applies (the default), the other
    // re-solves from scratch every batch.  The gates are deterministic
    // *and* temporal: no batch may invalidate the maintained solution
    // (`full_resolves == 0` — localized churn is the regime maintenance
    // exists for), and serving the maintained solution must be at least 3x
    // faster than the fresh pipeline in aggregate (lookup vs full solve, so
    // the real margin is orders of magnitude; 3x absorbs CI noise).
    let maintained_engine = Engine::for_instance(&instance)
        .config(sketched_config.clone())
        .build()
        .expect("yelp instance is valid");
    let fresh_engine = Engine::for_instance(&instance)
        .config(sketched_config.clone())
        .maintain_bound(None)
        .build()
        .expect("yelp instance is valid");
    let _ = maintained_engine.solve();
    let _ = fresh_engine.solve();
    let maintained_churn: Vec<ScenarioUpdate> = [0.02, 0.05, 0.08, 0.11, 0.14, 0.18]
        .iter()
        .map(|&bump| ScenarioUpdate::Edges(localized_edge_update(&instance, bump)))
        .collect();
    let mut maintained_solve_total = 0.0f64;
    let mut fresh_solve_total = 0.0f64;
    let mut full_resolves = 0u64;
    let mut retained_total = 0usize;
    let mut repaired_total = 0usize;
    for update in &maintained_churn {
        let applied = maintained_engine
            .apply(update)
            .expect("in-range localized update");
        let fresh_applied = fresh_engine
            .apply(update)
            .expect("in-range localized update");
        assert_eq!(
            fresh_applied.epoch, applied.epoch,
            "both engines must march through the same epochs"
        );
        full_resolves += applied.solve_repair.full_resolves;
        retained_total += applied.solve_repair.seeds_retained;
        repaired_total += applied.solve_repair.positions_repaired;
        let t = Instant::now();
        let served = maintained_engine.solve_report();
        maintained_solve_total += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let reference = fresh_engine.solve_report();
        fresh_solve_total += t.elapsed().as_secs_f64();
        assert!(!served.nominees.is_empty() && !reference.nominees.is_empty());
    }
    let maintained_speedup = fresh_solve_total / maintained_solve_total.max(1e-9);
    summary.record("maintained_solve_total_seconds", maintained_solve_total);
    summary.record("fresh_solve_total_seconds", fresh_solve_total);
    summary.record("maintained_solve_speedup", maintained_speedup);
    summary.record("maintained_full_resolves", full_resolves as f64);
    summary.record("maintained_seeds_retained_total", retained_total as f64);
    summary.record("maintained_positions_repaired_total", repaired_total as f64);
    println!(
        "maintained solve over {} localized batches: served {:.3}ms vs fresh \
         {:.3}ms ({maintained_speedup:.0}x), {retained_total} seeds retained, \
         {repaired_total} positions repaired, {full_resolves} full resolves",
        maintained_churn.len(),
        1e3 * maintained_solve_total,
        1e3 * fresh_solve_total,
    );
    assert_eq!(
        full_resolves, 0,
        "localized churn invalidated the maintained solution"
    );
    assert!(
        maintained_speedup >= 3.0,
        "maintained solve must be >= 3x faster than fresh greedy under \
         localized churn, got {maintained_speedup:.1}x ({:.3}ms vs {:.3}ms)",
        1e3 * maintained_solve_total,
        1e3 * fresh_solve_total,
    );

    // --- Criterion timings. ------------------------------------------------
    let mut group = c.benchmark_group("yelp_selection");
    group.sample_size(10);
    group.bench_function("tmi_monte_carlo", |b| {
        b.iter(|| {
            select_nominees_with_oracle(
                black_box(&instance),
                &evaluator,
                &universe,
                &selection_config,
            )
            .nominees
            .len()
        })
    });
    group.bench_function("tmi_rr_sketch_incl_build", |b| {
        b.iter(|| {
            let oracle = SketchOracle::build(
                black_box(scenario),
                SketchConfig::fixed(SETS_PER_ITEM).with_base_seed(config.base_seed),
            );
            select_nominees_with_oracle(&instance, &oracle, &universe, &selection_config)
                .nominees
                .len()
        })
    });
    group.finish();

    let updates = localized_edge_update(&instance, 0.1);
    let drifted = scenario.with_edge_updates(&updates);
    let mut refresh = c.benchmark_group("yelp_edge_update_refresh");
    refresh.sample_size(10);
    refresh.bench_function("incremental_reuse", |b| {
        b.iter(|| {
            let mut o = sketch.clone();
            o.apply_edge_update(black_box(&drifted), &updates)
                .resampled_sets
        })
    });
    refresh.bench_function("full_rebuild", |b| {
        b.iter(|| {
            SketchOracle::build(
                black_box(&drifted),
                SketchConfig::fixed(SETS_PER_ITEM).with_base_seed(config.base_seed),
            )
            .total_sets()
        })
    });
    refresh.finish();

    // Exactness spot-check at bench scale: refresh equals rebuild (timed
    // once each for the machine-readable summary).
    let t = Instant::now();
    let mut refreshed = sketch.clone();
    let refresh_stats = refreshed.apply_edge_update(&drifted, &updates);
    summary.record(
        "edge_refresh_incremental_seconds",
        t.elapsed().as_secs_f64(),
    );
    summary.record(
        "edge_refresh_resampled_fraction",
        refresh_stats.resampled_fraction(),
    );
    let t = Instant::now();
    let rebuilt = SketchOracle::build(
        &drifted,
        SketchConfig::fixed(SETS_PER_ITEM).with_base_seed(config.base_seed),
    );
    summary.record(
        "edge_refresh_full_rebuild_seconds",
        t.elapsed().as_secs_f64(),
    );
    assert!(
        refreshed.stores_equal(&rebuilt),
        "refresh must equal rebuild at bench scale"
    );

    // --- Sharded refresh: identical result, no slower than the flat store,
    // --- measured across a threads axis (1 vs 4) on the sharded variant. --
    const REFRESH_SHARDS: usize = 4;
    summary.record("refresh_shard_count", REFRESH_SHARDS as f64);
    let sharded_with_threads = |threads: usize| {
        SketchOracle::build(
            scenario,
            SketchConfig::fixed(SETS_PER_ITEM)
                .with_base_seed(config.base_seed)
                .with_shards(REFRESH_SHARDS)
                .with_threads(threads),
        )
    };
    let best_of = |oracle: &SketchOracle| -> (f64, SketchOracle) {
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..7 {
            let mut o = oracle.clone();
            let t = Instant::now();
            let stats = o.apply_edge_update(&drifted, &updates);
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(stats.full_rebuilds, 0, "refresh must patch, not rebuild");
            result = Some(o);
        }
        (best, result.expect("at least one iteration ran"))
    };
    let (flat_refresh, flat_refreshed) = best_of(&sketch);
    let (sharded_refresh, sharded_refreshed) = best_of(&sharded_with_threads(1));
    let (parallel_refresh, parallel_refreshed) = best_of(&sharded_with_threads(4));
    assert!(
        sharded_refreshed.stores_equal(&flat_refreshed),
        "sharded refresh must land on the flat result"
    );
    assert!(
        parallel_refreshed.stores_equal(&flat_refreshed),
        "shard-parallel refresh must land on the flat result"
    );
    summary.record("flat_refresh_best_seconds", flat_refresh);
    // `sharded_refresh_best_seconds` (threads = 1) keeps its PR-4 name so
    // the metric series stays continuous across runs.
    summary.record("sharded_refresh_best_seconds", sharded_refresh);
    summary.record("sharded_threads_4_refresh_best_seconds", parallel_refresh);
    let ratio = sharded_refresh / flat_refresh.max(1e-9);
    summary.record("sharded_over_flat_refresh_ratio", ratio);
    let thread_ratio = parallel_refresh / sharded_refresh.max(1e-9);
    summary.record("sharded_threads_4_over_1_refresh_ratio", thread_ratio);
    println!(
        "localized edge refresh on the yelp preset: flat {:.3}ms vs {}-shard \
         {:.3}ms (threads=1, {ratio:.2}x) vs {:.3}ms (threads=4, {thread_ratio:.2}x \
         of sequential)",
        1e3 * flat_refresh,
        REFRESH_SHARDS,
        1e3 * sharded_refresh,
        1e3 * parallel_refresh,
    );
    // The gates: sharding is a layout change, so the same frontier must not
    // get meaningfully slower (1.5x headroom absorbs CI timer noise on
    // sub-millisecond work) — and shard-parallel refresh must be no slower
    // than driving the same shards sequentially (same headroom: on a
    // single-core or loaded runner "no slower" is the honest bound, the
    // speedup itself is recorded in the JSON summary above).
    assert!(
        ratio < 1.5,
        "sharded refresh regressed vs flat: {:.3}ms vs {:.3}ms",
        1e3 * sharded_refresh,
        1e3 * flat_refresh
    );
    assert!(
        thread_ratio < 1.5,
        "shard-parallel refresh regressed vs sequential: {:.3}ms vs {:.3}ms",
        1e3 * parallel_refresh,
        1e3 * sharded_refresh
    );

    summary.record_peak_rss();
    match summary.write() {
        Ok(path) => println!("bench summary written to {}", path.display()),
        Err(e) => eprintln!("could not write bench summary: {e}"),
    }
}

criterion_group!(benches, bench_adaptive_pipeline);
criterion_main!(benches);
