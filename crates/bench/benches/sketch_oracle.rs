//! Benchmarks and acceptance checks of the `imdpp-sketch` RR-sketch oracle:
//!
//! * sketch construction and per-query `f(N)` cost vs forward Monte-Carlo,
//! * incremental refresh after a *localized* perception update — asserts
//!   that fewer than 50% of the RR sets are re-sampled (the sample-reuse
//!   guarantee) and reports the measured fraction,
//! * greedy seed quality vs the Monte-Carlo greedy — asserts agreement of
//!   the selected seed sets' spreads within 5%.
//!
//! Key measurements are also written to `results/bench_sketch_oracle.json`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imdpp_baselines::{build_sketch_oracle, sketch_greedy_single_item};
use imdpp_bench::{tiny_amazon_instance, BenchSummary};
use imdpp_core::nominees::{select_nominees_with_oracle, NomineeSelectionConfig};
use imdpp_core::{Evaluator, ImdppInstance, Seed, SeedGroup, SpreadOracle};
use imdpp_diffusion::DynamicsConfig;
use imdpp_graph::{ItemId, UserId};
use imdpp_sketch::{SketchConfig, SketchOracle};

fn frozen_instance() -> ImdppInstance {
    let instance = tiny_amazon_instance(100.0, 1);
    instance
        .with_scenario(instance.scenario().with_dynamics(DynamicsConfig::frozen()))
        .expect("frozen scenario is valid")
}

fn bench_sketch_oracle(c: &mut Criterion) {
    let mut summary = BenchSummary::new("sketch_oracle");
    let instance = frozen_instance();
    let scenario = instance.scenario();
    let sketch_config = SketchConfig::fixed(2048).with_base_seed(5);

    c.bench_function("sketch_build_2048_sets_per_item_100_users", |b| {
        b.iter(|| SketchOracle::build(black_box(scenario), sketch_config).total_sets())
    });

    let oracle = build_sketch_oracle(&instance, sketch_config);
    let evaluator = Evaluator::new(&instance, 100, 7);
    let nominees: Vec<(UserId, ItemId)> = (0..4).map(|u| (UserId(u), ItemId(0))).collect();

    let mut query = c.benchmark_group("static_spread_query");
    query.bench_function("rr_sketch", |b| {
        b.iter(|| oracle.static_spread(black_box(&nominees)))
    });
    query.bench_function("monte_carlo_100_samples", |b| {
        b.iter(|| evaluator.static_spread(black_box(&nominees)))
    });
    query.finish();

    // --- Incremental refresh after a localized perception update. ---
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");
    let drifted = scenario.with_base_preference(quiet, ItemId(0), 0.9);

    let mut probe = oracle.clone();
    let stats = probe.apply_update(&drifted, &[quiet]);
    println!(
        "incremental refresh after localized update of {quiet}: \
         re-sampled {}/{} RR sets ({:.2}%), reused {:.2}%",
        stats.resampled_sets,
        stats.total_sets,
        100.0 * stats.resampled_fraction(),
        100.0 * stats.reused_fraction(),
    );
    assert!(
        stats.resampled_fraction() < 0.5,
        "localized update must re-sample < 50% of RR sets, got {:.2}%",
        100.0 * stats.resampled_fraction()
    );
    summary.record(
        "localized_update_resampled_fraction",
        stats.resampled_fraction(),
    );
    summary.record("localized_update_total_sets", stats.total_sets as f64);

    let mut refresh = c.benchmark_group("refresh_after_localized_update");
    refresh.bench_function("incremental_reuse", |b| {
        b.iter(|| {
            let mut o = oracle.clone();
            o.apply_update(black_box(&drifted), &[quiet]).resampled_sets
        })
    });
    refresh.bench_function("full_rebuild", |b| {
        b.iter(|| SketchOracle::build(black_box(&drifted), sketch_config).total_sets())
    });
    refresh.finish();

    // --- Greedy quality: the same CELF selection with the two oracles
    // swapped must land within 5% of each other. ---
    let universe: Vec<(UserId, ItemId)> = scenario.users().map(|u| (u, ItemId(0))).collect();
    // Cap both selections at the same seed count: the comparison targets
    // seed *quality* under each estimator, not the stopping rule (MC gains
    // are never exactly zero, so an uncapped MC-CELF always spends the whole
    // budget while coverage gains can hit zero and stop).
    let selection_config = NomineeSelectionConfig {
        max_nominees: Some(5),
        ..NomineeSelectionConfig::default()
    };
    // A denser sketch for selection: per-singleton coverage noise must be
    // well under the 5% agreement target (relative error ~ 1/sqrt(coverage)).
    let selection_oracle =
        build_sketch_oracle(&instance, SketchConfig::fixed(16_384).with_base_seed(5));
    let sketch_seeds: SeedGroup =
        select_nominees_with_oracle(&instance, &selection_oracle, &universe, &selection_config)
            .nominees
            .into_iter()
            .map(|(u, x)| Seed::new(u, x, 1))
            .collect();
    let mc_oracle = Evaluator::new(&instance, 200, 7);
    let mc_seeds: SeedGroup =
        select_nominees_with_oracle(&instance, &mc_oracle, &universe, &selection_config)
            .nominees
            .into_iter()
            .map(|(u, x)| Seed::new(u, x, 1))
            .collect();
    assert!(!sketch_seeds.is_empty() && !mc_seeds.is_empty());
    let reference = Evaluator::new(&instance, 1_500, 99);
    let sketch_spread = reference.spread(&sketch_seeds);
    let mc_spread = reference.spread(&mc_seeds);
    println!(
        "greedy seed-set spread: rr-sketch {sketch_spread:.3} vs monte-carlo {mc_spread:.3} \
         (relative difference {:.2}%)",
        100.0 * (sketch_spread - mc_spread).abs() / mc_spread.max(1.0)
    );
    assert!(
        (sketch_spread - mc_spread).abs() <= 0.05 * mc_spread.max(1.0),
        "sketch greedy must match MC greedy within 5%: {sketch_spread:.3} vs {mc_spread:.3}"
    );
    summary.record("greedy_spread_rr_sketch", sketch_spread);
    summary.record("greedy_spread_monte_carlo", mc_spread);

    let mut greedy = c.benchmark_group("greedy_selection");
    greedy.bench_function("rr_sketch_celf", |b| {
        b.iter(|| sketch_greedy_single_item(black_box(&instance), ItemId(0), &oracle).len())
    });
    greedy.finish();

    summary.record_peak_rss();
    match summary.write() {
        Ok(path) => println!("bench summary written to {}", path.display()),
        Err(e) => eprintln!("could not write bench summary: {e}"),
    }
}

criterion_group!(benches, bench_sketch_oracle);
criterion_main!(benches);
