//! Knowledge-graph benchmarks: meta-graph relevance computation and personal
//! item-network queries (the shared-matrix design of DESIGN.md §5.2).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use imdpp_bench::yelp_instance;
use imdpp_datasets::{generate, DatasetKind};
use imdpp_graph::{ItemId, UserId};
use imdpp_kg::{MetaGraph, RelevanceModel};

fn bench_relevance(c: &mut Criterion) {
    let dataset = generate(&DatasetKind::YelpSmall.config().scaled(0.5));
    let kg = dataset.knowledge_graph.clone();

    let mut compute_group = c.benchmark_group("relevance_model_compute");
    compute_group.sample_size(20);
    compute_group.bench_function("yelp_half_scale", |b| {
        b.iter(|| RelevanceModel::compute(black_box(&kg), MetaGraph::default_set()).len())
    });
    compute_group.finish();

    let instance = yelp_instance(0.5, 100.0, 2);
    let perception = instance.scenario().initial_perception();
    let items: Vec<ItemId> = instance.scenario().items().collect();

    c.bench_function("personal_complementary_relevance_all_pairs", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for &x in &items {
                for &y in &items {
                    total += perception.complementary(UserId(0), x, y);
                }
            }
            total
        })
    });

    c.bench_function("personal_item_network_single_item", |b| {
        b.iter(|| {
            perception
                .personal_item_network(UserId(0), black_box(ItemId(0)))
                .len()
        })
    });

    let mut evolving = perception.clone();
    c.bench_function("perception_update_on_adoption", |b| {
        b.iter(|| {
            evolving.update_on_adoption(
                UserId(1),
                &[ItemId(0)],
                &[ItemId(0), ItemId(1), ItemId(2)],
                0.2,
            )
        })
    });
}

criterion_group!(benches, bench_relevance);
criterion_main!(benches);
