//! Concurrency benchmark and acceptance checks of the `imdpp-engine`
//! snapshot-isolation story: reader spread-query throughput must *scale*
//! with the number of reader threads while a writer keeps applying localized
//! edge updates (the "many readers, one incremental writer" regime the
//! engine exists for).
//!
//! The reader workload is the engine's cheap read path — `static_spread`,
//! answered from the snapshot's RR sketch; each call is single-threaded, so
//! thread-count scaling isolates the snapshot machinery.  (`Engine::spread`
//! parallelizes its Monte-Carlo simulation internally and already saturates
//! the machine from one caller; it is timed separately below.)
//!
//! Asserts:
//!
//! * every reader query returns a finite, non-negative estimate while
//!   epochs churn (the full torn-read property test lives in
//!   `tests/engine_snapshot.rs`),
//! * aggregate reader throughput with 4 threads beats a single thread (a
//!   deliberately loose 1.2× gate: CI runners may pin the process to very
//!   few cores, but snapshot isolation must never *serialize* readers —
//!   full serialization under a busy writer shows up as ≤ 1.0×),
//! * telemetry recording (the default engine) costs at most 5% of
//!   single-reader throughput against an engine built with
//!   `Telemetry::disabled()` (best-of-5 windows on each side),
//! * the serving tier's batched spread path answers a 32-query batch at
//!   ≥ 2× the single-query loop's throughput (the batch makes one masked
//!   arena pass per touched item per 64-query chunk instead of one pass
//!   per query) — best-of-5 windows, bit-identical results asserted first.
//!
//! Key measurements are written to `results/bench_engine_concurrency.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use imdpp_bench::{yelp_instance, BenchSummary};
use imdpp_core::nominees::Nominee;
use imdpp_core::{DysimConfig, EdgeUpdate, OracleKind, ScenarioUpdate};
use imdpp_engine::{Engine, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SETS_PER_ITEM: usize = 1024;
const MEASURE_WINDOW: Duration = Duration::from_millis(400);

fn build_engine(shards: usize, threads: usize) -> Engine {
    build_engine_with(shards, threads, Telemetry::default())
}

fn build_engine_with(shards: usize, threads: usize, telemetry: Telemetry) -> Engine {
    let instance = yelp_instance(0.25, 120.0, 3);
    Engine::for_instance(&instance)
        .config(DysimConfig {
            mc_samples: 8,
            candidate_users: Some(32),
            max_nominees: Some(6),
            ..DysimConfig::default()
        })
        .oracle(OracleKind::RrSketch {
            sets_per_item: SETS_PER_ITEM,
            shards,
            threads,
        })
        .telemetry(telemetry)
        .build()
        .expect("yelp instance is valid")
}

/// The edge the writer keeps reweighting: one incoming influence edge of
/// the least-connected user.  Reweights never change out-degrees, so this
/// is an invariant of the whole run — computed once, outside every timed
/// region.
fn writer_edge(engine: &Engine) -> (imdpp_graph::UserId, imdpp_graph::UserId) {
    let snapshot = engine.snapshot();
    let scenario = snapshot.scenario();
    let quiet = scenario
        .users()
        .min_by_key(|&u| (scenario.social().out_degree(u), std::cmp::Reverse(u.0)))
        .expect("instance has users");
    let (src, _) = scenario
        .social()
        .influencers_of(quiet)
        .next()
        .expect("yelp preset users have friends");
    (src, quiet)
}

/// A localized reweight of the fixed writer edge, alternating strength so
/// consecutive updates are never no-ops.
fn writer_update(edge: (imdpp_graph::UserId, imdpp_graph::UserId), step: usize) -> ScenarioUpdate {
    let weight = if step.is_multiple_of(2) { 0.35 } else { 0.65 };
    let up = EdgeUpdate::Reweight {
        src: edge.0,
        dst: edge.1,
        weight,
    };
    ScenarioUpdate::Edges(vec![up, up.mirrored()])
}

/// Runs `readers` threads hammering `Engine::static_spread` for the
/// measurement window while one writer applies updates; returns (total
/// reader queries, writer updates applied).
fn run_readers_under_writes(
    engine: &Arc<Engine>,
    nominees: &[Nominee],
    readers: usize,
) -> (u64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..readers {
        let engine = Arc::clone(engine);
        let nominees = nominees.to_vec();
        let stop = Arc::clone(&stop);
        // lint: allow(spawn) — bench harness readers measuring contention;
        // no engine work is scheduled here.
        handles.push(std::thread::spawn(move || {
            let mut queries = 0u64;
            // lint: allow(atomic-ordering) — advisory stop flag; a stale
            // read only extends the measurement window by one query.
            while !stop.load(Ordering::Relaxed) {
                let f = engine.static_spread(&nominees);
                assert!(f.is_finite() && f >= 0.0);
                queries += 1;
            }
            queries
        }));
    }

    // This thread is the writer: keep landing updates until the window ends.
    // The engine is shared across reader configurations, so epochs continue
    // from wherever the previous window left them.
    let edge = writer_edge(engine);
    let epoch_base = engine.snapshot().epoch();
    let start = Instant::now();
    let mut updates = 0u64;
    while start.elapsed() < MEASURE_WINDOW {
        let update = writer_update(edge, updates as usize);
        let applied = engine.apply(&update).expect("in-range update");
        updates += 1;
        assert_eq!(
            applied.epoch,
            epoch_base + updates,
            "writer must advance one epoch per apply"
        );
    }
    // lint: allow(atomic-ordering) — advisory stop flag; join() below is
    // the real synchronisation point.
    stop.store(true, Ordering::Relaxed);

    let queries: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (queries, updates)
}

fn bench_engine_concurrency(c: &mut Criterion) {
    let mut summary = BenchSummary::new("engine_concurrency");
    summary.record("engine_shard_count", 1.0);
    let engine = Arc::new(build_engine(1, 1));
    let seeds = engine.solve();
    assert!(!seeds.is_empty());
    let nominees: Vec<Nominee> = seeds.seeds().iter().map(|s| (s.user, s.item)).collect();
    println!(
        "engine on the yelp-scale preset: {} users, {} RR sets",
        engine.snapshot().scenario().user_count(),
        SETS_PER_ITEM * engine.snapshot().scenario().item_count(),
    );

    let mut throughput = Vec::new();
    for readers in [1usize, 2, 4] {
        let (queries, updates) = run_readers_under_writes(&engine, &nominees, readers);
        let qps = queries as f64 / MEASURE_WINDOW.as_secs_f64();
        println!(
            "{readers} reader(s) while writing: {queries} spread queries \
             ({qps:.0}/s) alongside {updates} applied updates"
        );
        summary.record(format!("readers_{readers}_queries_per_second"), qps);
        summary.record(format!("readers_{readers}_writer_updates"), updates as f64);
        throughput.push(qps);
    }
    let scaling = throughput[2] / throughput[0].max(1e-9);
    summary.record("readers_4_over_1_scaling", scaling);
    println!("4-thread over 1-thread reader throughput: {scaling:.2}x");
    assert!(
        scaling > 1.2,
        "snapshot isolation must let reader throughput scale with threads \
         while updates land; got {scaling:.2}x"
    );

    // --- Telemetry overhead: the default (recording) engine vs one built
    // --- with `Telemetry::disabled()`, on the pure snapshot-read path. ----
    // No concurrent writer here: on a single-core runner the scheduler's
    // reader/writer split swamps any per-query cost, and the quantity under
    // test is the recording overhead itself (one branch + a relaxed atomic
    // per event).  Rounds alternate live/disabled so load drift hits both
    // sides equally; best-of-5 absorbs the residual noise before the 5%
    // gate fires.
    let dark = Arc::new(build_engine_with(1, 1, Telemetry::disabled()));
    assert!(!dark.telemetry_handle().is_enabled());
    assert_eq!(dark.solve(), seeds, "telemetry must not change results");
    let read_qps_window = |engine: &Arc<Engine>| -> f64 {
        let start = Instant::now();
        let mut queries = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            let f = engine.static_spread(&nominees);
            assert!(f.is_finite() && f >= 0.0);
            queries += 1;
        }
        queries as f64 / start.elapsed().as_secs_f64()
    };
    let mut live_qps = 0.0f64;
    let mut dark_qps = 0.0f64;
    for _ in 0..5 {
        live_qps = live_qps.max(read_qps_window(&engine));
        dark_qps = dark_qps.max(read_qps_window(&dark));
    }
    let overhead = 1.0 - live_qps / dark_qps.max(1e-9);
    summary.record("telemetry_live_queries_per_second", live_qps);
    summary.record("telemetry_disabled_queries_per_second", dark_qps);
    summary.record("telemetry_overhead_fraction", overhead);
    println!(
        "telemetry overhead on single-reader qps: {live_qps:.0}/s recording vs \
         {dark_qps:.0}/s disabled ({:.1}%)",
        100.0 * overhead
    );
    assert!(
        live_qps >= 0.95 * dark_qps,
        "telemetry recording must cost <= 5% of reader throughput, \
         measured {:.1}% ({live_qps:.0}/s vs {dark_qps:.0}/s)",
        100.0 * overhead
    );

    // --- Batched spread queries: the serving-tier amortization gate. -----
    // 32 varied queries — every rotation of every non-empty prefix of an
    // 8-nominee pool — so the batch hits the same items repeatedly and the
    // per-chunk masked arena pass has something to amortize, exactly the
    // coalesced-request shape the batch API exists for.
    const BATCH: usize = 32;
    let pool: Vec<Nominee> = {
        let items = engine.snapshot().scenario().item_count() as u32;
        let mut pool = nominees.clone();
        let mut u = 0u32;
        while pool.len() < 8 {
            pool.push((imdpp_graph::UserId(u), imdpp_graph::ItemId(u % items)));
            u += 1;
        }
        pool.truncate(8);
        pool
    };
    let mut batch_queries: Vec<Vec<Nominee>> = Vec::new();
    'fill: for len in 1..=pool.len() {
        for rot in 0..len {
            let mut q = pool[..len].to_vec();
            q.rotate_left(rot);
            batch_queries.push(q);
            if batch_queries.len() == BATCH {
                break 'fill;
            }
        }
    }
    let refs: Vec<&[Nominee]> = batch_queries.iter().map(Vec::as_slice).collect();
    // Correctness before speed: the batch must be bit-identical to the
    // single-query loop on the same snapshot.
    let pinned = engine.snapshot();
    let batched_values = pinned.static_spread_batch(&refs);
    for (i, q) in batch_queries.iter().enumerate() {
        assert_eq!(
            batched_values[i].to_bits(),
            pinned.static_spread(q).to_bits(),
            "batched query {i} diverged from the single-query path"
        );
    }
    let single_qps_window = || -> f64 {
        let start = Instant::now();
        let mut answered = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            for q in &batch_queries {
                let f = pinned.static_spread(q);
                assert!(f.is_finite() && f >= 0.0);
            }
            answered += BATCH as u64;
        }
        answered as f64 / start.elapsed().as_secs_f64()
    };
    let batch_qps_window = || -> f64 {
        let start = Instant::now();
        let mut answered = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            let values = pinned.static_spread_batch(&refs);
            assert_eq!(values.len(), BATCH);
            answered += BATCH as u64;
        }
        answered as f64 / start.elapsed().as_secs_f64()
    };
    let mut single_qps = 0.0f64;
    let mut batch_qps = 0.0f64;
    for _ in 0..5 {
        single_qps = single_qps.max(single_qps_window());
        batch_qps = batch_qps.max(batch_qps_window());
    }
    let speedup = batch_qps / single_qps.max(1e-9);
    summary.record("single_query_queries_per_second", single_qps);
    summary.record("batch_32_queries_per_second", batch_qps);
    summary.record("batch_32_over_single_speedup", speedup);
    println!(
        "batched spread at batch size {BATCH}: {batch_qps:.0} queries/s vs \
         {single_qps:.0} queries/s single ({speedup:.2}x)"
    );
    assert!(
        speedup >= 2.0,
        "a 32-query batch must answer at >= 2x single-query throughput, \
         got {speedup:.2}x ({batch_qps:.0}/s vs {single_qps:.0}/s)"
    );

    // --- Sharded engine: same workload over the partitioned store, with a
    // --- writer-threads axis (1 vs 4 workers per shard-parallel refresh). -
    const ENGINE_SHARDS: usize = 4;
    summary.record("sharded_engine_shard_count", ENGINE_SHARDS as f64);
    let mut writer_updates_by_threads = Vec::new();
    for writer_threads in [1usize, 4] {
        let sharded_engine = Arc::new(build_engine(ENGINE_SHARDS, writer_threads));
        assert_eq!(
            sharded_engine.solve(),
            seeds,
            "shard count / thread count must not change the engine's solution"
        );
        for readers in [1usize, 4] {
            let (queries, updates) = run_readers_under_writes(&sharded_engine, &nominees, readers);
            let qps = queries as f64 / MEASURE_WINDOW.as_secs_f64();
            println!(
                "{ENGINE_SHARDS}-shard engine (writer threads = {writer_threads}), \
                 {readers} reader(s) while writing: {queries} spread queries \
                 ({qps:.0}/s) alongside {updates} applied updates"
            );
            summary.record(
                format!("sharded_threads_{writer_threads}_readers_{readers}_queries_per_second"),
                qps,
            );
            summary.record(
                format!("sharded_threads_{writer_threads}_readers_{readers}_writer_updates"),
                updates as f64,
            );
            if readers == 1 {
                writer_updates_by_threads.push(updates);
            }
        }
    }
    // Recorded, not hard-gated (update throughput on a shared runner is
    // noisy): how many refreshes the writer landed per window with
    // sequential vs shard-parallel workers.
    if let [sequential, parallel] = writer_updates_by_threads[..] {
        let ratio = parallel as f64 / (sequential as f64).max(1e-9);
        summary.record("sharded_writer_updates_4_over_1_threads", ratio);
        println!(
            "writer refresh throughput, 4 workers over 1: {ratio:.2}x \
             ({parallel} vs {sequential} updates per window)"
        );
    }

    // Criterion timing of the single-query and apply paths for the record.
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("static_spread_query", |b| {
        b.iter(|| engine.static_spread(&nominees))
    });
    group.bench_function("monte_carlo_spread_query", |b| {
        b.iter(|| engine.spread(&seeds))
    });
    let edge = writer_edge(&engine);
    let mut step = 1usize;
    group.bench_function("apply_localized_edge_update", |b| {
        b.iter(|| {
            step += 1;
            engine
                .apply(&writer_update(edge, step))
                .expect("in-range update")
                .refresh_fraction
        })
    });
    group.finish();

    summary.record_peak_rss();
    match summary.write() {
        Ok(path) => println!("bench summary written to {}", path.display()),
        Err(e) => eprintln!("could not write bench summary: {e}"),
    }
}

criterion_group!(benches, bench_engine_concurrency);
criterion_main!(benches);
