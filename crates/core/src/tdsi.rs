//! Timing Determination by Substantial Influence (TDSI):
//! Eqs. (2), (11), (12) and the restricted timing-window search.
//!
//! For a candidate seed `(u, x_p, t)` under the current seed group `S_G`,
//! the substantial influence is
//!
//! ```text
//! SI = MA(S_G, (u, x_p, t)) + (T − t + 1) / T · ML(S_G, (u, x_p, t))
//! ```
//!
//! where the marginal adoption `MA` is the increase of the market-restricted
//! spread `σ_τ` and the marginal likelihood `ML` is the increase of the
//! future-adoption likelihood `π_τ` (Eq. 13).  TDSI only searches the two
//! timings `t ∈ [t̂, min(t̂ + 1, Σ_{i ≤ k} T_{τ_i})]` (Sec. IV-B justifies why
//! this restriction loses nothing).

use crate::eval::Evaluator;
use crate::market::TargetMarket;
use crate::nominees::Nominee;
use imdpp_diffusion::{Seed, SeedGroup};

/// One scored candidate `(u, x_p, t)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoredCandidate {
    /// The candidate seed.
    pub seed: Seed,
    /// Its substantial influence under the current seed group.
    pub substantial_influence: f64,
    /// The marginal adoption component.
    pub marginal_adoption: f64,
    /// The marginal likelihood component (unweighted).
    pub marginal_likelihood: f64,
}

/// Computes the substantial influence of a candidate seed (Eq. 2).
pub fn substantial_influence(
    evaluator: &Evaluator<'_>,
    market: &TargetMarket,
    seed_group: &SeedGroup,
    candidate: Seed,
    total_promotions: u32,
    baseline_spread: f64,
    baseline_likelihood: f64,
) -> ScoredCandidate {
    let with = seed_group.with(candidate);
    let marginal_adoption = evaluator.spread_in(&with, &market.users) - baseline_spread;
    let marginal_likelihood =
        evaluator.future_likelihood_in(&with, &market.users) - baseline_likelihood;
    let t = candidate.promotion as f64;
    let horizon = total_promotions as f64;
    let weight = ((horizon - t + 1.0) / horizon).clamp(0.0, 1.0);
    ScoredCandidate {
        seed: candidate,
        substantial_influence: marginal_adoption + weight * marginal_likelihood,
        marginal_adoption,
        marginal_likelihood,
    }
}

/// The timing window TDSI searches for the next seed: `[t̂, min(t̂ + 1,
/// cumulative_duration)]`, clamped to `[1, total_promotions]`.
pub fn timing_window(
    seed_group: &SeedGroup,
    cumulative_duration: u32,
    total_promotions: u32,
) -> Vec<u32> {
    let t_hat = seed_group.latest_promotion().max(1);
    let upper = (t_hat + 1)
        .min(cumulative_duration.max(1))
        .min(total_promotions)
        .max(t_hat.min(total_promotions));
    (t_hat.min(total_promotions)..=upper).collect()
}

/// Assigns promotional timings to every nominee in `pending` (the `N_p` of
/// Algorithm 1, lines 16–28), extending `seed_group` in place.
///
/// `cumulative_duration` is `Σ_{i ≤ k} T_{τ_i}`, the last promotion this
/// market may use.  When `full_timing_search` is set, every timing in
/// `[t̂, total_promotions]` is examined instead of the two-slot window (used
/// by the ablation bench that validates the window restriction).
#[allow(clippy::too_many_arguments)]
pub fn assign_timings(
    evaluator: &Evaluator<'_>,
    market: &TargetMarket,
    mut pending: Vec<Nominee>,
    seed_group: &mut SeedGroup,
    cumulative_duration: u32,
    total_promotions: u32,
    full_timing_search: bool,
) -> Vec<ScoredCandidate> {
    let mut placed = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        let baseline_spread = evaluator.spread_in(seed_group, &market.users);
        let baseline_likelihood = evaluator.future_likelihood_in(seed_group, &market.users);
        let timings = if full_timing_search {
            let t_hat = seed_group.latest_promotion().max(1).min(total_promotions);
            (t_hat..=total_promotions).collect::<Vec<u32>>()
        } else {
            timing_window(seed_group, cumulative_duration, total_promotions)
        };
        let mut best: Option<ScoredCandidate> = None;
        for &(u, x) in &pending {
            for &t in &timings {
                let candidate = Seed::new(u, x, t);
                if seed_group.contains_nominee(u, x) {
                    continue;
                }
                let scored = substantial_influence(
                    evaluator,
                    market,
                    seed_group,
                    candidate,
                    total_promotions,
                    baseline_spread,
                    baseline_likelihood,
                );
                let better = match &best {
                    None => true,
                    Some(b) => scored.substantial_influence > b.substantial_influence,
                };
                if better {
                    best = Some(scored);
                }
            }
        }
        let Some(chosen) = best else { break };
        seed_group.insert(chosen.seed);
        pending.retain(|&(u, x)| !(u == chosen.seed.user && x == chosen.seed.item));
        placed.push(chosen);
    }
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CostModel, ImdppInstance};
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::{ItemId, UserId};

    fn instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 6.0, 4).unwrap()
    }

    fn whole_market(inst: &ImdppInstance) -> TargetMarket {
        TargetMarket {
            index: 0,
            nominees: vec![(UserId(0), ItemId(0)), (UserId(2), ItemId(1))],
            users: inst.scenario().users().collect(),
            diameter: 3,
        }
    }

    #[test]
    fn timing_window_starts_at_one_for_empty_group() {
        let g = SeedGroup::new();
        assert_eq!(timing_window(&g, 3, 5), vec![1, 2]);
        assert_eq!(timing_window(&g, 1, 5), vec![1]);
    }

    #[test]
    fn timing_window_follows_latest_seed() {
        let g = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 2)]);
        assert_eq!(timing_window(&g, 5, 5), vec![2, 3]);
        // Cumulative duration caps the upper end.
        assert_eq!(timing_window(&g, 2, 5), vec![2]);
        // Total promotions cap everything.
        let g5 = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 5)]);
        assert_eq!(timing_window(&g5, 9, 5), vec![5]);
    }

    #[test]
    fn substantial_influence_is_positive_for_a_useful_seed() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 1);
        let market = whole_market(&inst);
        let sg = SeedGroup::new();
        let scored = substantial_influence(
            &ev,
            &market,
            &sg,
            Seed::new(UserId(0), ItemId(0), 1),
            inst.promotions(),
            0.0,
            0.0,
        );
        assert!(scored.marginal_adoption >= 1.0);
        assert!(scored.substantial_influence >= scored.marginal_adoption);
    }

    #[test]
    fn later_timing_discounts_the_likelihood_component() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 2);
        let market = whole_market(&inst);
        let sg = SeedGroup::new();
        let early = substantial_influence(
            &ev,
            &market,
            &sg,
            Seed::new(UserId(0), ItemId(0), 1),
            inst.promotions(),
            0.0,
            0.0,
        );
        let late = substantial_influence(
            &ev,
            &market,
            &sg,
            Seed::new(UserId(0), ItemId(0), 4),
            inst.promotions(),
            0.0,
            0.0,
        );
        // The likelihood weight is (T - t + 1) / T: 1.0 at t=1, 0.25 at t=4.
        let early_weight_part = early.substantial_influence - early.marginal_adoption;
        let late_weight_part = late.substantial_influence - late.marginal_adoption;
        if early.marginal_likelihood > 0.0 {
            assert!(early_weight_part > late_weight_part - 1e-9);
        }
    }

    #[test]
    fn assign_timings_places_every_nominee() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 3);
        let market = whole_market(&inst);
        let mut sg = SeedGroup::new();
        let placed = assign_timings(
            &ev,
            &market,
            vec![(UserId(0), ItemId(0)), (UserId(2), ItemId(1))],
            &mut sg,
            4,
            inst.promotions(),
            false,
        );
        assert_eq!(placed.len(), 2);
        assert_eq!(sg.len(), 2);
        // Timings must be non-decreasing in placement order and within range.
        for w in placed.windows(2) {
            assert!(w[1].seed.promotion >= w[0].seed.promotion);
        }
        for s in sg.seeds() {
            assert!(s.promotion >= 1 && s.promotion <= inst.promotions());
        }
    }

    #[test]
    fn assign_timings_with_existing_seed_group_respects_t_hat() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 4);
        let market = whole_market(&inst);
        let mut sg = SeedGroup::from_seeds(vec![Seed::new(UserId(1), ItemId(2), 2)]);
        let placed = assign_timings(
            &ev,
            &market,
            vec![(UserId(0), ItemId(0))],
            &mut sg,
            4,
            inst.promotions(),
            false,
        );
        assert_eq!(placed.len(), 1);
        assert!(placed[0].seed.promotion >= 2);
    }

    #[test]
    fn full_timing_search_agrees_with_window_on_small_instance() {
        let inst = instance();
        let market = whole_market(&inst);
        let run = |full: bool| {
            let ev = Evaluator::new(&inst, 16, 5);
            let mut sg = SeedGroup::new();
            assign_timings(
                &ev,
                &market,
                vec![(UserId(0), ItemId(0))],
                &mut sg,
                inst.promotions(),
                inst.promotions(),
                full,
            );
            sg
        };
        let windowed = run(false);
        let full = run(true);
        // On this tiny instance the windowed search places the single seed in
        // promotion 1 or 2; the full search must not do better than the
        // windowed search by more than Monte-Carlo noise.
        let ev = Evaluator::new(&inst, 64, 6);
        let s_win = ev.spread(&windowed);
        let s_full = ev.spread(&full);
        assert!(s_win + 0.5 >= s_full, "window {s_win} vs full {s_full}");
    }

    #[test]
    fn nominees_already_in_group_are_skipped() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 7);
        let market = whole_market(&inst);
        let mut sg = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)]);
        let placed = assign_timings(
            &ev,
            &market,
            vec![(UserId(0), ItemId(0))],
            &mut sg,
            4,
            inst.promotions(),
            false,
        );
        assert!(placed.is_empty());
        assert_eq!(sg.len(), 1);
    }
}
