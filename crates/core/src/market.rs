//! Target Market Identification (TMI): clustering nominees, expanding each
//! cluster into a target market via maximum-influence paths, and grouping
//! overlapping markets.
//!
//! A target market `τ` is a cluster of nominees promoting *complementary*
//! items to *socially close* users, together with the set of users those
//! nominees can effectively influence (identified MIOA-style, Sec. IV-B of
//! the paper).

use crate::nominees::Nominee;
use crate::problem::ImdppInstance;
use imdpp_graph::clustering::label_propagation;
use imdpp_graph::paths::{mioa_region, subset_hop_diameter};
use imdpp_graph::traversal::bfs_undirected;
use imdpp_graph::{ItemId, UserId};
use imdpp_kg::{PersonalPerception, RelationKind};

/// A target market: a cluster of nominees plus the users they can reach.
#[derive(Clone, Debug)]
pub struct TargetMarket {
    /// Index of the market within its TMI run.
    pub index: usize,
    /// The nominees assigned to this market.
    pub nominees: Vec<Nominee>,
    /// The users of the market (nominee users plus their MIOA influence
    /// region).
    pub users: Vec<UserId>,
    /// Hop diameter `d_τ` of the market's user set (≥ 1 for non-empty
    /// markets), which bounds the item-impact propagation depth in DRE.
    pub diameter: u32,
}

impl TargetMarket {
    /// The distinct items promoted by the market's nominees.
    pub fn items(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self.nominees.iter().map(|(_, x)| *x).collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// The distinct users among the market's nominees.
    pub fn nominee_users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.nominees.iter().map(|(u, _)| *u).collect();
        users.sort_unstable();
        users.dedup();
        users
    }

    /// Number of users the two markets have in common.
    pub fn common_users(&self, other: &TargetMarket) -> usize {
        let set: std::collections::HashSet<u32> = self.users.iter().map(|u| u.0).collect();
        other.users.iter().filter(|u| set.contains(&u.0)).count()
    }
}

/// Configuration of the TMI clustering / expansion steps.
#[derive(Clone, Copy, Debug)]
pub struct TmiConfig {
    /// Maximum-influence-path probability threshold used by the MIOA
    /// expansion of a market's user set.
    pub mioa_threshold: f64,
    /// Number of hops considered "socially close" when measuring the social
    /// proximity of two nominees.
    pub proximity_hops: u32,
    /// Number of label-propagation rounds used for nominee clustering.
    pub clustering_rounds: usize,
    /// Seed of the clustering (kept deterministic across runs).
    pub clustering_seed: u64,
    /// Threshold `θ` on the number of common users above which two target
    /// markets belong to the same group `G`.
    pub overlap_threshold: usize,
    /// Cap on the number of users sampled when averaging relevance over the
    /// population (keeps TMI cheap on large synthetic datasets).
    pub relevance_user_sample: usize,
}

impl Default for TmiConfig {
    fn default() -> Self {
        TmiConfig {
            mioa_threshold: 0.1,
            proximity_hops: 3,
            clustering_rounds: 10,
            clustering_seed: 0xD15C0,
            overlap_threshold: 1,
            relevance_user_sample: 64,
        }
    }
}

/// Average relevance `r̄(x, y)` of a kind over (a sample of) the population.
pub fn average_relevance_over_population(
    perception: &PersonalPerception,
    sample_cap: usize,
    x: ItemId,
    y: ItemId,
    kind: RelationKind,
) -> f64 {
    let n = perception.user_count();
    if n == 0 {
        return 0.0;
    }
    let step = (n / sample_cap.max(1)).max(1);
    let users = (0..n).step_by(step).map(UserId::from_index);
    perception.average_relevance(users, x, y, kind)
}

/// Clusters the selected nominees into prospective target markets.
///
/// The similarity between two nominees combines the social proximity of
/// their users (within `proximity_hops`) and the complementary-minus-
/// substitutable relevance of their items, as prescribed by TMI:
///
/// ```text
/// sim((u1,x1),(u2,x2)) = proximity(u1,u2) · (1 + r̄C(x1,x2) − r̄S(x1,x2)) / 2
/// ```
pub fn cluster_nominees(
    instance: &ImdppInstance,
    nominees: &[Nominee],
    config: &TmiConfig,
) -> Vec<Vec<Nominee>> {
    if nominees.is_empty() {
        return Vec::new();
    }
    let scenario = instance.scenario();
    let perception = scenario.initial_perception();
    let graph = scenario.social().graph();

    // Social hop distances between nominee users (undirected, limited hops).
    let nominee_users: Vec<UserId> = nominees.iter().map(|(u, _)| *u).collect();
    let mut distances: Vec<Vec<Option<u32>>> = Vec::with_capacity(nominees.len());
    for &u in &nominee_users {
        let d = bfs_undirected(graph, &[u], Some(config.proximity_hops));
        distances.push(nominee_users.iter().map(|v| d.distance(*v)).collect());
    }

    let similarity = |i: usize, j: usize| -> f64 {
        let proximity = match distances[i][j] {
            Some(d) => 1.0 / (1.0 + d as f64),
            None => return 0.0,
        };
        let (_, xi) = nominees[i];
        let (_, xj) = nominees[j];
        let relation = if xi == xj {
            0.0
        } else {
            average_relevance_over_population(
                perception,
                config.relevance_user_sample,
                xi,
                xj,
                RelationKind::Complementary,
            ) - average_relevance_over_population(
                perception,
                config.relevance_user_sample,
                xi,
                xj,
                RelationKind::Substitutable,
            )
        };
        // Map the relation difference from [-1, 1] to [0, 1] and damp the
        // proximity with it; substitutable pairs end up with low similarity.
        (proximity * (1.0 + relation) / 2.0).max(0.0)
    };

    let clustering = label_propagation(
        nominees.len(),
        similarity,
        config.clustering_rounds,
        config.clustering_seed,
    );
    clustering
        .clusters()
        .into_iter()
        .filter(|members| !members.is_empty())
        .map(|members| members.into_iter().map(|i| nominees[i]).collect())
        .collect()
}

/// Expands a nominee cluster into a target market by collecting every user
/// reachable from the cluster's users with maximum-influence-path probability
/// at least `mioa_threshold`.
pub fn identify_market(
    instance: &ImdppInstance,
    index: usize,
    cluster: Vec<Nominee>,
    config: &TmiConfig,
) -> TargetMarket {
    let graph = instance.scenario().social().graph();
    let sources: Vec<UserId> = {
        let mut s: Vec<UserId> = cluster.iter().map(|(u, _)| *u).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mut users = mioa_region(graph, &sources, config.mioa_threshold);
    // The nominee users always belong to their own market.
    for &u in &sources {
        if !users.contains(&u) {
            users.push(u);
        }
    }
    users.sort_unstable();
    users.dedup();
    let diameter = subset_hop_diameter(graph, &users);
    TargetMarket {
        index,
        nominees: cluster,
        users,
        diameter,
    }
}

/// Runs the clustering + expansion pipeline and returns all target markets.
pub fn identify_markets(
    instance: &ImdppInstance,
    nominees: &[Nominee],
    config: &TmiConfig,
) -> Vec<TargetMarket> {
    cluster_nominees(instance, nominees, config)
        .into_iter()
        .enumerate()
        .map(|(i, cluster)| identify_market(instance, i, cluster, config))
        .collect()
}

/// Groups target markets that share more than `overlap_threshold` common
/// users (the groups `G` of Algorithm 1).  Returns groups of indices into
/// `markets`; singleton markets form their own group.
pub fn group_markets(markets: &[TargetMarket], overlap_threshold: usize) -> Vec<Vec<usize>> {
    let n = markets.len();
    // Union-find over markets.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if markets[i].common_users(&markets[j]) > overlap_threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 4.0, 3).unwrap()
    }

    #[test]
    fn clustering_keeps_every_nominee() {
        let inst = instance();
        let nominees = vec![
            (UserId(0), ItemId(0)),
            (UserId(1), ItemId(1)),
            (UserId(5), ItemId(2)),
        ];
        let clusters = cluster_nominees(&inst, &nominees, &TmiConfig::default());
        let total: usize = clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, 3);
        assert!(!clusters.is_empty());
    }

    #[test]
    fn socially_close_complementary_nominees_cluster_together() {
        let inst = instance();
        // Users 0 and 1 are adjacent; iPhone (0) and AirPods (1) are
        // complementary.  User 5 is more than one hop away from both, so with
        // a one-hop proximity horizon it cannot join their cluster.
        let nominees = vec![
            (UserId(0), ItemId(0)),
            (UserId(1), ItemId(1)),
            (UserId(5), ItemId(0)),
        ];
        let cfg = TmiConfig {
            proximity_hops: 1,
            ..TmiConfig::default()
        };
        let clusters = cluster_nominees(&inst, &nominees, &cfg);
        // Find the cluster containing (u0, iPhone): it must also contain (u1, AirPods).
        let c0 = clusters
            .iter()
            .find(|c| c.contains(&(UserId(0), ItemId(0))))
            .unwrap();
        assert!(c0.contains(&(UserId(1), ItemId(1))));
        assert!(!c0.contains(&(UserId(5), ItemId(0))));
    }

    #[test]
    fn empty_nominee_list_produces_no_clusters() {
        let inst = instance();
        assert!(cluster_nominees(&inst, &[], &TmiConfig::default()).is_empty());
        assert!(identify_markets(&inst, &[], &TmiConfig::default()).is_empty());
    }

    #[test]
    fn market_expansion_includes_reachable_users() {
        let inst = instance();
        let market = identify_market(
            &inst,
            0,
            vec![(UserId(0), ItemId(0))],
            &TmiConfig {
                mioa_threshold: 0.2,
                ..TmiConfig::default()
            },
        );
        // User 0 reaches 1 (0.6) and 2 (0.5) and 3 via 1 (0.3) etc.
        assert!(market.users.contains(&UserId(0)));
        assert!(market.users.contains(&UserId(1)));
        assert!(market.users.contains(&UserId(2)));
        assert!(market.diameter >= 1);
        assert_eq!(market.items(), vec![ItemId(0)]);
        assert_eq!(market.nominee_users(), vec![UserId(0)]);
    }

    #[test]
    fn high_threshold_market_shrinks_to_nominee_users() {
        let inst = instance();
        let market = identify_market(
            &inst,
            0,
            vec![(UserId(5), ItemId(1))],
            &TmiConfig {
                mioa_threshold: 0.99,
                ..TmiConfig::default()
            },
        );
        assert_eq!(market.users, vec![UserId(5)]);
        assert_eq!(market.diameter, 1);
    }

    #[test]
    fn common_users_counts_intersection() {
        let inst = instance();
        let cfg = TmiConfig {
            mioa_threshold: 0.2,
            ..TmiConfig::default()
        };
        let m1 = identify_market(&inst, 0, vec![(UserId(0), ItemId(0))], &cfg);
        let m2 = identify_market(&inst, 1, vec![(UserId(2), ItemId(1))], &cfg);
        assert!(m1.common_users(&m2) >= 1);
    }

    #[test]
    fn grouping_merges_overlapping_markets() {
        let inst = instance();
        let cfg = TmiConfig {
            mioa_threshold: 0.2,
            overlap_threshold: 0,
            ..TmiConfig::default()
        };
        let m1 = identify_market(&inst, 0, vec![(UserId(0), ItemId(0))], &cfg);
        let m2 = identify_market(&inst, 1, vec![(UserId(2), ItemId(1))], &cfg);
        let m3 = identify_market(&inst, 2, vec![(UserId(5), ItemId(2))], &cfg);
        let groups = group_markets(&[m1, m2, m3], 0);
        // Markets 0 and 1 overlap (both reach user 4/5 region or each other);
        // market 2 (user 5, no out-edges) stays alone unless overlapping.
        let group_of_0 = groups.iter().find(|g| g.contains(&0)).unwrap();
        assert!(group_of_0.contains(&1));
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn grouping_with_huge_threshold_keeps_markets_separate() {
        let inst = instance();
        let cfg = TmiConfig {
            mioa_threshold: 0.2,
            ..TmiConfig::default()
        };
        let m1 = identify_market(&inst, 0, vec![(UserId(0), ItemId(0))], &cfg);
        let m2 = identify_market(&inst, 1, vec![(UserId(2), ItemId(1))], &cfg);
        let groups = group_markets(&[m1, m2], 1000);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn average_relevance_over_population_matches_single_user_when_uniform() {
        let inst = instance();
        let p = inst.scenario().initial_perception();
        let avg = average_relevance_over_population(
            p,
            8,
            ItemId(0),
            ItemId(1),
            RelationKind::Complementary,
        );
        let single = p.complementary(UserId(0), ItemId(0), ItemId(1));
        assert!((avg - single).abs() < 1e-12);
    }
}
