//! Nominee selection by marginal cost-performance ratio (Procedure 2 of the
//! paper, `selectNominees`), with CELF-style lazy re-evaluation.
//!
//! A *nominee* is a `(user, item)` pair that may later be turned into a seed
//! `(user, item, t)` by TDSI.  TMI selects nominees greedily by the marginal
//! cost-performance ratio
//!
//! ```text
//! MCP(u, x | N) = (f(N ∪ {(u,x)}) − f(N)) / c_{u,x}
//! ```
//!
//! where `f` is the static first-promotion spread.  Because `f` is
//! submodular under static probabilities (Lemma 1), stale marginal gains
//! upper-bound fresh ones, so the classic CELF lazy evaluation applies and
//! drastically reduces the number of spread estimations.
//!
//! Every `f(N)` query goes through a [`crate::oracle::SpreadOracle`]: the
//! forward Monte-Carlo [`Evaluator`] (the paper's reference, used by
//! [`select_nominees`]) or the RR-sketch oracle of `imdpp-sketch`
//! (via [`select_nominees_with_oracle`]), which answers each query from an
//! amortized coverage scan instead of fresh simulations.

use crate::eval::Evaluator;
use crate::oracle::SpreadOracle;
use crate::problem::ImdppInstance;
use imdpp_graph::{ItemId, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(user, item)` pair considered for seeding.
pub type Nominee = (UserId, ItemId);

/// Configuration of the nominee-selection procedure.
#[derive(Clone, Copy, Debug)]
pub struct NomineeSelectionConfig {
    /// Hard cap on the number of nominees selected (`None` = budget-limited
    /// only).
    pub max_nominees: Option<usize>,
    /// Stop as soon as the best available marginal gain is non-positive.
    pub stop_on_nonpositive_gain: bool,
}

impl Default for NomineeSelectionConfig {
    fn default() -> Self {
        NomineeSelectionConfig {
            max_nominees: None,
            stop_on_nonpositive_gain: true,
        }
    }
}

#[derive(Debug)]
struct HeapEntry {
    ratio: f64,
    gain: f64,
    nominee: Nominee,
    /// The |N| at which `ratio` was last computed (CELF staleness marker).
    evaluated_at: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ratio == other.ratio && self.nominee == other.nominee
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .partial_cmp(&other.ratio)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.nominee.0 .0.cmp(&self.nominee.0 .0))
            .then_with(|| other.nominee.1 .0.cmp(&self.nominee.1 .0))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of nominee selection.
#[derive(Clone, Debug, Default)]
pub struct NomineeSelection {
    /// The selected nominees in selection order.
    pub nominees: Vec<Nominee>,
    /// The total cost of the selected nominees.
    pub total_cost: f64,
    /// The static objective value `f(N)` of the selected set.
    pub objective: f64,
    /// How many spread evaluations were spent (for the CELF-vs-plain bench).
    pub evaluations: usize,
}

/// Runs MCP nominee selection over the given universe with the forward
/// Monte-Carlo estimator (the paper's reference configuration); a shorthand
/// for [`select_nominees_with_oracle`] with the evaluator as the oracle.
///
/// `universe` is typically [`crate::problem::ImdppInstance::nominee_universe`].
pub fn select_nominees(
    evaluator: &Evaluator<'_>,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    select_nominees_with_oracle(evaluator.instance(), evaluator, universe, config)
}

/// Runs MCP nominee selection with an arbitrary [`SpreadOracle`] estimating
/// the static objective `f(N)` — forward Monte-Carlo
/// ([`crate::eval::Evaluator`]) or the RR-sketch oracle of `imdpp-sketch`.
pub fn select_nominees_with_oracle(
    instance: &ImdppInstance,
    oracle: &dyn SpreadOracle,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    let budget = instance.budget();
    let mut selected: Vec<Nominee> = Vec::new();
    let mut spent = 0.0f64;
    let mut current_value = 0.0f64;
    let mut evaluations = 0usize;

    // Initial singleton gains.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(universe.len());
    for &(u, x) in universe {
        let cost = instance.cost(u, x);
        if cost > budget {
            continue;
        }
        let gain = oracle.static_spread(&[(u, x)]);
        evaluations += 1;
        heap.push(HeapEntry {
            ratio: gain / cost,
            gain,
            nominee: (u, x),
            evaluated_at: 0,
        });
    }

    while let Some(top) = heap.pop() {
        if let Some(max) = config.max_nominees {
            if selected.len() >= max {
                break;
            }
        }
        let (u, x) = top.nominee;
        let cost = instance.cost(u, x);
        if cost > budget - spent {
            // Unaffordable now; it can never become affordable again.
            continue;
        }
        if top.evaluated_at == selected.len() {
            // Fresh evaluation: accept or stop.
            if config.stop_on_nonpositive_gain && top.gain <= 0.0 {
                break;
            }
            selected.push((u, x));
            spent += cost;
            current_value += top.gain;
        } else {
            // Stale: re-evaluate the marginal gain against the current set.
            let mut with = selected.clone();
            with.push((u, x));
            let value_with = oracle.static_spread(&with);
            evaluations += 1;
            let gain = value_with - current_value;
            heap.push(HeapEntry {
                ratio: gain / cost,
                gain,
                nominee: (u, x),
                evaluated_at: selected.len(),
            });
        }
    }

    // Recompute the exact objective of the final set once.
    let objective = if selected.is_empty() {
        0.0
    } else {
        oracle.static_spread(&selected)
    };
    NomineeSelection {
        nominees: selected,
        total_cost: spent,
        objective,
        evaluations,
    }
}

/// Plain (non-lazy) greedy MCP selection.  Exists for the ablation benchmark
/// comparing CELF lazy evaluation against the textbook greedy; produces the
/// same selection when the objective is submodular.
pub fn select_nominees_plain_greedy(
    evaluator: &Evaluator<'_>,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    select_nominees_plain_greedy_with_oracle(evaluator.instance(), evaluator, universe, config)
}

/// Plain greedy MCP selection with an arbitrary [`SpreadOracle`].
pub fn select_nominees_plain_greedy_with_oracle(
    instance: &ImdppInstance,
    oracle: &dyn SpreadOracle,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    let budget = instance.budget();
    let mut remaining: Vec<Nominee> = universe
        .iter()
        .copied()
        .filter(|&(u, x)| instance.cost(u, x) <= budget)
        .collect();
    let mut selected: Vec<Nominee> = Vec::new();
    let mut spent = 0.0;
    let mut current_value = 0.0;
    let mut evaluations = 0usize;

    loop {
        if let Some(max) = config.max_nominees {
            if selected.len() >= max {
                break;
            }
        }
        let mut best: Option<(usize, f64, f64)> = None; // (index, gain, ratio)
        for (i, &(u, x)) in remaining.iter().enumerate() {
            let cost = instance.cost(u, x);
            if cost > budget - spent {
                continue;
            }
            let mut with = selected.clone();
            with.push((u, x));
            let gain = oracle.static_spread(&with) - current_value;
            evaluations += 1;
            let ratio = gain / cost;
            if best.is_none_or(|(_, _, r)| ratio > r) {
                best = Some((i, gain, ratio));
            }
        }
        match best {
            Some((i, gain, _)) => {
                if config.stop_on_nonpositive_gain && gain <= 0.0 {
                    break;
                }
                let (u, x) = remaining.remove(i);
                spent += instance.cost(u, x);
                current_value += gain;
                selected.push((u, x));
            }
            None => break,
        }
    }
    let objective = if selected.is_empty() {
        0.0
    } else {
        oracle.static_spread(&selected)
    };
    NomineeSelection {
        nominees: selected,
        total_cost: spent,
        objective,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CostModel, ImdppInstance};
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, 2).unwrap()
    }

    #[test]
    fn selection_respects_budget() {
        let inst = instance(2.0);
        let ev = Evaluator::new(&inst, 8, 1);
        let universe = inst.nominee_universe(None);
        let sel = select_nominees(&ev, &universe, &NomineeSelectionConfig::default());
        assert!(sel.total_cost <= inst.budget() + 1e-9);
        assert!(sel.nominees.len() <= 2);
        assert!(!sel.nominees.is_empty());
    }

    #[test]
    fn selection_prefers_influential_users() {
        let inst = instance(1.0);
        let ev = Evaluator::new(&inst, 32, 2);
        let universe = inst.nominee_universe(None);
        let sel = select_nominees(&ev, &universe, &NomineeSelectionConfig::default());
        assert_eq!(sel.nominees.len(), 1);
        // User 5 has no out-edges; it can never be the single best nominee.
        assert_ne!(sel.nominees[0].0, UserId(5));
        assert!(sel.objective >= 1.0);
    }

    #[test]
    fn max_nominees_caps_the_selection() {
        let inst = instance(10.0);
        let ev = Evaluator::new(&inst, 8, 3);
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig {
            max_nominees: Some(2),
            ..Default::default()
        };
        let sel = select_nominees(&ev, &universe, &cfg);
        assert_eq!(sel.nominees.len(), 2);
    }

    #[test]
    fn empty_universe_selects_nothing() {
        let inst = instance(3.0);
        let ev = Evaluator::new(&inst, 4, 4);
        let sel = select_nominees(&ev, &[], &NomineeSelectionConfig::default());
        assert!(sel.nominees.is_empty());
        assert_eq!(sel.objective, 0.0);
        assert_eq!(sel.total_cost, 0.0);
    }

    #[test]
    fn lazy_and_plain_greedy_agree_on_small_instances() {
        let inst = instance(2.0);
        let ev = Evaluator::new(&inst, 64, 5);
        let universe = inst.nominee_universe(Some(4));
        let cfg = NomineeSelectionConfig::default();
        let lazy = select_nominees(&ev, &universe, &cfg);
        let plain = select_nominees_plain_greedy(&ev, &universe, &cfg);
        // Objectives must be very close (identical estimator seeds).
        assert!((lazy.objective - plain.objective).abs() < 0.5);
        // CELF must not use more evaluations than plain greedy.
        assert!(lazy.evaluations <= plain.evaluations);
    }

    #[test]
    fn unaffordable_nominees_are_skipped() {
        let scenario = toy_scenario();
        let mut costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        // Make user 0 (the most influential) unaffordable.
        for x in scenario.items() {
            costs.set_cost(UserId(0), x, 100.0);
        }
        let inst = ImdppInstance::new(scenario, costs, 2.0, 2).unwrap();
        let ev = Evaluator::new(&inst, 8, 6);
        let universe = inst.nominee_universe(None);
        let sel = select_nominees(&ev, &universe, &NomineeSelectionConfig::default());
        assert!(sel.nominees.iter().all(|(u, _)| *u != UserId(0)));
    }
}
