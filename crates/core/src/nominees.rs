//! Nominee selection by marginal cost-performance ratio (Procedure 2 of the
//! paper, `selectNominees`), with CELF-style lazy re-evaluation.
//!
//! A *nominee* is a `(user, item)` pair that may later be turned into a seed
//! `(user, item, t)` by TDSI.  TMI selects nominees greedily by the marginal
//! cost-performance ratio
//!
//! ```text
//! MCP(u, x | N) = (f(N ∪ {(u,x)}) − f(N)) / c_{u,x}
//! ```
//!
//! where `f` is the static first-promotion spread.  Because `f` is
//! submodular under static probabilities (Lemma 1), stale marginal gains
//! upper-bound fresh ones, so the classic CELF lazy evaluation applies and
//! drastically reduces the number of spread estimations.
//!
//! Every `f(N)` query goes through a [`crate::oracle::SpreadOracle`]: the
//! forward Monte-Carlo [`Evaluator`] (the paper's reference, used by
//! [`select_nominees`]) or the RR-sketch oracle of `imdpp-sketch`
//! (via [`select_nominees_with_oracle`]), which answers each query from an
//! amortized coverage scan instead of fresh simulations.

use crate::eval::Evaluator;
use crate::oracle::SpreadOracle;
use crate::problem::ImdppInstance;
use imdpp_graph::{ItemId, UserId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A `(user, item)` pair considered for seeding.
pub type Nominee = (UserId, ItemId);

/// Configuration of the nominee-selection procedure.
#[derive(Clone, Copy, Debug)]
pub struct NomineeSelectionConfig {
    /// Hard cap on the number of nominees selected (`None` = budget-limited
    /// only).
    pub max_nominees: Option<usize>,
    /// Stop as soon as the best available marginal gain is non-positive.
    pub stop_on_nonpositive_gain: bool,
}

impl Default for NomineeSelectionConfig {
    fn default() -> Self {
        NomineeSelectionConfig {
            max_nominees: None,
            stop_on_nonpositive_gain: true,
        }
    }
}

#[derive(Debug)]
struct HeapEntry {
    ratio: f64,
    gain: f64,
    /// `f(N ∪ {nominee})` at evaluation time.  Installed as the running
    /// objective on acceptance so the selection state is always the exact
    /// oracle value of the selected set — never an accumulated sum of
    /// gains — which is what lets a prefix re-run reproduce the tail bit
    /// for bit (see [`select_nominees_with_prefix`]).
    value_with: f64,
    nominee: Nominee,
    /// The |N| at which `ratio` was last computed (CELF staleness marker).
    evaluated_at: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.ratio == other.ratio && self.nominee == other.nominee
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .partial_cmp(&other.ratio)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.nominee.0 .0.cmp(&self.nominee.0 .0))
            .then_with(|| other.nominee.1 .0.cmp(&self.nominee.1 .0))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Result of nominee selection.
#[derive(Clone, Debug, Default)]
pub struct NomineeSelection {
    /// The selected nominees in selection order.
    pub nominees: Vec<Nominee>,
    /// The total cost of the selected nominees.
    pub total_cost: f64,
    /// The static objective value `f(N)` of the selected set.
    pub objective: f64,
    /// How many spread evaluations were spent (for the CELF-vs-plain bench).
    pub evaluations: usize,
}

/// Runs MCP nominee selection over the given universe with the forward
/// Monte-Carlo estimator (the paper's reference configuration); a shorthand
/// for [`select_nominees_with_oracle`] with the evaluator as the oracle.
///
/// `universe` is typically [`crate::problem::ImdppInstance::nominee_universe`].
pub fn select_nominees(
    evaluator: &Evaluator<'_>,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    select_nominees_with_oracle(evaluator.instance(), evaluator, universe, config)
}

/// Runs MCP nominee selection with an arbitrary [`SpreadOracle`] estimating
/// the static objective `f(N)` — forward Monte-Carlo
/// ([`crate::eval::Evaluator`]) or the RR-sketch oracle of `imdpp-sketch`.
pub fn select_nominees_with_oracle(
    instance: &ImdppInstance,
    oracle: &dyn SpreadOracle,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    select_nominees_with_prefix(instance, oracle, universe, config, &[])
}

/// MCP nominee selection that continues from an already-committed `prefix`:
/// the prefix nominees are adopted verbatim (in order, with their costs
/// charged against the budget) and the CELF loop greedily extends them from
/// `universe` exactly as [`select_nominees_with_oracle`] would have, had it
/// reached the same state.  With an empty prefix this *is*
/// [`select_nominees_with_oracle`] — bit for bit, including the evaluation
/// schedule.
///
/// This is the repair primitive of the engine's maintained solutions: when
/// an update invalidates the greedy trace at position `p`, re-running
/// selection with `prefix = nominees[..p]` recomputes only the tail.
///
/// Prefix nominees are excluded from the candidate pool; the prefix is
/// assumed affordable (it was selected under the same budget).
pub fn select_nominees_with_prefix(
    instance: &ImdppInstance,
    oracle: &dyn SpreadOracle,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
    prefix: &[Nominee],
) -> NomineeSelection {
    let budget = instance.budget();
    let mut selected: Vec<Nominee> = prefix.to_vec();
    // lint: allow(float-accum) — folds over the prefix in its recorded
    // order, so the sum is bit-stable for a given prefix.
    let mut spent: f64 = prefix.iter().map(|&(u, x)| instance.cost(u, x)).sum();
    let mut evaluations = 0usize;
    let mut current_value = if selected.is_empty() {
        0.0
    } else {
        evaluations += 1;
        oracle.static_spread(&selected)
    };

    // Initial gains: marginal with respect to the (possibly empty) prefix.
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(universe.len());
    for &(u, x) in universe {
        if selected.contains(&(u, x)) {
            continue;
        }
        let cost = instance.cost(u, x);
        if cost > budget {
            continue;
        }
        let value_with = if selected.is_empty() {
            oracle.static_spread(&[(u, x)])
        } else {
            let mut with = selected.clone();
            with.push((u, x));
            oracle.static_spread(&with)
        };
        let gain = value_with - current_value;
        evaluations += 1;
        heap.push(HeapEntry {
            ratio: gain / cost,
            gain,
            value_with,
            nominee: (u, x),
            evaluated_at: selected.len(),
        });
    }

    while let Some(top) = heap.pop() {
        if let Some(max) = config.max_nominees {
            if selected.len() >= max {
                break;
            }
        }
        let (u, x) = top.nominee;
        let cost = instance.cost(u, x);
        if cost > budget - spent {
            // Unaffordable now; it can never become affordable again.
            continue;
        }
        if top.evaluated_at == selected.len() {
            // Fresh evaluation: accept or stop.
            if config.stop_on_nonpositive_gain && top.gain <= 0.0 {
                break;
            }
            selected.push((u, x));
            // lint: allow(float-accum) — budget spend folds over the
            // selection order, which is itself deterministic; costs are
            // instance inputs, not oracle estimates.
            spent += cost;
            // Install the exact oracle value, not `current_value + gain`:
            // the two differ by rounding, and only the former makes the
            // running state a pure function of `selected`.
            current_value = top.value_with;
        } else {
            // Stale: re-evaluate the marginal gain against the current set.
            let mut with = selected.clone();
            with.push((u, x));
            let value_with = oracle.static_spread(&with);
            evaluations += 1;
            let gain = value_with - current_value;
            heap.push(HeapEntry {
                ratio: gain / cost,
                gain,
                value_with,
                nominee: (u, x),
                evaluated_at: selected.len(),
            });
        }
    }

    // Recompute the exact objective of the final set once.
    let objective = if selected.is_empty() {
        0.0
    } else {
        oracle.static_spread(&selected)
    };
    NomineeSelection {
        nominees: selected,
        total_cost: spent,
        objective,
        evaluations,
    }
}

/// Plain (non-lazy) greedy MCP selection.  Exists for the ablation benchmark
/// comparing CELF lazy evaluation against the textbook greedy; produces the
/// same selection when the objective is submodular.
pub fn select_nominees_plain_greedy(
    evaluator: &Evaluator<'_>,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    select_nominees_plain_greedy_with_oracle(evaluator.instance(), evaluator, universe, config)
}

/// Plain greedy MCP selection with an arbitrary [`SpreadOracle`].
pub fn select_nominees_plain_greedy_with_oracle(
    instance: &ImdppInstance,
    oracle: &dyn SpreadOracle,
    universe: &[Nominee],
    config: &NomineeSelectionConfig,
) -> NomineeSelection {
    let budget = instance.budget();
    let mut remaining: Vec<Nominee> = universe
        .iter()
        .copied()
        .filter(|&(u, x)| instance.cost(u, x) <= budget)
        .collect();
    let mut selected: Vec<Nominee> = Vec::new();
    let mut spent = 0.0;
    let mut current_value = 0.0;
    let mut evaluations = 0usize;

    loop {
        if let Some(max) = config.max_nominees {
            if selected.len() >= max {
                break;
            }
        }
        // (index, gain, exact value with the nominee, ratio)
        let mut best: Option<(usize, f64, f64, f64)> = None;
        for (i, &(u, x)) in remaining.iter().enumerate() {
            let cost = instance.cost(u, x);
            if cost > budget - spent {
                continue;
            }
            let mut with = selected.clone();
            with.push((u, x));
            let value_with = oracle.static_spread(&with);
            let gain = value_with - current_value;
            evaluations += 1;
            let ratio = gain / cost;
            if best.is_none_or(|(_, _, _, r)| ratio > r) {
                best = Some((i, gain, value_with, ratio));
            }
        }
        match best {
            Some((i, gain, value_with, _)) => {
                if config.stop_on_nonpositive_gain && gain <= 0.0 {
                    break;
                }
                let (u, x) = remaining.remove(i);
                // lint: allow(float-accum) — budget spend folds over the
                // selection order, which is itself deterministic; costs are
                // instance inputs, not oracle estimates.
                spent += instance.cost(u, x);
                // Install the exact oracle value, not `current_value + gain`:
                // an accumulated gain sum drifts by ulps from the oracle and
                // can flip later ratio comparisons (the PR 7 CELF bug class).
                current_value = value_with;
                selected.push((u, x));
            }
            None => break,
        }
    }
    let objective = if selected.is_empty() {
        0.0
    } else {
        oracle.static_spread(&selected)
    };
    NomineeSelection {
        nominees: selected,
        total_cost: spent,
        objective,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{CostModel, ImdppInstance};
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, 2).unwrap()
    }

    #[test]
    fn selection_respects_budget() {
        let inst = instance(2.0);
        let ev = Evaluator::new(&inst, 8, 1);
        let universe = inst.nominee_universe(None);
        let sel = select_nominees(&ev, &universe, &NomineeSelectionConfig::default());
        assert!(sel.total_cost <= inst.budget() + 1e-9);
        assert!(sel.nominees.len() <= 2);
        assert!(!sel.nominees.is_empty());
    }

    #[test]
    fn selection_prefers_influential_users() {
        let inst = instance(1.0);
        let ev = Evaluator::new(&inst, 32, 2);
        let universe = inst.nominee_universe(None);
        let sel = select_nominees(&ev, &universe, &NomineeSelectionConfig::default());
        assert_eq!(sel.nominees.len(), 1);
        // User 5 has no out-edges; it can never be the single best nominee.
        assert_ne!(sel.nominees[0].0, UserId(5));
        assert!(sel.objective >= 1.0);
    }

    #[test]
    fn max_nominees_caps_the_selection() {
        let inst = instance(10.0);
        let ev = Evaluator::new(&inst, 8, 3);
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig {
            max_nominees: Some(2),
            ..Default::default()
        };
        let sel = select_nominees(&ev, &universe, &cfg);
        assert_eq!(sel.nominees.len(), 2);
    }

    #[test]
    fn empty_universe_selects_nothing() {
        let inst = instance(3.0);
        let ev = Evaluator::new(&inst, 4, 4);
        let sel = select_nominees(&ev, &[], &NomineeSelectionConfig::default());
        assert!(sel.nominees.is_empty());
        assert_eq!(sel.objective, 0.0);
        assert_eq!(sel.total_cost, 0.0);
    }

    #[test]
    fn lazy_and_plain_greedy_agree_on_small_instances() {
        let inst = instance(2.0);
        let ev = Evaluator::new(&inst, 64, 5);
        let universe = inst.nominee_universe(Some(4));
        let cfg = NomineeSelectionConfig::default();
        let lazy = select_nominees(&ev, &universe, &cfg);
        let plain = select_nominees_plain_greedy(&ev, &universe, &cfg);
        // Objectives must be very close (identical estimator seeds).
        assert!((lazy.objective - plain.objective).abs() < 0.5);
        // CELF must not use more evaluations than plain greedy.
        assert!(lazy.evaluations <= plain.evaluations);
    }

    #[test]
    fn empty_prefix_is_plain_selection() {
        let inst = instance(3.0);
        let ev = Evaluator::new(&inst, 16, 9);
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig::default();
        let plain = select_nominees_with_oracle(&inst, &ev, &universe, &cfg);
        let prefixed = select_nominees_with_prefix(&inst, &ev, &universe, &cfg, &[]);
        assert_eq!(plain.nominees, prefixed.nominees);
        assert_eq!(plain.objective, prefixed.objective);
        assert_eq!(plain.total_cost, prefixed.total_cost);
        assert_eq!(plain.evaluations, prefixed.evaluations);
    }

    /// A deterministic, *exactly* submodular coverage oracle: nominee
    /// `(u, x)` covers a fixed pseudo-random element set and `f(N)` is the
    /// size of the union.  The Monte-Carlo evaluator's sampled estimates
    /// can violate submodularity, under which lazy CELF legitimately
    /// diverges from fresh greedy — so the prefix-repair invariants are
    /// asserted against the oracle class they are actually claimed for
    /// (exact coverage, like the RR sketch).
    struct CoverOracle;

    impl CoverOracle {
        fn elements(nominee: Nominee) -> impl Iterator<Item = u32> {
            let (UserId(u), ItemId(x)) = nominee;
            let count = 3 + (u * 5 + x * 11) % 13;
            (0..count).map(move |k| (u * 31 + x * 17 + k * 7) % 101)
        }
    }

    impl SpreadOracle for CoverOracle {
        fn static_spread(&self, nominees: &[Nominee]) -> f64 {
            let mut seen = [false; 101];
            let mut total = 0usize;
            for &n in nominees {
                for e in Self::elements(n) {
                    if !seen[e as usize] {
                        seen[e as usize] = true;
                        total += 1;
                    }
                }
            }
            total as f64
        }
    }

    #[test]
    fn selection_from_its_own_prefix_reproduces_the_tail() {
        let inst = instance(3.0);
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig::default();
        let full = select_nominees_with_oracle(&inst, &CoverOracle, &universe, &cfg);
        assert!(full.nominees.len() >= 2, "need a non-trivial trace");
        for p in 0..=full.nominees.len() {
            let repaired = select_nominees_with_prefix(
                &inst,
                &CoverOracle,
                &universe,
                &cfg,
                &full.nominees[..p],
            );
            assert_eq!(repaired.nominees, full.nominees, "prefix length {p}");
            assert_eq!(repaired.objective, full.objective, "prefix length {p}");
            assert!((repaired.total_cost - full.total_cost).abs() < 1e-12);
        }
    }

    #[test]
    fn prefix_cost_counts_against_the_budget() {
        // Budget 2 with unit costs: a full-length prefix leaves no room.
        let inst = instance(2.0);
        let universe = inst.nominee_universe(None);
        let cfg = NomineeSelectionConfig::default();
        let full = select_nominees_with_oracle(&inst, &CoverOracle, &universe, &cfg);
        assert!(!full.nominees.is_empty());
        let repaired =
            select_nominees_with_prefix(&inst, &CoverOracle, &universe, &cfg, &full.nominees);
        assert_eq!(repaired.nominees, full.nominees);
        assert!(repaired.total_cost <= inst.budget() + 1e-9);
    }

    #[test]
    fn unaffordable_nominees_are_skipped() {
        let scenario = toy_scenario();
        let mut costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        // Make user 0 (the most influential) unaffordable.
        for x in scenario.items() {
            costs.set_cost(UserId(0), x, 100.0);
        }
        let inst = ImdppInstance::new(scenario, costs, 2.0, 2).unwrap();
        let ev = Evaluator::new(&inst, 8, 6);
        let universe = inst.nominee_universe(None);
        let sel = select_nominees(&ev, &universe, &NomineeSelectionConfig::default());
        assert!(sel.nominees.iter().all(|(u, _)| *u != UserId(0)));
    }
}
