//! Promoting-order metrics for target markets within a group `G`
//! (Sec. IV-B and the Sec. VI-D comparison): Antagonistic Extent (AE),
//! Profitability (PF), market Size (SZ), Relative Market Share (RMS) and a
//! Random baseline (RD).

use crate::eval::Evaluator;
use crate::market::{average_relevance_over_population, TargetMarket};
use crate::problem::ImdppInstance;
use imdpp_graph::ItemId;
use imdpp_kg::RelationKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The metric used to order the target markets of a group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarketOrdering {
    /// Antagonistic Extent: markets whose items are *less* substitutable to
    /// the other markets' items are promoted earlier (ascending AE).  The
    /// paper's default.
    #[default]
    AntagonisticExtent,
    /// Profitability: expected adoptions of the market's nominees minus their
    /// cost; larger first.
    Profitability,
    /// Market size (number of users); larger first.
    Size,
    /// Relative market share of the promoted items; larger first.
    RelativeMarketShare,
    /// Random order (baseline).
    Random,
}

impl MarketOrdering {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            MarketOrdering::AntagonisticExtent => "AE",
            MarketOrdering::Profitability => "PF",
            MarketOrdering::Size => "SZ",
            MarketOrdering::RelativeMarketShare => "RMS",
            MarketOrdering::Random => "RD",
        }
    }

    /// All ordering metrics (the series of Fig. 11).
    pub fn all() -> [MarketOrdering; 5] {
        [
            MarketOrdering::AntagonisticExtent,
            MarketOrdering::Profitability,
            MarketOrdering::Size,
            MarketOrdering::RelativeMarketShare,
            MarketOrdering::Random,
        ]
    }
}

/// Antagonistic Extent of market `i` within its group: the total average
/// substitutable relevance between the items it promotes and the items the
/// other markets of the group promote.
pub fn antagonistic_extent(
    instance: &ImdppInstance,
    markets: &[TargetMarket],
    group: &[usize],
    market: usize,
) -> f64 {
    let perception = instance.scenario().initial_perception();
    let my_items = markets[market].items();
    let mut ae = 0.0;
    for &other in group {
        if other == market {
            continue;
        }
        for &x in &my_items {
            for y in markets[other].items() {
                if x == y {
                    continue;
                }
                ae += average_relevance_over_population(
                    perception,
                    64,
                    x,
                    y,
                    RelationKind::Substitutable,
                );
            }
        }
    }
    ae
}

/// Profitability of a market: the static expected spread of its nominees
/// minus their total hiring cost.
pub fn profitability(
    instance: &ImdppInstance,
    evaluator: &Evaluator<'_>,
    market: &TargetMarket,
) -> f64 {
    let spread = evaluator.static_first_promotion_spread(&market.nominees);
    let cost: f64 = market
        .nominees
        .iter()
        .map(|&(u, x)| instance.cost(u, x))
        .sum();
    spread - cost
}

/// Relative market share of the items a market promotes: for each item, the
/// share of users preferring it most among itself and its substitutes,
/// divided by the largest substitute share; averaged over the market's items.
pub fn relative_market_share(instance: &ImdppInstance, market: &TargetMarket) -> f64 {
    let scenario = instance.scenario();
    let perception = scenario.initial_perception();
    let items = market.items();
    if items.is_empty() {
        return 0.0;
    }
    let share_of = |item: ItemId| -> f64 {
        scenario
            .users()
            .map(|u| scenario.base_preference(u, item))
            .sum::<f64>()
    };
    let mut total = 0.0;
    for &x in &items {
        let substitutes: Vec<ItemId> = scenario
            .items()
            .filter(|&y| {
                y != x
                    && average_relevance_over_population(
                        perception,
                        64,
                        x,
                        y,
                        RelationKind::Substitutable,
                    ) > 0.0
            })
            .collect();
        let own = share_of(x);
        let best_rival = substitutes
            .iter()
            .map(|&y| share_of(y))
            .fold(0.0f64, f64::max);
        total += if best_rival <= 0.0 {
            1.0
        } else {
            own / best_rival
        };
    }
    total / items.len() as f64
}

/// Orders the markets of a group according to the chosen metric; returns the
/// group's market indices in promoting order.
pub fn order_group(
    instance: &ImdppInstance,
    evaluator: &Evaluator<'_>,
    markets: &[TargetMarket],
    group: &[usize],
    ordering: MarketOrdering,
    seed: u64,
) -> Vec<usize> {
    let mut order: Vec<usize> = group.to_vec();
    match ordering {
        MarketOrdering::AntagonisticExtent => {
            let mut keyed: Vec<(f64, usize)> = order
                .iter()
                .map(|&i| (antagonistic_extent(instance, markets, group, i), i))
                .collect();
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            order = keyed.into_iter().map(|(_, i)| i).collect();
        }
        MarketOrdering::Profitability => {
            let mut keyed: Vec<(f64, usize)> = order
                .iter()
                .map(|&i| (profitability(instance, evaluator, &markets[i]), i))
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            order = keyed.into_iter().map(|(_, i)| i).collect();
        }
        MarketOrdering::Size => {
            order.sort_by_key(|&i| std::cmp::Reverse(markets[i].users.len()));
        }
        MarketOrdering::RelativeMarketShare => {
            let mut keyed: Vec<(f64, usize)> = order
                .iter()
                .map(|&i| (relative_market_share(instance, &markets[i]), i))
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            order = keyed.into_iter().map(|(_, i)| i).collect();
        }
        MarketOrdering::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::UserId;

    fn instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 4.0, 3).unwrap()
    }

    fn market(index: usize, nominees: Vec<(UserId, ItemId)>, users: Vec<UserId>) -> TargetMarket {
        TargetMarket {
            index,
            nominees,
            users,
            diameter: 2,
        }
    }

    fn two_markets() -> Vec<TargetMarket> {
        vec![
            market(
                0,
                vec![(UserId(0), ItemId(0))],
                vec![UserId(0), UserId(1), UserId(2)],
            ),
            market(1, vec![(UserId(2), ItemId(1))], vec![UserId(2), UserId(4)]),
        ]
    }

    #[test]
    fn ordering_names_and_all() {
        assert_eq!(MarketOrdering::AntagonisticExtent.name(), "AE");
        assert_eq!(MarketOrdering::all().len(), 5);
        assert_eq!(
            MarketOrdering::default(),
            MarketOrdering::AntagonisticExtent
        );
    }

    #[test]
    fn antagonistic_extent_is_zero_without_substitutes() {
        // The Fig. 1 KG defines no substitutable relations, so AE must be 0.
        let inst = instance();
        let markets = two_markets();
        let ae = antagonistic_extent(&inst, &markets, &[0, 1], 0);
        assert_eq!(ae, 0.0);
    }

    #[test]
    fn profitability_decreases_with_cost() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 1);
        let m = &two_markets()[0];
        let pf = profitability(&inst, &ev, m);
        // Spread of one nominee is at least 1.0 (the seed itself), cost is 1.0.
        assert!(pf >= 0.0);
        // A pricier cost model lowers profitability.
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 5.0);
        let pricey = ImdppInstance::new(scenario, costs, 20.0, 3).unwrap();
        let ev2 = Evaluator::new(&pricey, 16, 1);
        assert!(profitability(&pricey, &ev2, m) < pf);
    }

    #[test]
    fn relative_market_share_defaults_to_one_without_substitutes() {
        let inst = instance();
        let m = &two_markets()[0];
        assert!((relative_market_share(&inst, m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn size_ordering_puts_bigger_market_first() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 1);
        let markets = two_markets();
        let order = order_group(&inst, &ev, &markets, &[0, 1], MarketOrdering::Size, 7);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn random_ordering_is_a_permutation() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 1);
        let markets = two_markets();
        let order = order_group(&inst, &ev, &markets, &[0, 1], MarketOrdering::Random, 3);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }

    #[test]
    fn every_ordering_returns_all_markets() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 1);
        let markets = two_markets();
        for ordering in MarketOrdering::all() {
            let order = order_group(&inst, &ev, &markets, &[0, 1], ordering, 11);
            assert_eq!(order.len(), 2, "{}", ordering.name());
        }
    }
}
