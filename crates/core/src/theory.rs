//! Constructions used by the paper's theoretical arguments, exercised by the
//! test suite:
//!
//! * the set-cover gadget of the inapproximability proof (Theorem 1),
//! * an instance demonstrating that the importance-aware influence function
//!   is **not** monotone increasing across promotions (the phenomenon behind
//!   Fig. 7 / Lemma 1's second half): seeding a worthless substitutable item
//!   early depresses the preference for a valuable item later,
//! * empirical submodularity / monotonicity checks for the restricted
//!   (static, single-promotion) problem of Lemma 1.

use crate::problem::{CostModel, ImdppInstance};
use imdpp_diffusion::{DynamicsConfig, Scenario, Seed, SeedGroup};
use imdpp_graph::{ItemId, SocialGraph, UserId};
use imdpp_kg::{
    hin::KnowledgeGraphBuilder, EdgeType, ItemCatalog, MetaGraph, NodeType, RelevanceModel,
};
use std::sync::Arc;

/// A set-cover instance: `universe_size` elements and a family of sets given
/// as element-index lists.
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Number of elements in the ground set `U`.
    pub universe_size: usize,
    /// The sets of the family `S`, each a list of element indices.
    pub sets: Vec<Vec<usize>>,
    /// The cover size `k` asked about by the decision problem.
    pub k: usize,
}

/// The IMDPP gadget built from a set-cover instance (a simplified version of
/// the Theorem 1 construction, without the `|U|^c` path blow-up):
/// set nodes point at the element nodes they cover; seeding the set nodes of
/// a cover makes every element node adopt the promoted item.
#[derive(Clone, Debug)]
pub struct SetCoverGadget {
    /// The IMDPP instance.
    pub instance: ImdppInstance,
    /// The user node of each set (index aligned with `SetCoverInstance::sets`).
    pub set_users: Vec<UserId>,
    /// The user node of each element.
    pub element_users: Vec<UserId>,
    /// The single promoted item.
    pub item: ItemId,
}

/// Builds the set-cover gadget: one user per set, one user per element, a
/// directed full-strength edge from a set user to every element it covers, a
/// single item with importance 1 that everybody fully prefers, unit seeding
/// costs for set users and prohibitive costs for element users, and budget
/// `k`.
pub fn set_cover_gadget(sc: &SetCoverInstance) -> SetCoverGadget {
    let set_count = sc.sets.len();
    let user_count = set_count + sc.universe_size;
    let set_users: Vec<UserId> = (0..set_count).map(UserId::from_index).collect();
    let element_users: Vec<UserId> = (set_count..user_count).map(UserId::from_index).collect();

    let mut edges = Vec::new();
    for (s_idx, covered) in sc.sets.iter().enumerate() {
        for &e in covered {
            assert!(e < sc.universe_size, "element index out of range");
            edges.push((set_users[s_idx], element_users[e], 1.0));
        }
    }
    let social = SocialGraph::from_influence_edges(user_count, edges, true);

    // One item, trivially connected KG (no relevant pairs needed).
    let mut kg = KnowledgeGraphBuilder::new();
    let item_node = kg.add_node(NodeType::Item, "covered-item");
    let feature = kg.add_node(NodeType::Feature, "feature");
    kg.add_fact(item_node, feature, EdgeType::Supports);
    let kg = kg.build();
    let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));
    let catalog = ItemCatalog::uniform(1);

    let scenario = Scenario::builder()
        .social(social)
        .catalog(catalog)
        .relevance(relevance)
        .uniform_base_preference(1.0)
        .dynamics(DynamicsConfig::frozen())
        .build()
        .expect("gadget scenario must be valid");

    let mut costs = CostModel::uniform(user_count, 1, 1.0);
    for &e in &element_users {
        costs.set_cost(e, ItemId(0), 1_000.0);
    }
    let instance =
        ImdppInstance::new(scenario, costs, sc.k as f64, 1).expect("gadget instance must be valid");
    SetCoverGadget {
        instance,
        set_users,
        element_users,
        item: ItemId(0),
    }
}

impl SetCoverGadget {
    /// The seed group corresponding to choosing the given sets as a cover.
    pub fn seeds_for_cover(&self, chosen_sets: &[usize]) -> SeedGroup {
        chosen_sets
            .iter()
            .map(|&s| Seed::new(self.set_users[s], self.item, 1))
            .collect()
    }

    /// Number of element users covered (adopting) under a deterministic
    /// evaluation of the gadget (all probabilities are 1, so one simulation
    /// suffices).
    pub fn covered_elements(&self, seeds: &SeedGroup) -> usize {
        use imdpp_diffusion::simulate;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0);
        let out = simulate(self.instance.scenario(), seeds, 1, &mut rng);
        self.element_users
            .iter()
            .filter(|&&e| out.state().has_adopted(e, self.item))
            .count()
    }
}

/// Builds an instance on which the importance-aware influence function is not
/// monotone across promotions: a worthless item `A` that is a perfect
/// substitute of the valuable item `B`.
///
/// * Users: `s → v` with influence 1.0.
/// * Items: `A` (importance 0), `B` (importance 1), in the same category
///   (substitutable matrix score 1, perceived relevance 0.2 under the
///   initial weighting), no complementary relation.
/// * Everybody's base preference is 1.0; `preference_loss` is 2.5, so an
///   adopted substitute costs 0.5 preference.
///
/// Seeding only `(s, B, 2)` yields σ = 2 (both users adopt `B`);
/// additionally seeding `(s, A, 1)` makes `v` adopt the worthless `A` first,
/// which halves `v`'s preference for `B`, dropping σ to ≈ 1.5.
pub fn non_monotone_instance() -> (ImdppInstance, SeedGroup, SeedGroup) {
    let mut kg = KnowledgeGraphBuilder::new();
    let a = kg.add_node(NodeType::Item, "A");
    let b = kg.add_node(NodeType::Item, "B");
    let cat = kg.add_node(NodeType::Category, "same-need");
    kg.add_fact(a, cat, EdgeType::BelongsTo);
    kg.add_fact(b, cat, EdgeType::BelongsTo);
    let kg = kg.build();
    let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));

    let social = SocialGraph::from_influence_edges(2, vec![(UserId(0), UserId(1), 1.0)], true);
    let catalog = ItemCatalog::from_importances(vec![0.0, 1.0]);
    let dynamics = DynamicsConfig {
        preference_loss: 2.5,
        preference_gain: 0.0,
        extra_adoption_scale: 0.0,
        influence_gain: 0.0,
        ..DynamicsConfig::default()
    };
    let scenario = Scenario::builder()
        .social(social)
        .catalog(catalog)
        .relevance(relevance)
        .uniform_base_preference(1.0)
        .dynamics(dynamics)
        .build()
        .expect("non-monotone scenario must be valid");
    let costs = CostModel::uniform(2, 2, 1.0);
    let instance = ImdppInstance::new(scenario, costs, 10.0, 2).expect("valid instance");

    let small = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(1), 2)]);
    let large = SeedGroup::from_seeds(vec![
        Seed::new(UserId(0), ItemId(0), 1),
        Seed::new(UserId(0), ItemId(1), 2),
    ]);
    (instance, small, large)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::submodular::{check_submodularity_on, SetFunction};

    #[test]
    fn gadget_cover_reaches_every_element() {
        let sc = SetCoverInstance {
            universe_size: 4,
            sets: vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]],
            k: 2,
        };
        let gadget = set_cover_gadget(&sc);
        // {0, 2} is a cover of size 2.
        let cover = gadget.seeds_for_cover(&[0, 2]);
        assert!(gadget.instance.is_feasible(&cover));
        assert_eq!(gadget.covered_elements(&cover), 4);
        // {0} alone covers only two elements.
        let partial = gadget.seeds_for_cover(&[0]);
        assert_eq!(gadget.covered_elements(&partial), 2);
    }

    #[test]
    fn gadget_budget_prevents_seeding_elements_directly() {
        let sc = SetCoverInstance {
            universe_size: 2,
            sets: vec![vec![0], vec![1]],
            k: 1,
        };
        let gadget = set_cover_gadget(&sc);
        let direct =
            SeedGroup::from_seeds(vec![Seed::new(gadget.element_users[0], gadget.item, 1)]);
        assert!(!gadget.instance.is_feasible(&direct));
    }

    #[test]
    fn multi_promotion_sigma_is_not_monotone() {
        let (instance, small, large) = non_monotone_instance();
        let ev = Evaluator::new(&instance, 400, 11);
        let sigma_small = ev.spread(&small);
        let sigma_large = ev.spread(&large);
        // σ({(s,B,2)}) ≈ 2.0; adding (s,A,1) drops it to ≈ 1.5.
        assert!(sigma_small > 1.9, "sigma_small = {sigma_small}");
        assert!(
            sigma_large < sigma_small - 0.2,
            "expected non-monotone drop: {sigma_large} vs {sigma_small}"
        );
    }

    /// Adapter exposing the restricted (static, single-promotion) spread as a
    /// set function over a fixed candidate nominee list.
    struct StaticSpread<'a> {
        evaluator: Evaluator<'a>,
        candidates: Vec<(UserId, ItemId)>,
    }

    impl SetFunction for StaticSpread<'_> {
        fn ground_size(&self) -> usize {
            self.candidates.len()
        }
        fn eval(&mut self, subset: &[usize]) -> f64 {
            let nominees: Vec<(UserId, ItemId)> =
                subset.iter().map(|&i| self.candidates[i]).collect();
            self.evaluator.static_first_promotion_spread(&nominees)
        }
    }

    #[test]
    fn restricted_sigma_is_empirically_monotone_and_submodular() {
        let scenario = imdpp_diffusion::scenario::toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        let instance = ImdppInstance::new(scenario, costs, 10.0, 1).unwrap();
        let evaluator = Evaluator::new(&instance, 200, 5);
        let mut f = StaticSpread {
            evaluator,
            candidates: vec![
                (UserId(0), ItemId(0)),
                (UserId(1), ItemId(0)),
                (UserId(2), ItemId(1)),
            ],
        };
        // Monotone: adding an element never reduces the value (within noise).
        let empty = f.eval(&[]);
        let one = f.eval(&[0]);
        let two = f.eval(&[0, 1]);
        let three = f.eval(&[0, 1, 2]);
        assert!(empty <= one + 0.05);
        assert!(one <= two + 0.05);
        assert!(two <= three + 0.05);
        // Submodular on a lattice of small subsets (with Monte-Carlo tolerance).
        let subsets = vec![vec![], vec![0], vec![0, 1]];
        assert!(check_submodularity_on(&mut f, &subsets, 0.15));
    }
}
