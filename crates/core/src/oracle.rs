//! The [`SpreadOracle`] estimation interface and its dynamic-maintenance
//! extension [`RefreshableOracle`].
//!
//! Nominee selection (Procedure 2), the Dysim driver's TMI stage and the
//! RIS-flavoured baselines only ever query one quantity: the *static
//! first-promotion spread* `f(N)` of a nominee set under frozen dynamics
//! (the conditions of Lemma 1 that make `f` monotone and submodular).  This
//! module abstracts over how `f` is estimated so callers can choose the
//! estimator:
//!
//! * **forward Monte-Carlo** ([`crate::eval::Evaluator`], or the owned
//!   [`crate::eval::MonteCarloOracle`]) — the paper's reference estimator;
//!   unbiased for any dynamics but pays a full simulation per query,
//! * **reverse-reachable sketching** (`imdpp-sketch`'s `SketchOracle`) —
//!   amortizes sampling across queries by maintaining a pool of RR sets per
//!   item; orders of magnitude cheaper per query and incrementally
//!   maintainable when perceptions drift or influence edges change between
//!   promotions.
//!
//! Which estimator a config-driven run uses is selected by
//! [`OracleKind`] on [`crate::dysim::DysimConfig`]; the dispatch lives in
//! `imdpp_sketch::dispatch` and is driven by the `imdpp-engine` `Engine`
//! (this crate cannot construct the sketch without a dependency cycle).
//! See `docs/ARCHITECTURE.md` for guidance on picking an implementation.
//!
//! # Example: a custom oracle drives nominee selection
//!
//! ```
//! use imdpp_core::nominees::{select_nominees_with_oracle, NomineeSelectionConfig};
//! use imdpp_core::{CostModel, ImdppInstance, SpreadOracle};
//! use imdpp_core::nominees::Nominee;
//! use imdpp_diffusion::scenario::toy_scenario;
//!
//! /// A toy estimator: f(N) = number of distinct users in N.
//! struct DistinctUsers;
//! impl SpreadOracle for DistinctUsers {
//!     fn static_spread(&self, nominees: &[Nominee]) -> f64 {
//!         let mut users: Vec<u32> = nominees.iter().map(|(u, _)| u.0).collect();
//!         users.sort_unstable();
//!         users.dedup();
//!         users.len() as f64
//!     }
//! }
//!
//! let scenario = toy_scenario();
//! let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
//! let instance = ImdppInstance::new(scenario, costs, 2.0, 1).unwrap();
//! let universe = instance.nominee_universe(None);
//! let selection = select_nominees_with_oracle(
//!     &instance,
//!     &DistinctUsers,
//!     &universe,
//!     &NomineeSelectionConfig::default(),
//! );
//! assert_eq!(selection.nominees.len(), 2); // budget 2.0 at unit cost
//! ```

use crate::nominees::Nominee;
use imdpp_diffusion::Scenario;
use imdpp_graph::{EdgeUpdate, ItemId, UserId};
use serde::{Deserialize, Serialize};

/// An estimator of the static first-promotion spread `f(N)`.
///
/// Implementations must target the same quantity:
/// the expected importance-weighted number of adoptions when every nominee
/// `(u, x)` is seeded in promotion 1 with `P_pref`, `P_act`, `P_ext` frozen
/// at their initial values.  Estimates should be deterministic for a fixed
/// construction seed so that greedy selections are reproducible.
pub trait SpreadOracle {
    /// Estimates `f(nominees)`.  Must return `0.0` for the empty set.
    fn static_spread(&self, nominees: &[Nominee]) -> f64;

    /// Estimates the marginal gain `f(base ∪ {candidate}) − f(base)`.
    ///
    /// The default recomputes both sides; sketch-backed implementations can
    /// answer from coverage counters without re-estimating `base`.
    fn marginal_gain(&self, base: &[Nominee], candidate: Nominee) -> f64 {
        let mut with = base.to_vec();
        with.push(candidate);
        self.static_spread(&with) - self.static_spread(base)
    }

    /// A short human-readable name for logs and benchmark labels.
    fn name(&self) -> &'static str {
        "oracle"
    }
}

/// Which estimator answers the `f(N)` queries of a config-driven Dysim run.
///
/// Stored on [`crate::dysim::DysimConfig`]; honoured by
/// `imdpp_sketch::dispatch::ConfiguredOracle` and hence by every
/// `imdpp-engine` `Engine`.  [`crate::dysim::Dysim::solve_with`] itself
/// takes the oracle as an explicit argument.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum OracleKind {
    /// Forward Monte-Carlo (the paper's reference estimator); sample count
    /// taken from `DysimConfig::mc_samples`.
    #[default]
    MonteCarlo,
    /// The `imdpp-sketch` RR-sketch oracle with a fixed pool size per item.
    /// Requires the Independent Cascade triggering model.
    RrSketch {
        /// RR sets sampled per catalogue item.
        sets_per_item: usize,
        /// Shards each item's RR store is partitioned across (`1` = the
        /// flat store; `0` is treated as `1`).  Sharding changes memory
        /// layout and maintenance locality only — estimates and greedy
        /// selections are shard-count-independent.
        shards: usize,
        /// Worker threads for sampling and shard-parallel build/refresh
        /// (`0` = auto, capped at the machine's cores; the convention is
        /// defined on `imdpp_sketch::SketchConfig::threads`).  Estimates,
        /// seeds and refresh statistics are thread-count-independent.
        #[serde(default)]
        threads: usize,
    },
}

/// Statistics of one [`RefreshableOracle::refresh`] — how much amortized
/// state the update forced the estimator to recompute.
///
/// Sketch-backed estimators fill the set counters and the inverted-index
/// maintenance counters; estimators without amortized state (forward
/// Monte-Carlo) report [`RefreshStats::full_rebuild`].  The engine surfaces
/// the value on every `ApplyReport` so tests can pin the maintenance regime
/// (e.g. `full_rebuilds == 0` on localized updates) instead of only benches
/// noticing regressions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[must_use = "refresh stats carry the full-rebuild counters tests pin; dropping them hides rebuild regressions"]
pub struct RefreshStats {
    /// Total RR sets across the refreshed stores (0 for non-sketch
    /// estimators).
    pub total_sets: usize,
    /// Sets that were invalidated and re-sampled.
    pub resampled_sets: usize,
    /// Stores (items) refreshed.
    pub stores: usize,
    /// Inverted-index entries tombstoned or appended while patching the
    /// re-sampled sets in.
    pub index_entries_patched: u64,
    /// Full counting-pass index rebuilds the refresh performed — the
    /// quantity incremental maintenance exists to keep at zero.
    pub full_rebuilds: u64,
}

impl RefreshStats {
    /// What an estimator with no amortized state reports: everything
    /// recomputed ([`RefreshStats::resampled_fraction`] = 1.0).
    pub fn full_rebuild() -> Self {
        RefreshStats {
            full_rebuilds: 1,
            ..RefreshStats::default()
        }
    }

    /// Fraction of amortized state recomputed: the resampled set fraction
    /// for sketches, `1.0` for full-rebuild estimators, `0.0` for an empty
    /// refresh.
    pub fn resampled_fraction(&self) -> f64 {
        if self.total_sets == 0 {
            if self.full_rebuilds > 0 {
                1.0
            } else {
                0.0
            }
        } else {
            self.resampled_sets as f64 / self.total_sets as f64
        }
    }

    /// Fraction of sets whose samples were reused.
    pub fn reused_fraction(&self) -> f64 {
        1.0 - self.resampled_fraction()
    }

    /// Accumulates another store's refresh into this one.
    pub fn absorb(&mut self, other: RefreshStats) {
        self.total_sets += other.total_sets;
        self.resampled_sets += other.resampled_sets;
        self.stores += other.stores;
        self.index_entries_patched += other.index_entries_patched;
        self.full_rebuilds += other.full_rebuilds;
    }
}

/// A description of what changed in the world between two adaptive
/// promotion rounds — the update stream [`RefreshableOracle::refresh`]
/// consumes.
///
/// Each variant carries the *new* values, so the same value both transforms
/// a [`Scenario`] (via [`ScenarioUpdate::apply`]) and tells an incremental
/// estimator which part of its state the change could have touched.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioUpdate {
    /// Base preferences moved: each `(u, x, p)` sets `P_pref(u, x, 0) = p`.
    Preferences(Vec<(UserId, ItemId, f64)>),
    /// Influence edges were inserted, removed or re-weighted.
    Edges(Vec<EdgeUpdate>),
}

impl ScenarioUpdate {
    /// Applies the update to a scenario, returning the drifted world.
    pub fn apply(&self, scenario: &Scenario) -> Scenario {
        match self {
            ScenarioUpdate::Preferences(changes) => scenario.with_base_preferences(changes),
            ScenarioUpdate::Edges(updates) => scenario.with_edge_updates(updates),
        }
    }

    /// True when the update carries no changes at all.
    pub fn is_empty(&self) -> bool {
        match self {
            ScenarioUpdate::Preferences(c) => c.is_empty(),
            ScenarioUpdate::Edges(u) => u.is_empty(),
        }
    }
}

/// A [`SpreadOracle`] that can migrate its internal state to a drifted
/// scenario *incrementally* instead of being rebuilt.
///
/// The adaptive Dysim loop
/// ([`crate::adaptive::adaptive_dysim_with_oracle`]) calls
/// [`RefreshableOracle::refresh`] once per applied [`ScenarioUpdate`];
/// sketch-backed implementations re-sample only the RR sets the change
/// could have touched, while the Monte-Carlo implementation simply swaps
/// the scenario (its per-query simulations have no amortized state).
pub trait RefreshableOracle: SpreadOracle {
    /// Migrates the oracle to `updated`, which must equal
    /// `update.apply(previous_scenario)` for the scenario the oracle
    /// currently estimates against.  Returns what the migration cost: see
    /// [`RefreshStats`] ([`RefreshStats::resampled_fraction`] is `0.0` when
    /// everything was reused, `1.0` for a full rebuild).
    fn refresh(&mut self, updated: &Scenario, update: &ScenarioUpdate) -> RefreshStats;

    /// Called at the start of each promotion round `t` (1-based) of the
    /// adaptive loop.  Per-query estimators use it to rotate their sampling
    /// streams the way the paper's reference loop re-seeds per round
    /// (`base_seed + t`); amortized estimators like the RR sketch keep the
    /// default no-op — reusing the same pool across rounds is their point.
    fn begin_round(&mut self, _round: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::{ItemId, UserId};

    /// A toy oracle: f(N) = number of distinct users in N.
    struct DistinctUsers;

    impl SpreadOracle for DistinctUsers {
        fn static_spread(&self, nominees: &[Nominee]) -> f64 {
            let mut users: Vec<u32> = nominees.iter().map(|(u, _)| u.0).collect();
            users.sort_unstable();
            users.dedup();
            users.len() as f64
        }
    }

    #[test]
    fn default_marginal_gain_is_a_difference() {
        let oracle = DistinctUsers;
        let base = [(UserId(0), ItemId(0)), (UserId(1), ItemId(0))];
        assert_eq!(oracle.marginal_gain(&base, (UserId(0), ItemId(1))), 0.0);
        assert_eq!(oracle.marginal_gain(&base, (UserId(2), ItemId(0))), 1.0);
        assert_eq!(oracle.static_spread(&[]), 0.0);
        assert_eq!(oracle.name(), "oracle");
    }

    #[test]
    fn default_oracle_kind_is_monte_carlo() {
        assert_eq!(OracleKind::default(), OracleKind::MonteCarlo);
    }

    #[test]
    fn refresh_stats_fractions_and_absorb() {
        let full = RefreshStats::full_rebuild();
        assert_eq!(full.resampled_fraction(), 1.0);
        assert_eq!(RefreshStats::default().resampled_fraction(), 0.0);

        let mut a = RefreshStats {
            total_sets: 10,
            resampled_sets: 2,
            stores: 1,
            index_entries_patched: 7,
            full_rebuilds: 0,
        };
        a.absorb(RefreshStats {
            total_sets: 30,
            resampled_sets: 3,
            stores: 1,
            index_entries_patched: 5,
            full_rebuilds: 0,
        });
        assert_eq!(a.total_sets, 40);
        assert_eq!(a.resampled_sets, 5);
        assert_eq!(a.stores, 2);
        assert_eq!(a.index_entries_patched, 12);
        assert!((a.resampled_fraction() - 0.125).abs() < 1e-12);
        assert!((a.reused_fraction() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn scenario_update_applies_preferences_and_edges() {
        let s = toy_scenario();
        let prefs = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(2), 0.9)]);
        let s2 = prefs.apply(&s);
        assert_eq!(s2.base_preference(UserId(1), ItemId(2)), 0.9);

        let edges = ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
            src: UserId(0),
            dst: UserId(1),
            weight: 0.95,
        }]);
        let s3 = edges.apply(&s);
        assert_eq!(s3.social().influence(UserId(0), UserId(1)), 0.95);

        assert!(!prefs.is_empty());
        assert!(ScenarioUpdate::Edges(Vec::new()).is_empty());
        assert!(ScenarioUpdate::Preferences(Vec::new()).is_empty());
    }
}
