//! The [`SpreadOracle`] estimation interface.
//!
//! Nominee selection (Procedure 2) and the RIS-flavoured baselines only ever
//! query one quantity: the *static first-promotion spread* `f(N)` of a
//! nominee set under frozen dynamics (the conditions of Lemma 1 that make
//! `f` monotone and submodular).  This trait abstracts over how `f` is
//! estimated so callers can choose the estimator:
//!
//! * **forward Monte-Carlo** ([`crate::eval::Evaluator`]) — the paper's
//!   reference estimator; unbiased for any dynamics but pays a full
//!   simulation per query,
//! * **reverse-reachable sketching** (`imdpp-sketch`'s `SketchOracle`) —
//!   amortizes sampling across queries by maintaining a pool of RR sets per
//!   item; orders of magnitude cheaper per query and incrementally
//!   maintainable when perceptions drift between promotions.
//!
//! See `docs/ARCHITECTURE.md` for guidance on picking an implementation.

use crate::nominees::Nominee;

/// An estimator of the static first-promotion spread `f(N)`.
///
/// Implementations must target the same quantity:
/// the expected importance-weighted number of adoptions when every nominee
/// `(u, x)` is seeded in promotion 1 with `P_pref`, `P_act`, `P_ext` frozen
/// at their initial values.  Estimates should be deterministic for a fixed
/// construction seed so that greedy selections are reproducible.
pub trait SpreadOracle {
    /// Estimates `f(nominees)`.  Must return `0.0` for the empty set.
    fn static_spread(&self, nominees: &[Nominee]) -> f64;

    /// Estimates the marginal gain `f(base ∪ {candidate}) − f(base)`.
    ///
    /// The default recomputes both sides; sketch-backed implementations can
    /// answer from coverage counters without re-estimating `base`.
    fn marginal_gain(&self, base: &[Nominee], candidate: Nominee) -> f64 {
        let mut with = base.to_vec();
        with.push(candidate);
        self.static_spread(&with) - self.static_spread(base)
    }

    /// A short human-readable name for logs and benchmark labels.
    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_graph::{ItemId, UserId};

    /// A toy oracle: f(N) = number of distinct users in N.
    struct DistinctUsers;

    impl SpreadOracle for DistinctUsers {
        fn static_spread(&self, nominees: &[Nominee]) -> f64 {
            let mut users: Vec<u32> = nominees.iter().map(|(u, _)| u.0).collect();
            users.sort_unstable();
            users.dedup();
            users.len() as f64
        }
    }

    #[test]
    fn default_marginal_gain_is_a_difference() {
        let oracle = DistinctUsers;
        let base = [(UserId(0), ItemId(0)), (UserId(1), ItemId(0))];
        assert_eq!(oracle.marginal_gain(&base, (UserId(0), ItemId(1))), 0.0);
        assert_eq!(oracle.marginal_gain(&base, (UserId(2), ItemId(0))), 1.0);
        assert_eq!(oracle.static_spread(&[]), 0.0);
        assert_eq!(oracle.name(), "oracle");
    }
}
