//! The IMDPP problem instance (Definition 2 of the paper).

use imdpp_diffusion::{ImdppError, Scenario, SeedGroup};
use imdpp_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};

/// The hiring-cost model `c_{u,x}`: how much of the budget seeding user `u`
/// with item `x` consumes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    costs: Vec<f64>,
    user_count: usize,
    item_count: usize,
}

impl CostModel {
    /// Uniform cost for every `(user, item)` pair.
    pub fn uniform(user_count: usize, item_count: usize, cost: f64) -> Self {
        assert!(cost.is_finite() && cost > 0.0, "cost must be positive");
        CostModel {
            costs: vec![cost; user_count * item_count],
            user_count,
            item_count,
        }
    }

    /// Explicit cost matrix in row-major `(user, item)` order.
    pub fn from_matrix(costs: Vec<f64>, user_count: usize, item_count: usize) -> Self {
        assert_eq!(
            costs.len(),
            user_count * item_count,
            "cost matrix size mismatch"
        );
        assert!(
            costs.iter().all(|c| c.is_finite() && *c > 0.0),
            "all costs must be positive and finite"
        );
        CostModel {
            costs,
            user_count,
            item_count,
        }
    }

    /// The cost model used throughout the paper's experiments (following
    /// \[3\], \[67\] and the empirical study): proportional to the user's
    /// out-degree
    /// and inversely proportional to the user's initial preference for the
    /// item, scaled by `scale`.
    ///
    /// ```text
    /// c_{u,x} = scale · (1 + out_degree(u)) / max(P_pref(u, x, 0), 0.1)
    /// ```
    pub fn degree_over_preference(scenario: &Scenario, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        let user_count = scenario.user_count();
        let item_count = scenario.item_count();
        let mut costs = Vec::with_capacity(user_count * item_count);
        for u in scenario.users() {
            let degree = scenario.social().out_degree(u) as f64;
            for x in scenario.items() {
                let pref = scenario.base_preference(u, x).max(0.1);
                costs.push(scale * (1.0 + degree) / pref);
            }
        }
        CostModel {
            costs,
            user_count,
            item_count,
        }
    }

    /// The cost `c_{u,x}`.
    #[inline]
    pub fn cost(&self, u: UserId, x: ItemId) -> f64 {
        self.costs[u.index() * self.item_count + x.index()]
    }

    /// Overwrites the cost of a single pair.
    pub fn set_cost(&mut self, u: UserId, x: ItemId, cost: f64) {
        assert!(cost.is_finite() && cost > 0.0, "cost must be positive");
        self.costs[u.index() * self.item_count + x.index()] = cost;
    }

    /// The cheapest cost in the model.
    pub fn min_cost(&self) -> f64 {
        self.costs.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Number of users covered.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// Number of items covered.
    pub fn item_count(&self) -> usize {
        self.item_count
    }
}

/// A complete IMDPP instance: the world (scenario), the seeding costs, the
/// total budget `b` and the number of promotions `T`.
#[derive(Clone, Debug)]
pub struct ImdppInstance {
    scenario: Scenario,
    costs: CostModel,
    budget: f64,
    promotions: u32,
}

impl ImdppInstance {
    /// Creates an instance after validating dimensions and ranges.
    pub fn new(
        scenario: Scenario,
        costs: CostModel,
        budget: f64,
        promotions: u32,
    ) -> Result<Self, ImdppError> {
        if costs.user_count() != scenario.user_count() {
            return Err(ImdppError::DimensionMismatch {
                what: "cost model users vs scenario users",
                expected: scenario.user_count(),
                found: costs.user_count(),
            });
        }
        if costs.item_count() != scenario.item_count() {
            return Err(ImdppError::DimensionMismatch {
                what: "cost model items vs scenario items",
                expected: scenario.item_count(),
                found: costs.item_count(),
            });
        }
        if !budget.is_finite() || budget <= 0.0 {
            return Err(ImdppError::invalid("budget must be positive"));
        }
        if promotions == 0 {
            return Err(ImdppError::invalid("at least one promotion is required"));
        }
        Ok(ImdppInstance {
            scenario,
            costs,
            budget,
            promotions,
        })
    }

    /// The scenario (social network, items, KG relevance, dynamics).
    #[inline]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The cost model.
    #[inline]
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The total budget `b`.
    #[inline]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The number of promotions `T`.
    #[inline]
    pub fn promotions(&self) -> u32 {
        self.promotions
    }

    /// The cost `c_{u,x}` of a nominee.
    #[inline]
    pub fn cost(&self, u: UserId, x: ItemId) -> f64 {
        self.costs.cost(u, x)
    }

    /// The total cost of a seed group.
    pub fn total_cost(&self, seeds: &SeedGroup) -> f64 {
        seeds.total_cost(|u, x| self.costs.cost(u, x))
    }

    /// Whether a seed group satisfies the budget and timing constraints.
    pub fn is_feasible(&self, seeds: &SeedGroup) -> bool {
        seeds
            .seeds()
            .iter()
            .all(|s| s.promotion >= 1 && s.promotion <= self.promotions)
            && self.total_cost(seeds) <= self.budget + 1e-9
    }

    /// Returns a copy of the instance with a different budget.
    pub fn with_budget(&self, budget: f64) -> ImdppInstance {
        let mut inst = self.clone();
        inst.budget = budget;
        inst
    }

    /// Returns a copy of the instance with a different number of promotions.
    pub fn with_promotions(&self, promotions: u32) -> ImdppInstance {
        let mut inst = self.clone();
        inst.promotions = promotions.max(1);
        inst
    }

    /// Returns a copy of the instance with a different scenario (same costs,
    /// budget and promotion count).  Used by ablations that freeze dynamics
    /// or truncate meta-graphs.
    pub fn with_scenario(&self, scenario: Scenario) -> Result<ImdppInstance, ImdppError> {
        ImdppInstance::new(scenario, self.costs.clone(), self.budget, self.promotions)
    }

    /// All `(user, item)` pairs whose individual cost fits within the budget
    /// (the initial nominee universe `U` of Algorithm 1).
    ///
    /// When `candidate_users` is given, only the that-many highest-out-degree
    /// users are considered, which keeps the universe tractable on large
    /// synthetic datasets (the paper evaluates all pairs on a 1 TB-RAM
    /// server; see DESIGN.md §3).
    pub fn nominee_universe(&self, candidate_users: Option<usize>) -> Vec<(UserId, ItemId)> {
        let mut users: Vec<UserId> = self.scenario.users().collect();
        users.sort_by_key(|u| std::cmp::Reverse(self.scenario.social().out_degree(*u)));
        let cap = candidate_users.unwrap_or(usize::MAX);
        let mut universe = Vec::new();
        let mut kept_users = 0usize;
        for &u in &users {
            if kept_users >= cap {
                break;
            }
            let before = universe.len();
            for x in self.scenario.items() {
                if self.costs.cost(u, x) <= self.budget {
                    universe.push((u, x));
                }
            }
            // Only users with at least one affordable item count toward the
            // candidate cap, so an expensive hub cannot crowd out the whole
            // universe under small budgets.
            if universe.len() > before {
                kept_users += 1;
            }
        }
        universe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_diffusion::Seed;

    fn instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 3.0, 2).unwrap()
    }

    #[test]
    fn uniform_costs_apply_to_all_pairs() {
        let c = CostModel::uniform(3, 2, 2.0);
        assert_eq!(c.cost(UserId(2), ItemId(1)), 2.0);
        assert_eq!(c.min_cost(), 2.0);
    }

    #[test]
    fn degree_over_preference_costs_grow_with_degree() {
        let scenario = toy_scenario();
        let c = CostModel::degree_over_preference(&scenario, 1.0);
        // User 0 has out-degree 2, user 5 has out-degree 0.
        assert!(c.cost(UserId(0), ItemId(0)) > c.cost(UserId(5), ItemId(0)));
    }

    #[test]
    fn instance_validates_dimensions_and_ranges() {
        let scenario = toy_scenario();
        let bad_costs = CostModel::uniform(2, 2, 1.0);
        assert!(ImdppInstance::new(scenario.clone(), bad_costs, 5.0, 2).is_err());
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        assert!(ImdppInstance::new(scenario.clone(), costs.clone(), -1.0, 2).is_err());
        assert!(ImdppInstance::new(scenario, costs, 5.0, 0).is_err());
    }

    #[test]
    fn feasibility_checks_budget_and_timing() {
        let inst = instance();
        let ok = SeedGroup::from_seeds(vec![
            Seed::new(UserId(0), ItemId(0), 1),
            Seed::new(UserId(1), ItemId(1), 2),
        ]);
        assert!(inst.is_feasible(&ok));
        let too_expensive = SeedGroup::from_seeds(vec![
            Seed::new(UserId(0), ItemId(0), 1),
            Seed::new(UserId(1), ItemId(1), 1),
            Seed::new(UserId(2), ItemId(2), 1),
            Seed::new(UserId(3), ItemId(3), 1),
        ]);
        assert!(!inst.is_feasible(&too_expensive));
        let too_late = SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 5)]);
        assert!(!inst.is_feasible(&too_late));
    }

    #[test]
    fn total_cost_sums_costs() {
        let inst = instance();
        let g = SeedGroup::from_seeds(vec![
            Seed::new(UserId(0), ItemId(0), 1),
            Seed::new(UserId(1), ItemId(1), 1),
        ]);
        assert!((inst.total_cost(&g) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nominee_universe_filters_by_cost() {
        let scenario = toy_scenario();
        let mut costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        costs.set_cost(UserId(0), ItemId(0), 100.0);
        let inst = ImdppInstance::new(scenario, costs, 3.0, 2).unwrap();
        let universe = inst.nominee_universe(None);
        assert!(!universe.contains(&(UserId(0), ItemId(0))));
        assert!(universe.contains(&(UserId(0), ItemId(1))));
        assert_eq!(universe.len(), 6 * 4 - 1);
    }

    #[test]
    fn nominee_universe_candidate_cap_keeps_high_degree_users() {
        let inst = instance();
        let universe = inst.nominee_universe(Some(2));
        let users: std::collections::HashSet<u32> = universe.iter().map(|(u, _)| u.0).collect();
        assert_eq!(users.len(), 2);
        // User 5 has out-degree 0 and must not be among the top-2.
        assert!(!users.contains(&5));
    }

    #[test]
    fn with_budget_and_promotions_produce_modified_copies() {
        let inst = instance();
        assert_eq!(inst.with_budget(10.0).budget(), 10.0);
        assert_eq!(inst.with_promotions(7).promotions(), 7);
        assert_eq!(inst.budget(), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cost_model_rejects_non_positive_costs() {
        let _ = CostModel::uniform(2, 2, 0.0);
    }
}
