//! Adaptive IM with Dysim (Sec. V-D): seeds are committed one promotion at a
//! time, re-planning after the outcome of every promotion is observed.
//!
//! The paper's adaptive variant re-runs TMI with a single nominee at a time
//! and limits the TDSI window to `{t, t + 1}`.  This module implements a
//! faithful sequential re-planning loop on top of the same building blocks:
//!
//! 1. simulate (one realisation of) the promotions committed so far,
//! 2. re-select nominees with the remaining budget, conditioned on what has
//!    already been adopted (previously adopted `(u, x)` pairs add nothing, so
//!    their marginal gain collapses and they are never re-selected),
//! 3. keep the nominees whose substantial influence prefers the *current*
//!    promotion `t` over `t + 1`; defer the rest.
//!
//! For the last promotion `T` the remaining budget is spent greedily.
//!
//! Nominee re-selection is generic over [`crate::oracle::SpreadOracle`]:
//! [`adaptive_dysim_with_oracle`] — the loop primitive the `imdpp-engine`
//! `Engine::adaptive` method drives — accepts any [`RefreshableOracle`], in
//! particular the RR-sketch oracle of `imdpp-sketch`, which *refreshes*
//! between rounds (re-sampling only the RR sets a scenario update could
//! have touched) instead of being rebuilt.  The world may drift between
//! promotions: pass one [`ScenarioUpdate`] per inter-round gap and the loop
//! applies it to the instance and hands it to the oracle.

use crate::dysim::DysimConfig;
use crate::eval::Evaluator;
use crate::market::TargetMarket;
use crate::nominees::{select_nominees_with_oracle, NomineeSelectionConfig};
use crate::oracle::{RefreshableOracle, ScenarioUpdate};
use crate::problem::ImdppInstance;
use crate::tdsi::substantial_influence;
use imdpp_diffusion::{Seed, SeedGroup};

/// Result of an adaptive Dysim run.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveReport {
    /// The committed seed group (union over all promotions).
    pub seeds: SeedGroup,
    /// Budget actually spent.
    pub spent: f64,
    /// Seeds committed per promotion (index 0 = promotion 1).
    pub per_promotion: Vec<usize>,
    /// For every *consumed* drift entry (index `i` = the update between
    /// promotions `i + 1` and `i + 2`): the fraction of the oracle's
    /// internal state that had to be recomputed — `0.0` for an empty
    /// update, `1.0` for a full rebuild; sketch-backed oracles report
    /// their resample fraction.
    pub refresh_fractions: Vec<f64>,
}

/// Runs the adaptive Dysim loop with `oracle` answering the static `f(N)`
/// queries of per-round nominee re-selection, over a world that may drift
/// between promotions.
///
/// `drift[i]` is applied between promotion `i + 1` and promotion `i + 2`
/// (a campaign of `T` promotions consumes at most `T - 1` updates; extra
/// entries are ignored).  Before planning the affected round the loop
/// applies the update to the instance's scenario and calls
/// [`RefreshableOracle::refresh`], so a sketch-backed oracle re-samples
/// only what the update could have touched; the per-update recomputed
/// fractions are reported in [`AdaptiveReport::refresh_fractions`].
///
/// The substantial-influence timing test and the final spread bookkeeping
/// always use Monte-Carlo (they query dynamic quantities outside the static
/// oracle contract), evaluated against the *current* drifted scenario.
pub fn adaptive_dysim_with_oracle<O: RefreshableOracle>(
    instance: &ImdppInstance,
    config: &DysimConfig,
    drift: &[ScenarioUpdate],
    oracle: &mut O,
) -> AdaptiveReport {
    let total_promotions = instance.promotions();
    let mut current = instance.clone();
    let mut committed = SeedGroup::new();
    let mut spent = 0.0f64;
    let mut per_promotion = Vec::with_capacity(total_promotions as usize);
    let mut refresh_fractions = Vec::new();

    // The whole population acts as the market for SI scoring.
    let mut whole_market = whole_population_market(&current);

    for t in 1..=total_promotions {
        oracle.begin_round(t);
        // ---- Inter-round drift: update the world and refresh the oracle. ----
        if t >= 2 {
            if let Some(update) = drift.get(t as usize - 2) {
                if update.is_empty() {
                    // Keep indices aligned with `drift`: nothing to refresh.
                    refresh_fractions.push(0.0);
                } else {
                    let updated = update.apply(current.scenario());
                    refresh_fractions.push(oracle.refresh(&updated, update).resampled_fraction());
                    current = current
                        .with_scenario(updated)
                        .expect("scenario updates preserve instance dimensions");
                    // Only edge updates can change the topology (and hence
                    // the hop diameter) behind the SI-scoring market.
                    if matches!(update, ScenarioUpdate::Edges(_)) {
                        whole_market = whole_population_market(&current);
                    }
                }
            }
        }

        let remaining_budget = current.budget() - spent;
        if remaining_budget <= 0.0 {
            per_promotion.push(0);
            continue;
        }
        // Re-plan with the remaining budget.
        let stage_instance = current.with_budget(remaining_budget);
        let universe = stage_instance.nominee_universe(config.candidate_users);
        // Drop nominees already committed at an earlier promotion.
        let universe: Vec<_> = universe
            .into_iter()
            .filter(|&(u, x)| !committed.contains_nominee(u, x))
            .collect();
        let selection = select_nominees_with_oracle(
            &stage_instance,
            &*oracle,
            &universe,
            &NomineeSelectionConfig {
                max_nominees: config.max_nominees,
                stop_on_nonpositive_gain: true,
            },
        );

        let mut committed_this_round = 0usize;
        if t == total_promotions {
            // Final promotion: spend whatever remains greedily at timing T.
            for &(u, x) in &selection.nominees {
                let cost = current.cost(u, x);
                if cost <= current.budget() - spent {
                    committed.insert(Seed::new(u, x, t));
                    spent += cost;
                    committed_this_round += 1;
                }
            }
        } else {
            // Keep only the nominees that prefer the current promotion over
            // the next one under substantial influence.
            let eval_full =
                Evaluator::new(&current, config.mc_samples, config.base_seed + t as u64);
            let baseline_spread = eval_full.spread_in(&committed, &whole_market.users);
            let baseline_likelihood =
                eval_full.future_likelihood_in(&committed, &whole_market.users);
            for &(u, x) in &selection.nominees {
                let cost = current.cost(u, x);
                if cost > current.budget() - spent {
                    continue;
                }
                let now = substantial_influence(
                    &eval_full,
                    &whole_market,
                    &committed,
                    Seed::new(u, x, t),
                    total_promotions,
                    baseline_spread,
                    baseline_likelihood,
                );
                let later = substantial_influence(
                    &eval_full,
                    &whole_market,
                    &committed,
                    Seed::new(u, x, t + 1),
                    total_promotions,
                    baseline_spread,
                    baseline_likelihood,
                );
                if now.substantial_influence >= later.substantial_influence {
                    committed.insert(Seed::new(u, x, t));
                    spent += cost;
                    committed_this_round += 1;
                }
            }
        }
        per_promotion.push(committed_this_round);
    }

    AdaptiveReport {
        seeds: committed,
        spent,
        per_promotion,
        refresh_fractions,
    }
}

/// A [`TargetMarket`] holding the whole population — the scope used when
/// scoring substantial influence in the adaptive loop.
fn whole_population_market(instance: &ImdppInstance) -> TargetMarket {
    TargetMarket {
        index: 0,
        nominees: Vec::new(),
        users: instance.scenario().users().collect(),
        diameter: imdpp_graph::paths::graph_hop_diameter(instance.scenario().social().graph())
            .max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::MonteCarloOracle;
    use crate::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::{EdgeUpdate, ItemId, UserId};

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    /// The static-world Monte-Carlo loop (the paper's reference
    /// configuration).
    fn adaptive_mc(inst: &ImdppInstance, config: &DysimConfig) -> AdaptiveReport {
        let mut oracle =
            MonteCarloOracle::new(inst.scenario(), config.mc_samples, config.base_seed);
        adaptive_dysim_with_oracle(inst, config, &[], &mut oracle)
    }

    #[test]
    fn adaptive_respects_the_budget_without_preallocation() {
        let inst = instance(3.0, 3);
        let report = adaptive_mc(&inst, &DysimConfig::fast());
        assert!(report.spent <= inst.budget() + 1e-9);
        assert!(inst.is_feasible(&report.seeds));
        assert_eq!(report.per_promotion.len(), 3);
        assert!(report.refresh_fractions.is_empty());
    }

    #[test]
    fn adaptive_commits_at_least_one_seed_when_affordable() {
        let inst = instance(2.0, 2);
        let report = adaptive_mc(&inst, &DysimConfig::fast());
        assert!(!report.seeds.is_empty());
    }

    #[test]
    fn adaptive_never_commits_the_same_nominee_twice() {
        let inst = instance(4.0, 3);
        let report = adaptive_mc(&inst, &DysimConfig::fast());
        let mut nominees: Vec<_> = report
            .seeds
            .seeds()
            .iter()
            .map(|s| (s.user, s.item))
            .collect();
        let before = nominees.len();
        nominees.sort_unstable();
        nominees.dedup();
        assert_eq!(nominees.len(), before);
    }

    #[test]
    fn adaptive_seed_timings_are_within_horizon() {
        let inst = instance(4.0, 2);
        let report = adaptive_mc(&inst, &DysimConfig::fast());
        for s in report.seeds.seeds() {
            assert!(s.promotion >= 1 && s.promotion <= 2);
        }
    }

    #[test]
    fn zero_budget_leftover_stops_committing() {
        let inst = instance(1.0, 3);
        let report = adaptive_mc(&inst, &DysimConfig::fast());
        assert!(report.seeds.len() <= 1);
        assert!(report.spent <= 1.0 + 1e-9);
    }

    #[test]
    fn drift_is_applied_and_reported() {
        let inst = instance(4.0, 3);
        let cfg = DysimConfig::fast();
        let drift = vec![
            ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(0), 0.9)]),
            ScenarioUpdate::Edges(vec![EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.9,
            }]),
        ];
        let mut oracle = MonteCarloOracle::new(inst.scenario(), cfg.mc_samples, cfg.base_seed);
        let report = adaptive_dysim_with_oracle(&inst, &cfg, &drift, &mut oracle);
        // One refresh per applied update, each a full MC "rebuild".
        assert_eq!(report.refresh_fractions, vec![1.0, 1.0]);
        assert!(inst.is_feasible(&report.seeds));
        // The oracle ends up estimating against the fully drifted world.
        assert_eq!(
            oracle.scenario().social().influence(UserId(0), UserId(1)),
            0.9
        );
        assert_eq!(oracle.scenario().base_preference(UserId(1), ItemId(0)), 0.9);
    }

    #[test]
    fn empty_drift_entries_keep_indices_aligned() {
        let inst = instance(3.0, 3);
        let cfg = DysimConfig::fast();
        let drift = vec![
            ScenarioUpdate::Edges(Vec::new()),
            ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(0), 0.9)]),
        ];
        let mut oracle = MonteCarloOracle::new(inst.scenario(), cfg.mc_samples, cfg.base_seed);
        let report = adaptive_dysim_with_oracle(&inst, &cfg, &drift, &mut oracle);
        // One entry per consumed drift slot: the empty update refreshes
        // nothing, the real one is a full MC "rebuild".
        assert_eq!(report.refresh_fractions, vec![0.0, 1.0]);
    }
}
