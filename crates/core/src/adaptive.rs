//! Adaptive IM with Dysim (Sec. V-D): seeds are committed one promotion at a
//! time, re-planning after the outcome of every promotion is observed.
//!
//! The paper's adaptive variant re-runs TMI with a single nominee at a time
//! and limits the TDSI window to `{t, t + 1}`.  This module implements a
//! faithful sequential re-planning loop on top of the same building blocks:
//!
//! 1. simulate (one realisation of) the promotions committed so far,
//! 2. re-select nominees with the remaining budget, conditioned on what has
//!    already been adopted (previously adopted `(u, x)` pairs add nothing, so
//!    their marginal gain collapses and they are never re-selected),
//! 3. keep the nominees whose substantial influence prefers the *current*
//!    promotion `t` over `t + 1`; defer the rest.
//!
//! For the last promotion `T` the remaining budget is spent greedily.

use crate::dysim::DysimConfig;
use crate::eval::Evaluator;
use crate::market::TargetMarket;
use crate::nominees::{select_nominees, NomineeSelectionConfig};
use crate::problem::ImdppInstance;
use crate::tdsi::substantial_influence;
use imdpp_diffusion::{Seed, SeedGroup};

/// Result of an adaptive Dysim run.
#[derive(Clone, Debug, Default)]
pub struct AdaptiveReport {
    /// The committed seed group (union over all promotions).
    pub seeds: SeedGroup,
    /// Budget actually spent.
    pub spent: f64,
    /// Seeds committed per promotion (index 0 = promotion 1).
    pub per_promotion: Vec<usize>,
}

/// Runs the adaptive variant of Dysim: budget is *not* pre-allocated to
/// promotions; each promotion's seeds are decided after the previous
/// promotions are (simulated as) observed.
pub fn adaptive_dysim(instance: &ImdppInstance, config: &DysimConfig) -> AdaptiveReport {
    let total_promotions = instance.promotions();
    let mut committed = SeedGroup::new();
    let mut spent = 0.0f64;
    let mut per_promotion = Vec::with_capacity(total_promotions as usize);

    // The whole population acts as the market for SI scoring.
    let whole_market = TargetMarket {
        index: 0,
        nominees: Vec::new(),
        users: instance.scenario().users().collect(),
        diameter: imdpp_graph::paths::graph_hop_diameter(instance.scenario().social().graph())
            .max(1),
    };

    for t in 1..=total_promotions {
        let remaining_budget = instance.budget() - spent;
        if remaining_budget <= 0.0 {
            per_promotion.push(0);
            continue;
        }
        // Re-plan with the remaining budget.
        let stage_instance = instance.with_budget(remaining_budget);
        let evaluator = Evaluator::new(
            &stage_instance,
            config.mc_samples,
            config.base_seed + t as u64,
        );
        let universe = stage_instance.nominee_universe(config.candidate_users);
        // Drop nominees already committed at an earlier promotion.
        let universe: Vec<_> = universe
            .into_iter()
            .filter(|&(u, x)| !committed.contains_nominee(u, x))
            .collect();
        let selection = select_nominees(
            &evaluator,
            &universe,
            &NomineeSelectionConfig {
                max_nominees: config.max_nominees,
                stop_on_nonpositive_gain: true,
            },
        );

        let mut committed_this_round = 0usize;
        if t == total_promotions {
            // Final promotion: spend whatever remains greedily at timing T.
            for &(u, x) in &selection.nominees {
                let cost = instance.cost(u, x);
                if cost <= instance.budget() - spent {
                    committed.insert(Seed::new(u, x, t));
                    spent += cost;
                    committed_this_round += 1;
                }
            }
        } else {
            // Keep only the nominees that prefer the current promotion over
            // the next one under substantial influence.
            let eval_full =
                Evaluator::new(instance, config.mc_samples, config.base_seed + t as u64);
            let baseline_spread = eval_full.spread_in(&committed, &whole_market.users);
            let baseline_likelihood =
                eval_full.future_likelihood_in(&committed, &whole_market.users);
            for &(u, x) in &selection.nominees {
                let cost = instance.cost(u, x);
                if cost > instance.budget() - spent {
                    continue;
                }
                let now = substantial_influence(
                    &eval_full,
                    &whole_market,
                    &committed,
                    Seed::new(u, x, t),
                    total_promotions,
                    baseline_spread,
                    baseline_likelihood,
                );
                let later = substantial_influence(
                    &eval_full,
                    &whole_market,
                    &committed,
                    Seed::new(u, x, t + 1),
                    total_promotions,
                    baseline_spread,
                    baseline_likelihood,
                );
                if now.substantial_influence >= later.substantial_influence {
                    committed.insert(Seed::new(u, x, t));
                    spent += cost;
                    committed_this_round += 1;
                }
            }
        }
        per_promotion.push(committed_this_round);
    }

    AdaptiveReport {
        seeds: committed,
        spent,
        per_promotion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    #[test]
    fn adaptive_respects_the_budget_without_preallocation() {
        let inst = instance(3.0, 3);
        let report = adaptive_dysim(&inst, &DysimConfig::fast());
        assert!(report.spent <= inst.budget() + 1e-9);
        assert!(inst.is_feasible(&report.seeds));
        assert_eq!(report.per_promotion.len(), 3);
    }

    #[test]
    fn adaptive_commits_at_least_one_seed_when_affordable() {
        let inst = instance(2.0, 2);
        let report = adaptive_dysim(&inst, &DysimConfig::fast());
        assert!(!report.seeds.is_empty());
    }

    #[test]
    fn adaptive_never_commits_the_same_nominee_twice() {
        let inst = instance(4.0, 3);
        let report = adaptive_dysim(&inst, &DysimConfig::fast());
        let mut nominees: Vec<_> = report
            .seeds
            .seeds()
            .iter()
            .map(|s| (s.user, s.item))
            .collect();
        let before = nominees.len();
        nominees.sort_unstable();
        nominees.dedup();
        assert_eq!(nominees.len(), before);
    }

    #[test]
    fn adaptive_seed_timings_are_within_horizon() {
        let inst = instance(4.0, 2);
        let report = adaptive_dysim(&inst, &DysimConfig::fast());
        for s in report.seeds.seeds() {
            assert!(s.promotion >= 1 && s.promotion <= 2);
        }
    }

    #[test]
    fn zero_budget_leftover_stops_committing() {
        let inst = instance(1.0, 3);
        let report = adaptive_dysim(&inst, &DysimConfig::fast());
        assert!(report.seeds.len() <= 1);
        assert!(report.spent <= 1.0 + 1e-9);
    }
}
