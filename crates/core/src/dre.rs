//! Dynamic Reachability Evaluation (DRE): the proactive / reactive item
//! impact recursion of Eqs. (1), (9) and (10).
//!
//! For a target market `τ` and the seed group `S_G` chosen so far, the
//! *dynamic reachability* of an item `x` is
//!
//! ```text
//! DR(x) = PI(x, d_τ) + RI(x, d_τ)
//! ```
//!
//! where the proactive impact `PI` measures how strongly promoting `x` would
//! raise the market's preferences for other items, the reactive impact `RI`
//! measures how strongly the items already promoted raise the market's
//! preference for `x`, and `d_τ` is the market's hop diameter.  Both are
//! computed from the market's *expected* perceptions after the campaign of
//! `S_G` (the Monte-Carlo expectation of Fig. 6(c)).

use crate::market::TargetMarket;
use imdpp_graph::{ItemId, UserId};
use imdpp_kg::{ItemCatalog, PersonalPerception};
use std::collections::HashMap;

/// Item-impact model over a target market: average complementary /
/// substitutable relevances between items, as perceived (in expectation) by
/// the market's users.
#[derive(Clone, Debug)]
pub struct ItemImpactModel {
    /// Average complementary relevance per (unordered) item pair.
    avg_complementary: HashMap<(u32, u32), f64>,
    /// Average substitutable relevance per (unordered) item pair.
    avg_substitutable: HashMap<(u32, u32), f64>,
    /// Adjacency: items related to each item (union over both kinds).
    related: HashMap<u32, Vec<ItemId>>,
}

fn pair_key(x: ItemId, y: ItemId) -> (u32, u32) {
    if x.0 < y.0 {
        (x.0, y.0)
    } else {
        (y.0, x.0)
    }
}

impl ItemImpactModel {
    /// Builds the impact model for a market from (expected) perceptions.
    ///
    /// `users` is capped at `user_cap` evenly-spaced members to keep the cost
    /// bounded on very large markets.
    pub fn new(perception: &PersonalPerception, users: &[UserId], user_cap: usize) -> Self {
        let sampled: Vec<UserId> = if users.len() <= user_cap.max(1) {
            users.to_vec()
        } else {
            let step = users.len() / user_cap.max(1);
            users.iter().step_by(step.max(1)).copied().collect()
        };
        let model = perception.model().clone();
        let mut avg_c = HashMap::new();
        let mut avg_s = HashMap::new();
        let mut related: HashMap<u32, Vec<ItemId>> = HashMap::new();
        for x_idx in 0..model.item_count() {
            let x = ItemId(x_idx as u32);
            let neighbours = model.related_items(x);
            if neighbours.is_empty() {
                continue;
            }
            related.insert(x.0, neighbours.clone());
            for y in neighbours {
                let key = pair_key(x, y);
                if avg_c.contains_key(&key) {
                    continue;
                }
                let (mut c_sum, mut s_sum) = (0.0, 0.0);
                for &u in &sampled {
                    c_sum += perception.complementary(u, x, y);
                    s_sum += perception.substitutable(u, x, y);
                }
                let n = sampled.len().max(1) as f64;
                avg_c.insert(key, c_sum / n);
                avg_s.insert(key, s_sum / n);
            }
        }
        ItemImpactModel {
            avg_complementary: avg_c,
            avg_substitutable: avg_s,
            related,
        }
    }

    /// Average complementary relevance `r̄C_{x,y}` over the market.
    pub fn complementary(&self, x: ItemId, y: ItemId) -> f64 {
        *self.avg_complementary.get(&pair_key(x, y)).unwrap_or(&0.0)
    }

    /// Average substitutable relevance `r̄S_{x,y}` over the market.
    pub fn substitutable(&self, x: ItemId, y: ItemId) -> f64 {
        *self.avg_substitutable.get(&pair_key(x, y)).unwrap_or(&0.0)
    }

    /// Likelihood of the market regarding `x` and `y` as complementary
    /// (`L_C`, Sec. V-B): the complementary share of the total relevance.
    pub fn complementary_likelihood(&self, x: ItemId, y: ItemId) -> f64 {
        let c = self.complementary(x, y);
        let s = self.substitutable(x, y);
        if c + s <= 0.0 {
            0.0
        } else {
            c / (c + s)
        }
    }

    /// Likelihood of the market regarding `x` and `y` as substitutable (`L_S`).
    pub fn substitutable_likelihood(&self, x: ItemId, y: ItemId) -> f64 {
        let c = self.complementary(x, y);
        let s = self.substitutable(x, y);
        if c + s <= 0.0 {
            0.0
        } else {
            s / (c + s)
        }
    }

    /// Items related to `x` (either kind of relevance positive).
    pub fn related_items(&self, x: ItemId) -> &[ItemId] {
        self.related.get(&x.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Proactive impact `PI_{W,τ}(S_G, x, d)` (Eq. 9): the propensity of `x`
    /// to raise the market's preferences for other items, propagated up to
    /// `d` hops through the item network.
    pub fn proactive_impact(&self, catalog: &ItemCatalog, x: ItemId, depth: u32) -> f64 {
        let mut memo = HashMap::new();
        self.proactive_rec(catalog, x, depth, &mut memo)
    }

    fn proactive_rec(
        &self,
        catalog: &ItemCatalog,
        x: ItemId,
        depth: u32,
        memo: &mut HashMap<(u32, u32), f64>,
    ) -> f64 {
        if depth == 0 {
            return 0.0;
        }
        if let Some(&v) = memo.get(&(x.0, depth)) {
            return v;
        }
        let mut total = 0.0;
        for &y in self.related_items(x) {
            let w_y = catalog.importance(y);
            total += self.complementary_likelihood(x, y) * self.complementary(x, y) * w_y
                - self.substitutable_likelihood(x, y) * self.substitutable(x, y) * w_y
                + self.proactive_rec(catalog, y, depth - 1, memo);
        }
        memo.insert((x.0, depth), total);
        total
    }

    /// Reactive impact `RI_{w_x,τ}(S_G, x, d)` (Eq. 10): the propensity of the
    /// items already promoted (`promoted`) to raise the market's preference
    /// for `x`, propagated up to `d` hops.
    ///
    /// Only impact chains that originate at a previously promoted item
    /// contribute; when nothing has been promoted yet the reactive impact is
    /// zero.
    pub fn reactive_impact(
        &self,
        catalog: &ItemCatalog,
        x: ItemId,
        promoted: &[ItemId],
        depth: u32,
    ) -> f64 {
        if promoted.is_empty() {
            return 0.0;
        }
        let w_x = catalog.importance(x);
        let promoted_set: std::collections::HashSet<u32> = promoted.iter().map(|i| i.0).collect();
        let mut memo = HashMap::new();
        self.reactive_rec(x, w_x, x, &promoted_set, depth, &mut memo)
    }

    fn reactive_rec(
        &self,
        target: ItemId,
        w_x: f64,
        current: ItemId,
        promoted: &std::collections::HashSet<u32>,
        depth: u32,
        memo: &mut HashMap<(u32, u32), f64>,
    ) -> f64 {
        if depth == 0 {
            return 0.0;
        }
        if let Some(&v) = memo.get(&(current.0, depth)) {
            return v;
        }
        let mut total = 0.0;
        for &z in self.related_items(current) {
            if z == target {
                continue;
            }
            // Direct contribution only from items that have been promoted.
            if promoted.contains(&z.0) {
                total += self.complementary_likelihood(z, current)
                    * self.complementary(z, current)
                    * w_x
                    - self.substitutable_likelihood(z, current)
                        * self.substitutable(z, current)
                        * w_x;
            }
            total += self.reactive_rec(target, w_x, z, promoted, depth - 1, memo);
        }
        memo.insert((current.0, depth), total);
        total
    }

    /// Dynamic reachability `DR(x) = PI(x, d) + RI(x, d)` (Eq. 1).
    pub fn dynamic_reachability(
        &self,
        catalog: &ItemCatalog,
        x: ItemId,
        promoted: &[ItemId],
        depth: u32,
    ) -> f64 {
        self.proactive_impact(catalog, x, depth) + self.reactive_impact(catalog, x, promoted, depth)
    }
}

/// Picks the not-yet-promoted item of a target market with the highest
/// dynamic reachability.  Returns `None` when `candidates` is empty.
pub fn best_item_by_reachability(
    impact: &ItemImpactModel,
    catalog: &ItemCatalog,
    market: &TargetMarket,
    candidates: &[ItemId],
    promoted: &[ItemId],
) -> Option<ItemId> {
    candidates
        .iter()
        .copied()
        .map(|x| {
            (
                x,
                impact.dynamic_reachability(catalog, x, promoted, market.diameter),
            )
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0 .0.cmp(&a.0 .0)))
        .map(|(x, _)| x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_diffusion::scenario::toy_scenario;

    fn impact_model() -> (ItemImpactModel, ItemCatalog) {
        let scenario = toy_scenario();
        let users: Vec<UserId> = scenario.users().collect();
        let model = ItemImpactModel::new(scenario.initial_perception(), &users, 64);
        (model, scenario.catalog().clone())
    }

    #[test]
    fn averages_match_uniform_perception() {
        let scenario = toy_scenario();
        let users: Vec<UserId> = scenario.users().collect();
        let m = ItemImpactModel::new(scenario.initial_perception(), &users, 64);
        let direct = scenario
            .initial_perception()
            .complementary(UserId(0), ItemId(0), ItemId(1));
        assert!((m.complementary(ItemId(0), ItemId(1)) - direct).abs() < 1e-12);
    }

    #[test]
    fn likelihoods_are_normalised() {
        let (m, _) = impact_model();
        let lc = m.complementary_likelihood(ItemId(0), ItemId(1));
        let ls = m.substitutable_likelihood(ItemId(0), ItemId(1));
        assert!((lc + ls - 1.0).abs() < 1e-9 || (lc == 0.0 && ls == 0.0));
        // The Fig.1 KG has no substitutable relations: LC must dominate.
        assert!(lc > 0.9);
    }

    #[test]
    fn unrelated_pairs_have_zero_impact_terms() {
        let (m, _) = impact_model();
        // AirPods (1) and cable (3) share nothing in the Fig. 1 KG.
        assert_eq!(m.complementary(ItemId(1), ItemId(3)), 0.0);
        assert_eq!(m.complementary_likelihood(ItemId(1), ItemId(3)), 0.0);
    }

    #[test]
    fn proactive_impact_is_zero_at_depth_zero() {
        let (m, catalog) = impact_model();
        assert_eq!(m.proactive_impact(&catalog, ItemId(0), 0), 0.0);
    }

    #[test]
    fn proactive_impact_grows_with_depth() {
        let (m, catalog) = impact_model();
        let d1 = m.proactive_impact(&catalog, ItemId(0), 1);
        let d2 = m.proactive_impact(&catalog, ItemId(0), 2);
        assert!(d1 > 0.0);
        assert!(d2 >= d1);
    }

    #[test]
    fn reactive_impact_requires_promoted_items() {
        let (m, catalog) = impact_model();
        assert_eq!(m.reactive_impact(&catalog, ItemId(1), &[], 3), 0.0);
        let with_promoted = m.reactive_impact(&catalog, ItemId(1), &[ItemId(0)], 3);
        assert!(with_promoted > 0.0);
    }

    #[test]
    fn central_item_has_highest_reachability() {
        // In the Fig. 1 KG the iPhone is connected (complementarily) to all
        // three other items, so its proactive impact dominates.
        let (m, catalog) = impact_model();
        let dr_iphone = m.dynamic_reachability(&catalog, ItemId(0), &[], 2);
        let dr_cable = m.dynamic_reachability(&catalog, ItemId(3), &[], 2);
        assert!(dr_iphone > dr_cable);
    }

    #[test]
    fn best_item_selection_prefers_highest_dr() {
        let scenario = toy_scenario();
        let users: Vec<UserId> = scenario.users().collect();
        let m = ItemImpactModel::new(scenario.initial_perception(), &users, 64);
        let market = TargetMarket {
            index: 0,
            nominees: vec![(UserId(0), ItemId(0)), (UserId(1), ItemId(3))],
            users: users.clone(),
            diameter: 2,
        };
        let best = best_item_by_reachability(
            &m,
            scenario.catalog(),
            &market,
            &[ItemId(0), ItemId(3)],
            &[],
        );
        assert_eq!(best, Some(ItemId(0)));
        assert_eq!(
            best_item_by_reachability(&m, scenario.catalog(), &market, &[], &[]),
            None
        );
    }

    #[test]
    fn promoted_complements_increase_reachability() {
        let (m, catalog) = impact_model();
        let without = m.dynamic_reachability(&catalog, ItemId(2), &[], 2);
        let with = m.dynamic_reachability(&catalog, ItemId(2), &[ItemId(0)], 2);
        assert!(with > without);
    }
}
