//! # imdpp-core
//!
//! The IMDPP problem (Influence Maximization based on Dynamic Personal
//! Perception) and the **Dysim** approximation algorithm of the ICDE 2021
//! paper, together with the submodular-maximization toolkit behind its
//! approximation guarantees.
//!
//! Crate layout:
//!
//! * [`problem`] — the IMDPP instance: scenario + seeding costs + budget +
//!   number of promotions (Definition 2),
//! * [`eval`] — Monte-Carlo evaluation of the importance-aware influence
//!   `σ(S)` and of the auxiliary quantities Dysim needs (`σ_τ`, `π_τ`,
//!   expected perceptions),
//! * [`nominees`] — MCP nominee selection (Procedure 2) with CELF-style lazy
//!   evaluation, generic over the estimator via [`oracle::SpreadOracle`],
//! * [`oracle`] — the [`SpreadOracle`] trait that lets callers pick between
//!   forward Monte-Carlo and RR-sketch estimation (`imdpp-sketch`), the
//!   [`OracleKind`] config knob, and the [`RefreshableOracle`] /
//!   [`oracle::ScenarioUpdate`] machinery for incremental maintenance under
//!   world drift,
//! * [`market`] — target-market identification: nominee clustering, MIOA
//!   expansion, θ-overlap grouping (TMI),
//! * [`ordering`] — market-ordering metrics AE / PF / SZ / RMS / RD
//!   (Sec. VI-D),
//! * [`dre`] — dynamic reachability (proactive / reactive impact, Eqs. 1, 9,
//!   10),
//! * [`tdsi`] — substantial influence and promotional-timing search
//!   (Eqs. 2, 11–13),
//! * [`dysim`] — the full Dysim driver (Algorithm 1) with ablation switches,
//!   oracle-parameterized at the nominee-selection stage,
//! * [`adaptive`] — the adaptive-IM variant of Sec. V-D, with per-round
//!   world drift and incremental oracle refresh,
//! * [`submodular`] — greedy / CELF / double-greedy USM / 1/12-SMK machinery
//!   (Theorems 2–4),
//! * [`theory`] — constructions used by the hardness and
//!   (non-)monotonicity arguments (Fig. 7, Theorem 1), exercised by tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod dre;
pub mod dysim;
pub mod eval;
pub mod market;
pub mod nominees;
pub mod oracle;
pub mod ordering;
pub mod problem;
pub mod submodular;
pub mod tdsi;
pub mod theory;

pub use adaptive::{adaptive_dysim_with_oracle, AdaptiveReport};
pub use dysim::{Dysim, DysimConfig};
pub use eval::{Evaluator, MonteCarloOracle};
pub use market::TargetMarket;
pub use nominees::Nominee;
pub use oracle::{OracleKind, RefreshStats, RefreshableOracle, ScenarioUpdate, SpreadOracle};
pub use ordering::MarketOrdering;
pub use problem::{CostModel, ImdppInstance};

pub use imdpp_diffusion::{ImdppError, Seed, SeedGroup};
pub use imdpp_graph::{EdgeUpdate, ItemId, UserId};
