//! Monte-Carlo evaluation of the quantities Dysim and the baselines need.
//!
//! All evaluation goes through the diffusion crate's simulator; this module
//! packages the specific metrics of the paper:
//!
//! * the importance-aware influence `σ(S)` (Definition 1),
//! * its restriction to a target market, `σ_τ(S)`,
//! * the future-adoption likelihood `π_τ(S)` (Eq. 13),
//! * the *static* first-promotion spread `f(N)` used by nominee selection
//!   (probabilities assigned at the beginning of the promotion),
//! * the expected post-campaign perceptions used by dynamic reachability.

use crate::nominees::Nominee;
use crate::oracle::SpreadOracle;
use crate::problem::ImdppInstance;
use imdpp_diffusion::{simulate, DynamicsConfig, Scenario, Seed, SeedGroup, SpreadEstimator};
use imdpp_graph::UserId;
use imdpp_kg::PersonalPerception;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte-Carlo evaluator bound to an IMDPP instance.
#[derive(Clone, Debug)]
pub struct Evaluator<'a> {
    instance: &'a ImdppInstance,
    /// Frozen-dynamics copy of the scenario, used by the static objective of
    /// nominee selection (Lemma 1 conditions).
    frozen_scenario: Scenario,
    samples: usize,
    base_seed: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator using `samples` Monte-Carlo samples per query.
    pub fn new(instance: &'a ImdppInstance, samples: usize, base_seed: u64) -> Self {
        let frozen_scenario = instance.scenario().with_dynamics(DynamicsConfig::frozen());
        Evaluator {
            instance,
            frozen_scenario,
            samples,
            base_seed,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &ImdppInstance {
        self.instance
    }

    /// Number of Monte-Carlo samples per query.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Estimates the importance-aware influence spread `σ(S)` over the full
    /// campaign of `T` promotions.
    pub fn spread(&self, seeds: &SeedGroup) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        SpreadEstimator::new(self.instance.scenario(), self.samples, self.base_seed)
            .mean_spread(seeds, self.instance.promotions())
    }

    /// Estimates `σ_τ(S)`: the spread restricted to the users of a target
    /// market.
    pub fn spread_in(&self, seeds: &SeedGroup, users: &[UserId]) -> f64 {
        if seeds.is_empty() || users.is_empty() {
            return 0.0;
        }
        let scenario = self.instance.scenario();
        SpreadEstimator::new(scenario, self.samples, self.base_seed)
            .estimate_metric(seeds, self.instance.promotions(), |out| {
                out.weighted_spread_in(scenario, users)
            })
            .mean
    }

    /// Estimates `π_τ(S)`: the expected likelihood of the users in `users`
    /// adopting their not-yet-adopted items in a further promotion after the
    /// campaign of `S` has run (Eq. 13).
    pub fn future_likelihood_in(&self, seeds: &SeedGroup, users: &[UserId]) -> f64 {
        if users.is_empty() {
            return 0.0;
        }
        let scenario = self.instance.scenario();
        let users_vec = users.to_vec();
        SpreadEstimator::new(scenario, self.samples, self.base_seed)
            .estimate_metric(seeds, self.instance.promotions(), move |out| {
                out.state()
                    .future_adoption_likelihood(scenario, users_vec.iter().copied())
            })
            .mean
    }

    /// The static nominee-selection objective `f(N)`: the spread of the
    /// nominees all placed in the first promotion with `P_pref`, `P_act` and
    /// `P_ext` fixed at their initial values (the conditions of Lemma 1 under
    /// which `f` is submodular).
    pub fn static_first_promotion_spread(&self, nominees: &[Nominee]) -> f64 {
        if nominees.is_empty() {
            return 0.0;
        }
        let seeds: SeedGroup = nominees.iter().map(|&(u, x)| Seed::new(u, x, 1)).collect();
        SpreadEstimator::new(&self.frozen_scenario, self.samples, self.base_seed)
            .mean_spread(&seeds, 1)
    }

    /// The expected post-campaign perceptions of a set of users: the
    /// meta-graph weight vectors averaged over Monte-Carlo realisations of
    /// the campaign of `seeds` (the expectation illustrated in Fig. 6(c)).
    ///
    /// Returns a [`PersonalPerception`] over *all* users in which the users
    /// outside `users` keep their initial weightings.
    pub fn expected_perception(&self, seeds: &SeedGroup, users: &[UserId]) -> PersonalPerception {
        let scenario = self.instance.scenario();
        let mut perception = scenario.initial_perception().clone();
        if users.is_empty() || scenario.dynamics().frozen {
            return perception;
        }
        let m_count = perception.metagraph_count();
        let mut sums = vec![0.0f64; users.len() * m_count];
        for i in 0..self.samples {
            let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(i as u64));
            let out = simulate(scenario, seeds, self.instance.promotions(), &mut rng);
            for (ui, &u) in users.iter().enumerate() {
                let w = out.state().perception().weight_vector(u);
                for (mi, &wv) in w.iter().enumerate() {
                    sums[ui * m_count + mi] += wv;
                }
            }
        }
        for (ui, &u) in users.iter().enumerate() {
            for mi in 0..m_count {
                perception.set_weight(
                    u,
                    imdpp_kg::MetaGraphId(mi as u32),
                    sums[ui * m_count + mi] / self.samples as f64,
                );
            }
        }
        perception
    }
}

impl SpreadOracle for Evaluator<'_> {
    /// Forward Monte-Carlo estimation of `f(N)` (the paper's reference
    /// estimator): a frozen-dynamics simulation per sample.
    fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        self.static_first_promotion_spread(nominees)
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }
}

/// An *owned* forward Monte-Carlo `f(N)` oracle.
///
/// Unlike [`Evaluator`], which borrows an instance, this oracle owns a
/// frozen copy of the scenario, so it can outlive the per-round instances
/// of the adaptive loop and implement
/// [`RefreshableOracle`](crate::oracle::RefreshableOracle): a refresh
/// simply swaps the scenario (forward Monte-Carlo keeps no amortized state,
/// so the "recomputed fraction" is reported as `1.0`).
#[derive(Clone, Debug)]
pub struct MonteCarloOracle {
    frozen: Scenario,
    samples: usize,
    base_seed: u64,
    /// Additive seed offset rotated by `begin_round` so that each adaptive
    /// round draws fresh sampling streams (`base_seed + t`, the reference
    /// loop's re-seeding discipline).  Zero outside the adaptive loop.
    round: u64,
}

impl MonteCarloOracle {
    /// Creates the oracle for `scenario` with `samples` Monte-Carlo samples
    /// per query.
    pub fn new(scenario: &Scenario, samples: usize, base_seed: u64) -> Self {
        MonteCarloOracle {
            frozen: scenario.with_dynamics(DynamicsConfig::frozen()),
            samples: samples.max(1),
            base_seed,
            round: 0,
        }
    }

    /// The frozen scenario the oracle estimates against.
    pub fn scenario(&self) -> &Scenario {
        &self.frozen
    }
}

impl SpreadOracle for MonteCarloOracle {
    fn static_spread(&self, nominees: &[Nominee]) -> f64 {
        if nominees.is_empty() {
            return 0.0;
        }
        let seeds: SeedGroup = nominees.iter().map(|&(u, x)| Seed::new(u, x, 1)).collect();
        SpreadEstimator::new(
            &self.frozen,
            self.samples,
            self.base_seed.wrapping_add(self.round),
        )
        .mean_spread(&seeds, 1)
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }
}

impl crate::oracle::RefreshableOracle for MonteCarloOracle {
    fn refresh(
        &mut self,
        updated: &Scenario,
        _update: &crate::oracle::ScenarioUpdate,
    ) -> crate::oracle::RefreshStats {
        self.frozen = updated.with_dynamics(DynamicsConfig::frozen());
        // Forward Monte-Carlo keeps no amortized state: swapping the
        // scenario recomputes everything from the next query on.
        crate::oracle::RefreshStats::full_rebuild()
    }

    fn begin_round(&mut self, round: u32) {
        self.round = round as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;
    use imdpp_graph::ItemId;

    fn instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 4.0, 2).unwrap()
    }

    fn one_seed() -> SeedGroup {
        SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)])
    }

    #[test]
    fn empty_group_has_zero_spread() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 8, 1);
        assert_eq!(ev.spread(&SeedGroup::new()), 0.0);
        assert_eq!(ev.spread_in(&SeedGroup::new(), &[UserId(0)]), 0.0);
        assert_eq!(ev.static_first_promotion_spread(&[]), 0.0);
    }

    #[test]
    fn spread_is_at_least_seed_importance() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 2);
        assert!(ev.spread(&one_seed()) >= 1.0);
    }

    #[test]
    fn restricted_spread_is_bounded_by_total() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 3);
        let all: Vec<UserId> = inst.scenario().users().collect();
        let total = ev.spread(&one_seed());
        let subset = ev.spread_in(&one_seed(), &[UserId(0), UserId(1)]);
        let everyone = ev.spread_in(&one_seed(), &all);
        assert!(subset <= total + 1e-9);
        assert!((everyone - total).abs() < 1e-9);
    }

    #[test]
    fn static_objective_matches_frozen_single_promotion() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 4);
        let f = ev.static_first_promotion_spread(&[(UserId(0), ItemId(0))]);
        assert!(f >= 1.0);
        // With two nominees the static objective cannot decrease (monotone
        // under static probabilities, Lemma 1).
        let f2 =
            ev.static_first_promotion_spread(&[(UserId(0), ItemId(0)), (UserId(2), ItemId(0))]);
        assert!(f2 + 1e-9 >= f);
    }

    #[test]
    fn future_likelihood_is_nonnegative_and_grows_with_seeds() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 5);
        let users: Vec<UserId> = inst.scenario().users().collect();
        let none = ev.future_likelihood_in(&SeedGroup::new(), &users);
        let some = ev.future_likelihood_in(&one_seed(), &users);
        assert!(none >= 0.0);
        assert!(some >= none);
    }

    #[test]
    fn owned_monte_carlo_oracle_matches_the_evaluator() {
        use crate::oracle::{RefreshableOracle, ScenarioUpdate};
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 4);
        let mc = MonteCarloOracle::new(inst.scenario(), 16, 4);
        let nominees = [(UserId(0), ItemId(0)), (UserId(2), ItemId(1))];
        // Same samples + same seed + same frozen scenario = same estimate.
        assert_eq!(ev.static_spread(&nominees), mc.static_spread(&nominees));
        assert_eq!(mc.static_spread(&[]), 0.0);
        assert_eq!(mc.name(), "monte-carlo");

        // Refreshing moves the estimate to the drifted world and reports a
        // full rebuild (MC has no amortized state).
        let drifted = inst
            .scenario()
            .with_base_preference(UserId(1), ItemId(0), 0.95);
        let update = ScenarioUpdate::Preferences(vec![(UserId(1), ItemId(0), 0.95)]);
        let mut mc2 = mc.clone();
        assert_eq!(mc2.refresh(&drifted, &update).resampled_fraction(), 1.0);
        let fresh = MonteCarloOracle::new(&drifted, 16, 4);
        assert_eq!(mc2.static_spread(&nominees), fresh.static_spread(&nominees));
    }

    #[test]
    fn expected_perception_moves_weights_of_reached_users() {
        let inst = instance();
        let ev = Evaluator::new(&inst, 16, 6);
        let p = ev.expected_perception(&one_seed(), &[UserId(0), UserId(1)]);
        // The seeded user adopts the iPhone; with any further adoption its
        // weights move above the initial 0.2 in at least some samples, so the
        // average must be >= the initial value and > for the seed user when
        // any pair evidence exists.  At minimum it must stay a valid weight.
        for m in 0..p.metagraph_count() {
            let w = p.weight(UserId(0), imdpp_kg::MetaGraphId(m as u32));
            assert!((0.01..=1.0).contains(&w));
        }
        // Users not in the averaged set keep their initial weights.
        let w5 = p.weight_vector(UserId(5)).to_vec();
        assert_eq!(
            w5,
            inst.scenario()
                .initial_perception()
                .weight_vector(UserId(5))
        );
    }
}
