//! Generic submodular-maximization machinery behind Theorems 2–4.
//!
//! The paper reduces the restricted IMDPP (static probabilities) to
//! non-monotone submodular maximization under a knapsack constraint (SMK) and
//! gives a `1/12`-approximation built from three ingredients:
//!
//! 1. a greedy by marginal cost-performance ratio run until the budget is
//!    *just* violated (Lemma 3),
//! 2. the linear-time deterministic `1/3` (randomised `1/2`) double-greedy
//!    for unconstrained submodular maximization (USM, Buchbinder et al.),
//! 3. a combiner that also considers the best single element and repairs
//!    infeasibility by dropping the violating element (Theorem 3).
//!
//! The implementations are generic over a [`SetFunction`] oracle so they can
//! be unit-tested against closed-form submodular functions (coverage,
//! cut, …) and reused by the OPT baseline.

/// Oracle access to a set function over the ground set `0..ground_size`.
pub trait SetFunction {
    /// Size of the ground set.
    fn ground_size(&self) -> usize;
    /// Evaluates the function on a subset (given as a sorted slice of
    /// distinct indices).
    fn eval(&mut self, subset: &[usize]) -> f64;
    /// Cost of a single element (defaults to 1.0).
    fn cost(&self, _element: usize) -> f64 {
        1.0
    }
}

/// Outcome of a maximization routine.
#[derive(Clone, Debug, Default)]
pub struct MaximizationResult {
    /// The selected subset (sorted).
    pub subset: Vec<usize>,
    /// Objective value of the subset.
    pub value: f64,
    /// Number of oracle evaluations used.
    pub evaluations: usize,
}

fn eval_sorted(f: &mut impl SetFunction, subset: &mut Vec<usize>) -> f64 {
    subset.sort_unstable();
    subset.dedup();
    f.eval(subset)
}

/// Budgeted greedy by marginal cost-performance ratio.
///
/// When `allow_violation` is true the greedy keeps adding the best-ratio
/// element until the budget is *just violated* (the set returned includes the
/// violating element), exactly as in Lemma 3; otherwise elements that do not
/// fit are skipped (Procedure 2 behaviour).
pub fn greedy_mcp(
    f: &mut impl SetFunction,
    budget: f64,
    allow_violation: bool,
) -> MaximizationResult {
    let n = f.ground_size();
    let mut selected: Vec<usize> = Vec::new();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut current = 0.0;
    let mut spent = 0.0;
    let mut evaluations = 0usize;
    loop {
        // (position, gain, exact value with the element, ratio)
        let mut best: Option<(usize, f64, f64, f64)> = None;
        for (pos, &e) in remaining.iter().enumerate() {
            let cost = f.cost(e);
            if !allow_violation && cost > budget - spent {
                continue;
            }
            if allow_violation && spent > budget {
                break;
            }
            let mut with = selected.clone();
            with.push(e);
            let value = eval_sorted(f, &mut with);
            evaluations += 1;
            let gain = value - current;
            let ratio = gain / cost;
            if best.is_none_or(|(_, _, _, r)| ratio > r) {
                best = Some((pos, gain, value, ratio));
            }
        }
        match best {
            Some((pos, gain, value_with, _)) => {
                let e = remaining.remove(pos);
                // Lemma 3 stops when a negative marginal gain occurs.
                if gain <= 0.0 && allow_violation {
                    break;
                }
                if gain <= 0.0 && !allow_violation {
                    break;
                }
                selected.push(e);
                // lint: allow(float-accum) — budget spend is a fold over the
                // selection order, which is itself deterministic; costs are
                // instance inputs, not oracle estimates.
                spent += f.cost(e);
                // Install the oracle's exact value for the grown set rather
                // than accumulating gains: a running `current += gain` drifts
                // by ulps from `eval(selected)` and can flip later ratio
                // comparisons (the PR 7 CELF bug class).
                current = value_with;
                if allow_violation && spent > budget {
                    break;
                }
            }
            None => break,
        }
        if remaining.is_empty() {
            break;
        }
    }
    selected.sort_unstable();
    let value = if selected.is_empty() {
        0.0
    } else {
        f.eval(&selected)
    };
    MaximizationResult {
        subset: selected,
        value,
        evaluations,
    }
}

/// Deterministic double-greedy for Unconstrained Submodular Maximization
/// (Buchbinder et al.), restricted to a sub-ground-set.  Guarantees a `1/3`
/// approximation deterministically (`1/2` in expectation for the randomised
/// variant) for non-negative submodular functions.
pub fn double_greedy_usm(f: &mut impl SetFunction, ground: &[usize]) -> MaximizationResult {
    let mut x: Vec<usize> = Vec::new();
    let mut y: Vec<usize> = ground.to_vec();
    y.sort_unstable();
    let mut evaluations = 0usize;
    for &e in ground {
        let mut x_with = x.clone();
        x_with.push(e);
        let a = eval_sorted(f, &mut x_with) - f.eval(&x);
        let mut y_without: Vec<usize> = y.iter().copied().filter(|&v| v != e).collect();
        let b = f.eval(&y_without) - f.eval(&y);
        evaluations += 4;
        if a >= b {
            x = x_with;
            x.sort_unstable();
        } else {
            y_without.sort_unstable();
            y = y_without;
        }
    }
    let value = f.eval(&x);
    MaximizationResult {
        subset: x,
        value,
        evaluations,
    }
}

/// The `1/12`-approximation for non-monotone submodular maximization under a
/// knapsack constraint (Theorem 3), assembled from two greedy passes, one USM
/// pass and the best single element, with an infeasibility repair step.
pub fn smk_one_twelfth(f: &mut impl SetFunction, budget: f64) -> MaximizationResult {
    let n = f.ground_size();
    let mut evaluations = 0usize;

    // S1: greedy until the budget is just violated.
    let s1 = greedy_mcp(f, budget, true);
    evaluations += s1.evaluations;

    // S2: greedy on the ground set without S1.
    let mut remaining_f = RestrictedFunction {
        inner: f,
        allowed: (0..n).filter(|e| !s1.subset.contains(e)).collect(),
    };
    let s2 = greedy_mcp(&mut remaining_f, budget, true);
    evaluations += s2.evaluations;

    // USM on the ground set S1.
    let usm = double_greedy_usm(f, &s1.subset);
    evaluations += usm.evaluations;

    // Best single affordable element.
    let mut best_single: Option<(usize, f64)> = None;
    for e in 0..n {
        if f.cost(e) > budget {
            continue;
        }
        let v = f.eval(&[e]);
        evaluations += 1;
        if best_single.is_none_or(|(_, bv)| v > bv) {
            best_single = Some((e, v));
        }
    }

    // Candidate solutions, repaired to feasibility by dropping the last
    // (violating) element when needed.
    let mut candidates: Vec<Vec<usize>> = Vec::new();
    for cand in [&s1.subset, &s2.subset, &usm.subset] {
        candidates.push(make_feasible(f, cand, budget));
    }
    if let Some((e, _)) = best_single {
        candidates.push(vec![e]);
    }
    candidates.push(Vec::new());

    let mut best = MaximizationResult::default();
    for cand in candidates {
        let value = if cand.is_empty() { 0.0 } else { f.eval(&cand) };
        evaluations += 1;
        if value > best.value || (best.subset.is_empty() && !cand.is_empty() && value >= best.value)
        {
            best = MaximizationResult {
                subset: cand,
                value,
                evaluations: 0,
            };
        }
    }
    best.evaluations = evaluations;
    best
}

fn make_feasible(f: &impl SetFunction, subset: &[usize], budget: f64) -> Vec<usize> {
    let mut set = subset.to_vec();
    set.sort_unstable();
    // lint: allow(float-accum) — cost of a *sorted* set: the fold order is
    // fixed, so the sum is bit-stable across runs.
    let mut cost: f64 = set.iter().map(|&e| f.cost(e)).sum();
    // Drop the most expensive elements until feasible.
    while cost > budget && !set.is_empty() {
        let (pos, _) = set
            .iter()
            .enumerate()
            .max_by(|a, b| f.cost(*a.1).partial_cmp(&f.cost(*b.1)).unwrap())
            .unwrap();
        cost -= f.cost(set[pos]);
        set.remove(pos);
    }
    set
}

struct RestrictedFunction<'a, F: SetFunction> {
    inner: &'a mut F,
    allowed: Vec<usize>,
}

impl<F: SetFunction> SetFunction for RestrictedFunction<'_, F> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }
    fn eval(&mut self, subset: &[usize]) -> f64 {
        let filtered: Vec<usize> = subset
            .iter()
            .copied()
            .filter(|e| self.allowed.contains(e))
            .collect();
        self.inner.eval(&filtered)
    }
    fn cost(&self, element: usize) -> f64 {
        if self.allowed.contains(&element) {
            self.inner.cost(element)
        } else {
            f64::INFINITY
        }
    }
}

/// Empirically checks the submodularity inequality (Definition 3) of a set
/// function on every `(X ⊆ Y, e ∉ Y)` triple drawn from the given subsets.
/// Used by the theory tests to validate Lemma 1 on small instances.
pub fn check_submodularity_on(
    f: &mut impl SetFunction,
    subsets: &[Vec<usize>],
    tolerance: f64,
) -> bool {
    let n = f.ground_size();
    for x in subsets {
        for y in subsets {
            if !x.iter().all(|e| y.contains(e)) {
                continue;
            }
            for e in 0..n {
                if y.contains(&e) {
                    continue;
                }
                let mut xe = x.clone();
                xe.push(e);
                let mut ye = y.clone();
                ye.push(e);
                let gain_x = eval_sorted(f, &mut xe) - f.eval(x);
                let gain_y = eval_sorted(f, &mut ye) - f.eval(y);
                if gain_y > gain_x + tolerance {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Weighted coverage function: element i covers a set of points; value is
    /// the number of distinct points covered.  Monotone submodular.
    struct Coverage {
        covers: Vec<Vec<usize>>,
        costs: Vec<f64>,
    }

    impl SetFunction for Coverage {
        fn ground_size(&self) -> usize {
            self.covers.len()
        }
        fn eval(&mut self, subset: &[usize]) -> f64 {
            let mut points = std::collections::HashSet::new();
            for &e in subset {
                points.extend(self.covers[e].iter().copied());
            }
            points.len() as f64
        }
        fn cost(&self, element: usize) -> f64 {
            self.costs[element]
        }
    }

    fn coverage() -> Coverage {
        Coverage {
            covers: vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![4],
                vec![0, 1, 2, 3],
                vec![5, 6, 7, 8],
            ],
            costs: vec![1.0, 1.0, 1.0, 2.0, 3.0],
        }
    }

    /// A (non-monotone) cut-like function on a tiny graph.
    struct Cut {
        edges: Vec<(usize, usize)>,
        n: usize,
    }

    impl SetFunction for Cut {
        fn ground_size(&self) -> usize {
            self.n
        }
        fn eval(&mut self, subset: &[usize]) -> f64 {
            let inside: std::collections::HashSet<usize> = subset.iter().copied().collect();
            self.edges
                .iter()
                .filter(|(a, b)| inside.contains(a) != inside.contains(b))
                .count() as f64
        }
    }

    #[test]
    fn greedy_mcp_respects_budget_without_violation() {
        let mut f = coverage();
        let r = greedy_mcp(&mut f, 2.0, false);
        // lint: allow(float-accum) — test assertion over a sorted result set.
        let cost: f64 = r.subset.iter().map(|&e| f.cost(e)).sum();
        assert!(cost <= 2.0);
        assert!(r.value >= 4.0); // elements 0 and 1 cover {0,1,2,3}
    }

    #[test]
    fn greedy_mcp_with_violation_overshoots_by_one_element() {
        let mut f = coverage();
        let r = greedy_mcp(&mut f, 1.5, true);
        // lint: allow(float-accum) — test assertion over a sorted result set.
        let cost: f64 = r.subset.iter().map(|&e| f.cost(e)).sum();
        // The set may exceed the budget, but only because of the last element.
        assert!(cost > 1.5 || r.subset.len() <= 1);
        assert!(!r.subset.is_empty());
    }

    #[test]
    fn greedy_finds_full_coverage_with_large_budget() {
        let mut f = coverage();
        let r = greedy_mcp(&mut f, 100.0, false);
        assert_eq!(r.value, 9.0);
    }

    #[test]
    fn double_greedy_handles_nonmonotone_cut() {
        // Path graph 0-1-2-3: the maximum cut selects alternating vertices.
        let mut f = Cut {
            edges: vec![(0, 1), (1, 2), (2, 3)],
            n: 4,
        };
        let ground: Vec<usize> = (0..4).collect();
        let r = double_greedy_usm(&mut f, &ground);
        // Optimal cut value is 3; the deterministic double greedy guarantees >= 1/3 of it.
        assert!(r.value >= 1.0);
        assert!(r.value <= 3.0);
    }

    #[test]
    fn smk_one_twelfth_is_feasible_and_reasonable() {
        let mut f = coverage();
        let budget = 3.0;
        let r = smk_one_twelfth(&mut f, budget);
        // lint: allow(float-accum) — test assertion over a sorted result set.
        let cost: f64 = r.subset.iter().map(|&e| f.cost(e)).sum();
        assert!(cost <= budget + 1e-9, "cost {cost} exceeds budget");
        // Optimum with budget 3 is 6 (elements {0,1,2} -> 5 points, or {3,2} -> 5,
        // element 4 alone -> 4). Greedy reaches at least 1/12 of it trivially;
        // in practice it should reach at least 4.
        assert!(r.value >= 4.0, "value = {}", r.value);
    }

    #[test]
    fn smk_on_cut_function_is_feasible() {
        let mut f = Cut {
            edges: vec![(0, 1), (1, 2), (2, 3), (3, 0)],
            n: 4,
        };
        let r = smk_one_twelfth(&mut f, 2.0);
        assert!(r.subset.len() <= 2);
        assert!(r.value >= 1.0);
    }

    #[test]
    fn coverage_function_is_submodular() {
        let mut f = coverage();
        let subsets = vec![vec![], vec![0], vec![0, 1], vec![0, 1, 2], vec![1, 3]];
        assert!(check_submodularity_on(&mut f, &subsets, 1e-9));
    }

    #[test]
    fn supermodular_function_fails_the_check() {
        /// f(S) = |S|^2 is supermodular, not submodular.
        struct Square;
        impl SetFunction for Square {
            fn ground_size(&self) -> usize {
                4
            }
            fn eval(&mut self, subset: &[usize]) -> f64 {
                (subset.len() * subset.len()) as f64
            }
        }
        let subsets = vec![vec![], vec![0], vec![0, 1]];
        assert!(!check_submodularity_on(&mut Square, &subsets, 1e-9));
    }

    #[test]
    fn empty_ground_set_is_handled() {
        struct Zero;
        impl SetFunction for Zero {
            fn ground_size(&self) -> usize {
                0
            }
            fn eval(&mut self, _s: &[usize]) -> f64 {
                0.0
            }
        }
        let r = greedy_mcp(&mut Zero, 1.0, false);
        assert!(r.subset.is_empty());
        let r = smk_one_twelfth(&mut Zero, 1.0);
        assert!(r.subset.is_empty());
    }
}
