//! The Dysim driver (Algorithm 1): TMI → DRE → TDSI, with ablation switches
//! and the guard solutions used by the Theorem 5 analysis.
//!
//! The nominee-selection stage (the `f(N)` queries of Procedure 2) is
//! generic over [`crate::oracle::SpreadOracle`]: [`Dysim::solve_with`] — the
//! one driver entry point — accepts any estimator, in particular the
//! RR-sketch oracle of `imdpp-sketch`.  Applications should not call the
//! driver directly: the `imdpp-engine` crate's `Engine` owns oracle
//! construction (via [`DysimConfig::oracle`]), snapshotting and refresh, and
//! is the public face of the suite.  The DRE and TDSI stages always use
//! Monte-Carlo:
//! they query *dynamic* quantities (`σ_τ`, `π_τ`, expected perceptions)
//! that the static sketch does not target.
//!
//! # Example
//!
//! ```
//! use imdpp_core::{CostModel, Dysim, DysimConfig, Evaluator, ImdppInstance};
//! use imdpp_core::eval::MonteCarloOracle;
//! use imdpp_diffusion::scenario::toy_scenario;
//!
//! let scenario = toy_scenario();
//! let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
//! let instance = ImdppInstance::new(scenario, costs, 3.0, 2).unwrap();
//!
//! // The driver estimates f(N) with whatever SpreadOracle it is handed:
//! // forward Monte-Carlo (the paper's reference estimator)...
//! let dysim = Dysim::new(DysimConfig::fast());
//! let evaluator = Evaluator::new(&instance, 8, 0xD751);
//! let report = dysim.solve_with(&instance, &evaluator);
//! assert!(instance.is_feasible(&report.seeds));
//!
//! // ...or any other estimator of the same static quantity.
//! let oracle = MonteCarloOracle::new(instance.scenario(), 8, 0xD751);
//! let via_oracle = dysim.solve_with(&instance, &oracle);
//! assert!(instance.is_feasible(&via_oracle.seeds));
//! ```

use crate::dre::{best_item_by_reachability, ItemImpactModel};
use crate::eval::Evaluator;
use crate::market::{group_markets, identify_markets, TargetMarket, TmiConfig};
use crate::nominees::{select_nominees_with_oracle, Nominee, NomineeSelectionConfig};
use crate::oracle::{OracleKind, SpreadOracle};
use crate::ordering::{order_group, MarketOrdering};
use crate::problem::ImdppInstance;
use crate::tdsi::assign_timings;
use imdpp_diffusion::{Seed, SeedGroup};
use imdpp_graph::ItemId;
use serde::{Deserialize, Serialize};

/// Configuration of a Dysim run.
///
/// Knob-to-paper mapping (figures refer to the ICDE 2021 paper):
///
/// | Knob | Paper counterpart |
/// |---|---|
/// | `mc_samples` | `M = 100` Monte-Carlo samples (footnote 12; Fig. 9's accuracy/latency trade-off) |
/// | `market_overlap_threshold` | overlap threshold `θ` (Fig. 14 sensitivity study) |
/// | `ordering` | market-ordering metrics AE / PF / SZ / RMS / RD (Sec. VI-D, Fig. 11) |
/// | `use_target_markets` | "Dysim w/o TM" ablation (Fig. 10) |
/// | `use_item_priority` | "Dysim w/o IP" ablation (Fig. 10) |
/// | `full_timing_search` | two-slot TDSI window vs full `[t̂, T]` search (Sec. V-C; `tdsi_window` bench) |
/// | `use_guard_solutions` | auxiliary solution `N̄` of the Theorem 5 analysis |
/// | `oracle` | estimator behind Procedure 2's `f(N)` queries (Monte-Carlo vs RR sketch) |
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DysimConfig {
    /// Monte-Carlo samples used by every spread / likelihood estimation
    /// during seed selection (the paper uses `M = 100`; smaller values trade
    /// accuracy for speed).
    pub mc_samples: usize,
    /// Base random seed of the Monte-Carlo estimator (results are
    /// deterministic for a fixed seed).
    pub base_seed: u64,
    /// Only the that-many highest-out-degree users are considered as seed
    /// candidates (`None` = all users).
    pub candidate_users: Option<usize>,
    /// Hard cap on the number of nominees selected by TMI (`None` =
    /// budget-limited only).
    pub max_nominees: Option<usize>,
    /// MIOA maximum-influence-path threshold for target-market expansion.
    pub mioa_threshold: f64,
    /// Overlap threshold `θ` above which two markets join the same group.
    pub market_overlap_threshold: usize,
    /// Metric used to order the markets of a group.
    pub ordering: MarketOrdering,
    /// Ablation switch: when false, all nominees form a single target market
    /// ("Dysim w/o TM" in Fig. 10).
    pub use_target_markets: bool,
    /// Ablation switch: when false, items within a market are promoted in an
    /// arbitrary (catalogue) order instead of by dynamic reachability
    /// ("Dysim w/o IP" in Fig. 10).
    pub use_item_priority: bool,
    /// When true, the final solution is compared against the two guard
    /// solutions of Theorem 5 (all nominees in the first promotion; the best
    /// single seed) and the best of the three is returned.
    pub use_guard_solutions: bool,
    /// When true TDSI searches every timing in `[t̂, T]` instead of the
    /// two-slot window (ablation of the window restriction).
    pub full_timing_search: bool,
    /// Cap on the users sampled when averaging relevance within a market.
    pub impact_user_cap: usize,
    /// Which estimator answers nominee selection's static `f(N)` queries.
    ///
    /// Honoured by the config-driven `imdpp-engine` `Engine`;
    /// [`Dysim::solve_with`] itself takes the oracle as an argument (this
    /// crate cannot construct the sketch without a dependency cycle).
    pub oracle: OracleKind,
    /// Quality bound of the engine's maintained-solution repair: after an
    /// applied update, the repaired seed set is kept only while its static
    /// objective `f(N)` stays ≥ `maintain_bound ×` the fresh-greedy value on
    /// the refreshed estimator; below the bound the cached solution is
    /// dropped and the next solve runs the full pipeline.  `None` disables
    /// maintenance (every solve is a fresh full run); values ≥ 1.0 are
    /// "paranoid mode" — any non-empty update invalidates immediately, so
    /// served solutions are always bit-identical to fresh solves.
    ///
    /// Honoured by the `imdpp-engine` `Engine` for sketch-backed oracles
    /// ([`OracleKind::RrSketch`]); [`Dysim::solve_with`] itself ignores it.
    pub maintain_bound: Option<f64>,
}

impl Default for DysimConfig {
    fn default() -> Self {
        DysimConfig {
            mc_samples: 30,
            base_seed: 0xD751,
            candidate_users: Some(64),
            max_nominees: None,
            mioa_threshold: 0.1,
            market_overlap_threshold: 1,
            ordering: MarketOrdering::AntagonisticExtent,
            use_target_markets: true,
            use_item_priority: true,
            use_guard_solutions: true,
            full_timing_search: false,
            impact_user_cap: 64,
            oracle: OracleKind::MonteCarlo,
            maintain_bound: Some(0.95),
        }
    }
}

impl DysimConfig {
    /// A cheaper configuration for unit tests and small instances.
    pub fn fast() -> Self {
        DysimConfig {
            mc_samples: 8,
            candidate_users: Some(16),
            ..Self::default()
        }
    }

    /// The "Dysim w/o TM" ablation of Fig. 10.
    pub fn without_target_markets(mut self) -> Self {
        self.use_target_markets = false;
        self
    }

    /// The "Dysim w/o IP" ablation of Fig. 10.
    pub fn without_item_priority(mut self) -> Self {
        self.use_item_priority = false;
        self
    }

    /// Selects the estimator behind nominee selection's `f(N)` queries.
    pub fn with_oracle(mut self, oracle: OracleKind) -> Self {
        self.oracle = oracle;
        self
    }

    /// Sets the maintained-solution repair bound (`None` = maintenance off;
    /// see [`DysimConfig::maintain_bound`]).
    pub fn with_maintain_bound(mut self, bound: Option<f64>) -> Self {
        self.maintain_bound = bound;
        self
    }
}

/// Diagnostics collected during a Dysim run.
#[derive(Clone, Debug, Default)]
pub struct DysimReport {
    /// The selected seed group.
    pub seeds: SeedGroup,
    /// The nominees selected by TMI (before timing assignment).
    pub nominees: Vec<Nominee>,
    /// The identified target markets.
    pub markets: Vec<TargetMarket>,
    /// The groups of overlapping markets (indices into `markets`).
    pub groups: Vec<Vec<usize>>,
    /// Total hiring cost of the returned seed group.
    pub total_cost: f64,
    /// Whether a guard solution replaced the market-based solution.
    pub guard_solution_used: bool,
}

/// The Dysim algorithm.
#[derive(Clone, Debug, Default)]
pub struct Dysim {
    config: DysimConfig,
}

impl Dysim {
    /// Creates a Dysim runner with the given configuration.
    pub fn new(config: DysimConfig) -> Self {
        Dysim { config }
    }

    /// The configuration.
    pub fn config(&self) -> &DysimConfig {
        &self.config
    }

    /// Runs Dysim with `nominee_oracle` answering the static `f(N)` queries
    /// of the TMI nominee-selection stage (Procedure 2) and returns the seed
    /// group together with diagnostics.
    ///
    /// This is the one driver entry point (the old `run*` wrappers were
    /// removed after their deprecation cycle).  Applications normally reach
    /// it through `imdpp_engine::Engine`, which constructs the oracle
    /// selected by [`DysimConfig::oracle`] and snapshots it for concurrent
    /// readers; for the reference Monte-Carlo configuration pass an
    /// [`Evaluator`] built from the instance.
    ///
    /// Only nominee selection is oracle-generic: the DRE and TDSI stages
    /// query dynamic quantities (`σ_τ`, `π_τ`, expected perceptions) that
    /// only the Monte-Carlo evaluator targets, so they keep using it
    /// regardless of the oracle passed here.
    pub fn solve_with(
        &self,
        instance: &ImdppInstance,
        nominee_oracle: &dyn SpreadOracle,
    ) -> DysimReport {
        let cfg = &self.config;
        let evaluator = Evaluator::new(instance, cfg.mc_samples, cfg.base_seed);

        // ---- TMI: nominee selection ------------------------------------------
        let universe = instance.nominee_universe(cfg.candidate_users);
        let selection = select_nominees_with_oracle(
            instance,
            nominee_oracle,
            &universe,
            &NomineeSelectionConfig {
                max_nominees: cfg.max_nominees,
                stop_on_nonpositive_gain: true,
            },
        );
        let nominees = selection.nominees.clone();
        if nominees.is_empty() {
            return DysimReport::default();
        }

        // ---- TMI: target markets ----------------------------------------------
        let tmi_config = TmiConfig {
            mioa_threshold: cfg.mioa_threshold,
            overlap_threshold: cfg.market_overlap_threshold,
            ..TmiConfig::default()
        };
        let markets: Vec<TargetMarket> = if cfg.use_target_markets {
            identify_markets(instance, &nominees, &tmi_config)
        } else {
            // Ablation: one market holding every nominee and every user it can
            // reach.
            vec![crate::market::identify_market(
                instance,
                0,
                nominees.clone(),
                &tmi_config,
            )]
        };
        let groups = group_markets(&markets, cfg.market_overlap_threshold);

        // ---- Per group: DRE + TDSI ---------------------------------------------
        let total_promotions = instance.promotions();
        let mut all_seeds = SeedGroup::new();
        for group in &groups {
            let ordered = order_group(
                instance,
                &evaluator,
                &markets,
                group,
                cfg.ordering,
                cfg.base_seed,
            );
            let total_group_nominees: usize =
                ordered.iter().map(|&i| markets[i].nominees.len()).sum();
            let mut group_seeds = SeedGroup::new();
            let mut cumulative_duration = 0u32;
            for &market_idx in &ordered {
                let market = &markets[market_idx];
                // Promotional duration T_τ ∝ the market's nominee share.
                let share = market.nominees.len() as f64 / total_group_nominees.max(1) as f64;
                let duration = ((share * total_promotions as f64).floor() as u32).max(1);
                cumulative_duration = (cumulative_duration + duration).min(total_promotions);

                // DRE: expected perceptions after the group's seeds so far.
                let expected = evaluator.expected_perception(&group_seeds, &market.users);
                let impact = ItemImpactModel::new(&expected, &market.users, cfg.impact_user_cap);

                let mut pending_items: Vec<ItemId> = market.items();
                let mut promoted_items: Vec<ItemId> = group_seeds.items();
                while !pending_items.is_empty() {
                    let next_item = if cfg.use_item_priority {
                        best_item_by_reachability(
                            &impact,
                            instance.scenario().catalog(),
                            market,
                            &pending_items,
                            &promoted_items,
                        )
                        .expect("pending_items is non-empty")
                    } else {
                        pending_items[0]
                    };
                    pending_items.retain(|&x| x != next_item);

                    let pending_nominees: Vec<Nominee> = market
                        .nominees
                        .iter()
                        .copied()
                        .filter(|&(u, x)| x == next_item && !group_seeds.contains_nominee(u, x))
                        .collect();
                    if pending_nominees.is_empty() {
                        continue;
                    }
                    assign_timings(
                        &evaluator,
                        market,
                        pending_nominees,
                        &mut group_seeds,
                        cumulative_duration,
                        total_promotions,
                        cfg.full_timing_search,
                    );
                    promoted_items.push(next_item);
                }
            }
            for seed in group_seeds.seeds() {
                all_seeds.insert(*seed);
            }
        }

        // ---- Guard solutions (Theorem 5's auxiliary solution N̄) ----------------
        let mut guard_solution_used = false;
        if cfg.use_guard_solutions {
            let final_eval = Evaluator::new(instance, cfg.mc_samples, cfg.base_seed ^ 0x5EED);
            let mut best = all_seeds.clone();
            let mut best_value = final_eval.spread(&best);

            // All nominees placed in the first promotion.
            let nominees_first: SeedGroup =
                nominees.iter().map(|&(u, x)| Seed::new(u, x, 1)).collect();
            if instance.is_feasible(&nominees_first) {
                let v = final_eval.spread(&nominees_first);
                if v > best_value {
                    best = nominees_first;
                    best_value = v;
                    guard_solution_used = true;
                }
            }

            // The best single affordable seed among the nominees.
            for &(u, x) in &nominees {
                let single = SeedGroup::from_seeds(vec![Seed::new(u, x, 1)]);
                if !instance.is_feasible(&single) {
                    continue;
                }
                let v = final_eval.spread(&single);
                if v > best_value {
                    best = single;
                    best_value = v;
                    guard_solution_used = true;
                }
            }
            all_seeds = best;
        }

        let total_cost = instance.total_cost(&all_seeds);
        DysimReport {
            seeds: all_seeds,
            nominees,
            markets,
            groups,
            total_cost,
            guard_solution_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn instance(budget: f64, promotions: u32) -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, budget, promotions).unwrap()
    }

    /// The reference configuration: `solve_with` driven by the Monte-Carlo
    /// evaluator.
    fn solve(config: DysimConfig, inst: &ImdppInstance) -> DysimReport {
        let dysim = Dysim::new(config);
        let ev = Evaluator::new(inst, dysim.config().mc_samples, dysim.config().base_seed);
        dysim.solve_with(inst, &ev)
    }

    #[test]
    fn dysim_returns_a_feasible_nonempty_solution() {
        let inst = instance(3.0, 3);
        let report = solve(DysimConfig::fast(), &inst);
        assert!(!report.seeds.is_empty());
        assert!(inst.is_feasible(&report.seeds));
        assert!(report.total_cost <= inst.budget() + 1e-9);
        assert!(!report.nominees.is_empty());
        assert!(!report.markets.is_empty());
    }

    #[test]
    fn dysim_seeds_are_within_promotion_horizon() {
        let inst = instance(4.0, 2);
        let seeds = solve(DysimConfig::fast(), &inst).seeds;
        for s in seeds.seeds() {
            assert!(s.promotion >= 1 && s.promotion <= 2);
        }
    }

    #[test]
    fn dysim_spread_beats_a_random_single_seed() {
        let inst = instance(3.0, 2);
        let seeds = solve(DysimConfig::fast(), &inst).seeds;
        let ev = Evaluator::new(&inst, 64, 77);
        let dysim_spread = ev.spread(&seeds);
        // A weak baseline: seeding the isolated user 5 with the cheapest item.
        let weak = SeedGroup::from_seeds(vec![Seed::new(imdpp_graph::UserId(5), ItemId(3), 1)]);
        let weak_spread = ev.spread(&weak);
        assert!(
            dysim_spread > weak_spread,
            "dysim {dysim_spread} vs weak {weak_spread}"
        );
    }

    #[test]
    fn ablations_produce_feasible_solutions() {
        let inst = instance(3.0, 3);
        let no_tm = solve(DysimConfig::fast().without_target_markets(), &inst).seeds;
        let no_ip = solve(DysimConfig::fast().without_item_priority(), &inst).seeds;
        assert!(inst.is_feasible(&no_tm));
        assert!(inst.is_feasible(&no_ip));
        assert!(!no_tm.is_empty());
        assert!(!no_ip.is_empty());
    }

    #[test]
    fn dysim_is_deterministic_for_a_fixed_seed() {
        let inst = instance(3.0, 2);
        let a = solve(DysimConfig::fast(), &inst).seeds;
        let b = solve(DysimConfig::fast(), &inst).seeds;
        assert_eq!(a, b);
    }

    #[test]
    fn larger_budget_never_reduces_the_number_of_seeds() {
        let small = solve(DysimConfig::fast(), &instance(1.0, 2)).seeds;
        let large = solve(DysimConfig::fast(), &instance(4.0, 2)).seeds;
        assert!(large.len() >= small.len());
    }

    #[test]
    fn every_ordering_metric_runs_end_to_end() {
        let inst = instance(3.0, 2);
        for ordering in MarketOrdering::all() {
            let cfg = DysimConfig {
                ordering,
                ..DysimConfig::fast()
            };
            let seeds = solve(cfg, &inst).seeds;
            assert!(inst.is_feasible(&seeds), "{}", ordering.name());
        }
    }

    #[test]
    fn explicit_monte_carlo_oracle_reproduces_the_default_run() {
        use crate::eval::MonteCarloOracle;
        let inst = instance(3.0, 3);
        let cfg = DysimConfig::fast();
        let default_report = solve(cfg.clone(), &inst);
        let oracle = MonteCarloOracle::new(inst.scenario(), cfg.mc_samples, cfg.base_seed);
        let via_oracle = Dysim::new(cfg).solve_with(&inst, &oracle);
        assert_eq!(default_report.seeds, via_oracle.seeds);
        assert_eq!(default_report.nominees, via_oracle.nominees);
    }

    #[test]
    fn zero_viable_nominees_gives_empty_solution() {
        // Budget below every cost: universe is empty.
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 10.0);
        let inst = ImdppInstance::new(scenario, costs, 5.0, 2).unwrap();
        let report = solve(DysimConfig::fast(), &inst);
        assert!(report.seeds.is_empty());
        assert!(report.nominees.is_empty());
    }
}
