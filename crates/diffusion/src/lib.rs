//! # imdpp-diffusion
//!
//! The dynamic-personal-perception diffusion process of the IMDPP paper and
//! the Monte-Carlo machinery used to estimate the importance-aware influence
//! spread `σ(S)`.
//!
//! The diffusion process (Sec. III of the paper) runs a campaign of `T`
//! promotions.  Within each promotion, influence propagates step by step:
//! a user `u` promoted an item `x` by a friend `u'` adopts it with
//! probability `P_act(u', u) · P_pref(u, x)`, may additionally adopt relevant
//! items through item associations (`P_ext`), and — after every step — the
//! perceptions, preferences and influence strengths of users with new
//! adoptions are updated, producing the ripple effect the paper describes.
//!
//! Crate layout:
//!
//! * [`error`] — the suite-wide typed [`ImdppError`],
//! * [`seeds`] — seeds `(u, x, t)` and seed groups,
//! * [`models`] — triggering-model variants (IC / LT),
//! * [`dynamics`] — the four dynamic factors (relevance measurement,
//!   preference estimation, influence learning, item associations),
//! * [`scenario`] — the immutable world shared by all simulations,
//! * [`state`] — per-simulation mutable state (adoptions + perception),
//! * [`process`] — one stochastic realisation of the campaign,
//! * [`montecarlo`] — parallel spread estimation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamics;
pub mod error;
pub mod models;
pub mod montecarlo;
pub mod process;
pub mod ris;
pub mod scenario;
pub mod seeds;
pub mod state;

pub use dynamics::DynamicsConfig;
pub use error::ImdppError;
pub use models::DiffusionModel;
pub use montecarlo::{SpreadEstimate, SpreadEstimator};
pub use process::{simulate, SimulationOutcome};
pub use ris::RrSets;
pub use scenario::{Scenario, ScenarioBuilder};
pub use seeds::{Seed, SeedGroup};
pub use state::DiffusionState;

pub use imdpp_graph::{ItemId, UserId};
