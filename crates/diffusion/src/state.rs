//! Per-simulation mutable state: adoption sets and the evolving perceptions.
//!
//! Preferences, influence strengths and extra-adoption probabilities are
//! *derived* quantities (functions of the adoption sets, the perceptions and
//! the scenario's base values) exactly as in Fig. 3 of the paper, so the
//! state only stores the two primary quantities and recomputes the rest on
//! demand.

use crate::scenario::Scenario;
use imdpp_graph::{ItemId, UserId};
use imdpp_kg::PersonalPerception;

/// Mutable state of one stochastic realisation of the campaign.
#[derive(Clone, Debug)]
pub struct DiffusionState {
    /// Sorted adoption set `A(u)` per user.
    adopted: Vec<Vec<ItemId>>,
    /// The evolving personal perceptions (meta-graph weightings).
    perception: PersonalPerception,
    /// Total number of adoptions recorded.
    adoption_count: usize,
}

impl DiffusionState {
    /// Creates the initial state of a scenario (no adoptions, initial
    /// perceptions).
    pub fn new(scenario: &Scenario) -> Self {
        DiffusionState {
            adopted: vec![Vec::new(); scenario.user_count()],
            perception: scenario.initial_perception().clone(),
            adoption_count: 0,
        }
    }

    /// The evolving perceptions.
    pub fn perception(&self) -> &PersonalPerception {
        &self.perception
    }

    /// The adoption set `A(u)` (sorted).
    pub fn adopted_items(&self, u: UserId) -> &[ItemId] {
        &self.adopted[u.index()]
    }

    /// Whether `u` has adopted `x`.
    pub fn has_adopted(&self, u: UserId, x: ItemId) -> bool {
        self.adopted[u.index()].binary_search(&x).is_ok()
    }

    /// Total number of `(user, item)` adoptions.
    pub fn adoption_count(&self) -> usize {
        self.adoption_count
    }

    /// Users that have adopted `x`.
    pub fn adopters_of(&self, x: ItemId) -> Vec<UserId> {
        (0..self.adopted.len())
            .filter(|&u| self.adopted[u].binary_search(&x).is_ok())
            .map(UserId::from_index)
            .collect()
    }

    /// Records a batch of new adoptions (the end-of-step bookkeeping of the
    /// diffusion process): adds the items to the adoption sets and applies
    /// the *relevance measurement* update to each affected user's
    /// perceptions (skipped when the dynamics are frozen).
    ///
    /// Adoptions already present are ignored; returns the number of new
    /// adoptions actually recorded.
    pub fn record_adoptions(&mut self, scenario: &Scenario, newly: &[(UserId, ItemId)]) -> usize {
        // Group by user to apply a single perception update per user.  A
        // BTreeMap so the perception updates below run in user order — the
        // updates are per-user independent today, but keyed iteration keeps
        // that invariant structural rather than incidental.
        let mut per_user: std::collections::BTreeMap<UserId, Vec<ItemId>> =
            std::collections::BTreeMap::new();
        let mut recorded = 0usize;
        for &(u, x) in newly {
            if self.has_adopted(u, x) {
                continue;
            }
            let row = &mut self.adopted[u.index()];
            match row.binary_search(&x) {
                Ok(_) => continue,
                Err(pos) => row.insert(pos, x),
            }
            recorded += 1;
            self.adoption_count += 1;
            per_user.entry(u).or_default().push(x);
        }
        if !scenario.dynamics().frozen {
            for (u, new_items) in per_user {
                let all = self.adopted[u.index()].clone();
                self.perception.update_on_adoption(
                    u,
                    &new_items,
                    &all,
                    scenario.dynamics().weight_learning_rate,
                );
            }
        }
        recorded
    }

    /// Dynamic preference `P_pref(u, x, ζ)` under the current state.
    pub fn preference(&self, scenario: &Scenario, u: UserId, x: ItemId) -> f64 {
        scenario.dynamics().preference(
            &self.perception,
            scenario.base_preference(u, x),
            u,
            self.adopted_items(u),
            x,
        )
    }

    /// Dynamic influence strength `P_act(u, v, ζ)` under the current state.
    pub fn influence(&self, scenario: &Scenario, u: UserId, v: UserId) -> f64 {
        scenario.dynamics().influence(
            &self.perception,
            scenario.social().influence(u, v),
            u,
            v,
            self.adopted_items(u),
            self.adopted_items(v),
        )
    }

    /// Extra-adoption probability `P_ext(u, u', x, y, ζ)` under the current
    /// state (the item-association factor).
    pub fn extra_adoption_probability(
        &self,
        scenario: &Scenario,
        user: UserId,
        promoter: UserId,
        promoted: ItemId,
        relevant: ItemId,
    ) -> f64 {
        let influence = self.influence(scenario, promoter, user);
        let preference = self.preference(scenario, user, promoted);
        scenario.dynamics().extra_adoption_probability(
            &self.perception,
            influence,
            preference,
            user,
            promoted,
            relevant,
        )
    }

    /// Aggregated influence probability `AIS(v, y)` that `y` would be
    /// promoted to `v` in the *next* promotion, given the current adoptions
    /// (Eq. (13) and footnote 31 of the paper).
    ///
    /// Under IC this is `1 − Π (1 − P_act(v', v))` over in-neighbours `v'`
    /// that have adopted `y`; under LT it is the (capped) sum of those
    /// strengths.
    pub fn aggregated_influence(&self, scenario: &Scenario, v: UserId, y: ItemId) -> f64 {
        let mut not_influenced = 1.0f64;
        let mut sum = 0.0f64;
        let mut any = false;
        for (v_prime, _) in scenario.social().influencers_of(v) {
            if !self.has_adopted(v_prime, y) {
                continue;
            }
            any = true;
            let p = self.influence(scenario, v_prime, v);
            not_influenced *= 1.0 - p;
            sum += p;
        }
        if !any {
            return 0.0;
        }
        match scenario.model() {
            crate::models::DiffusionModel::IndependentCascade => 1.0 - not_influenced,
            crate::models::DiffusionModel::LinearThreshold => sum.min(1.0),
        }
    }

    /// The likelihood `π(S_G)` (Eq. (13)): expected mass of not-yet-adopted
    /// items that the given users would adopt in the next promotion.
    ///
    /// Only items with positive aggregated influence contribute, so the cost
    /// is proportional to the adopted-item neighbourhood rather than to
    /// `|users| × |items|`.
    pub fn future_adoption_likelihood(
        &self,
        scenario: &Scenario,
        users: impl IntoIterator<Item = UserId>,
    ) -> f64 {
        let mut total = 0.0;
        for v in users {
            // Candidate items: items adopted by at least one in-neighbour.
            let mut candidates: Vec<ItemId> = Vec::new();
            for (v_prime, _) in scenario.social().influencers_of(v) {
                candidates.extend_from_slice(self.adopted_items(v_prime));
            }
            candidates.sort_unstable();
            candidates.dedup();
            for y in candidates {
                if self.has_adopted(v, y) {
                    continue;
                }
                let ais = self.aggregated_influence(scenario, v, y);
                if ais <= 0.0 {
                    continue;
                }
                total += ais * self.preference(scenario, v, y);
            }
        }
        total
    }

    /// Importance-weighted count of all adoptions in the state.
    pub fn weighted_adoptions(&self, scenario: &Scenario) -> f64 {
        let mut total = 0.0;
        for items in &self.adopted {
            for &x in items {
                total += scenario.catalog().importance(x);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::toy_scenario;

    #[test]
    fn new_state_has_no_adoptions() {
        let s = toy_scenario();
        let st = DiffusionState::new(&s);
        assert_eq!(st.adoption_count(), 0);
        assert!(!st.has_adopted(UserId(0), ItemId(0)));
        assert!(st.adopters_of(ItemId(0)).is_empty());
        assert_eq!(st.weighted_adoptions(&s), 0.0);
    }

    #[test]
    fn record_adoptions_updates_sets_and_counts() {
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        let n = st.record_adoptions(&s, &[(UserId(1), ItemId(0)), (UserId(1), ItemId(1))]);
        assert_eq!(n, 2);
        assert!(st.has_adopted(UserId(1), ItemId(0)));
        assert_eq!(st.adopted_items(UserId(1)), &[ItemId(0), ItemId(1)]);
        assert_eq!(st.adopters_of(ItemId(0)), vec![UserId(1)]);
        // Importance of iPhone (1.0) + AirPods (0.5).
        assert!((st.weighted_adoptions(&s) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_adoptions_are_ignored() {
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        st.record_adoptions(&s, &[(UserId(1), ItemId(0))]);
        let n = st.record_adoptions(&s, &[(UserId(1), ItemId(0))]);
        assert_eq!(n, 0);
        assert_eq!(st.adoption_count(), 1);
    }

    #[test]
    fn adoption_raises_preference_for_complements() {
        // Bob adopts the iPhone; his preference for the wireless charger must
        // grow relative to the base preference (Fig. 2 of the paper).
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        let before = st.preference(&s, UserId(1), ItemId(2));
        st.record_adoptions(&s, &[(UserId(1), ItemId(0))]);
        let after = st.preference(&s, UserId(1), ItemId(2));
        assert!(after > before, "{after} vs {before}");
    }

    #[test]
    fn adoption_raises_influence_between_similar_users() {
        // Bob and Cindy both adopt the iPhone; Cindy's influence on Bob grows.
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        let before = st.influence(&s, UserId(2), UserId(1));
        st.record_adoptions(&s, &[(UserId(1), ItemId(0)), (UserId(2), ItemId(0))]);
        let after = st.influence(&s, UserId(2), UserId(1));
        assert!(after > before);
        assert!(after <= 1.0);
    }

    #[test]
    fn influence_of_unconnected_users_stays_zero_without_base_edge() {
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        st.record_adoptions(&s, &[(UserId(0), ItemId(0)), (UserId(5), ItemId(0))]);
        // There is no 5 -> 0 edge, but dynamics add similarity gain on top of
        // base 0.0; the result must stay a valid probability.
        let p = st.influence(&s, UserId(5), UserId(0));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn frozen_dynamics_do_not_touch_perception() {
        let s = toy_scenario().with_dynamics(crate::dynamics::DynamicsConfig::frozen());
        let mut st = DiffusionState::new(&s);
        let w_before = st.perception().weight_vector(UserId(1)).to_vec();
        st.record_adoptions(&s, &[(UserId(1), ItemId(0)), (UserId(1), ItemId(1))]);
        assert_eq!(st.perception().weight_vector(UserId(1)), &w_before[..]);
        // Preference equals the base preference under frozen dynamics.
        assert_eq!(st.preference(&s, UserId(1), ItemId(2)), 0.4);
    }

    #[test]
    fn aggregated_influence_requires_adopting_in_neighbours() {
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        assert_eq!(st.aggregated_influence(&s, UserId(1), ItemId(0)), 0.0);
        // Alice (0) adopts the iPhone; Bob (1) is her out-neighbour.
        st.record_adoptions(&s, &[(UserId(0), ItemId(0))]);
        let ais = st.aggregated_influence(&s, UserId(1), ItemId(0));
        assert!(ais > 0.0 && ais <= 1.0);
    }

    #[test]
    fn aggregated_influence_under_lt_sums_strengths() {
        let s = toy_scenario().with_model(crate::models::DiffusionModel::LinearThreshold);
        let mut st = DiffusionState::new(&s);
        st.record_adoptions(&s, &[(UserId(0), ItemId(0)), (UserId(2), ItemId(0))]);
        let ais = st.aggregated_influence(&s, UserId(1), ItemId(0));
        // Under LT the aggregate is the (dynamic) sum of the two strengths.
        assert!(ais > 0.9 && ais <= 1.0, "ais = {ais}");
    }

    #[test]
    fn future_likelihood_grows_with_adopting_neighbours() {
        let s = toy_scenario();
        let mut st = DiffusionState::new(&s);
        let users: Vec<UserId> = s.users().collect();
        let before = st.future_adoption_likelihood(&s, users.clone());
        assert_eq!(before, 0.0);
        st.record_adoptions(&s, &[(UserId(0), ItemId(0))]);
        let after = st.future_adoption_likelihood(&s, users);
        assert!(after > 0.0);
    }
}
