//! [`ImdppError`]: the typed error shared by every fallible constructor and
//! validator in the suite.
//!
//! Before this type existed each crate reported failures as `Result<_,
//! String>`; the enum below replaces those so callers can match on *what*
//! went wrong (a missing builder component, a dimension mismatch, a
//! parameter outside its range, an I/O failure) instead of parsing prose.
//! It is hand-rolled (no `thiserror` in this offline workspace) and lives in
//! `imdpp-diffusion` — the lowest crate all fallible layers share — and is
//! re-exported by `imdpp-core`, `imdpp-engine` and the umbrella crate.
//!
//! # Example
//!
//! ```
//! use imdpp_diffusion::{ImdppError, Scenario};
//!
//! // A builder missing its required components fails with a typed error…
//! let err = Scenario::builder().build().unwrap_err();
//! assert!(matches!(err, ImdppError::MissingComponent { .. }));
//! // …whose Display form stays human-readable.
//! assert_eq!(err.to_string(), "social graph is required");
//! ```

use std::fmt;

/// What went wrong while building or validating an IMDPP component.
///
/// The variants are deliberately coarse: they distinguish the *classes* of
/// failure a caller might branch on (retry with other inputs, fix a config
/// knob, surface an I/O problem) while the payloads carry enough context to
/// render a precise message.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImdppError {
    /// A required component was never supplied to a builder
    /// (e.g. `Scenario::builder()` without a social graph, or
    /// `Engine::builder(..)` without a budget).
    MissingComponent {
        /// The missing component, e.g. `"social graph"`.
        what: &'static str,
    },
    /// Two components disagree on a dimension (user count, item count,
    /// matrix size).
    DimensionMismatch {
        /// What is being compared, e.g. `"cost model users"`.
        what: &'static str,
        /// The dimension the rest of the world has.
        expected: usize,
        /// The dimension actually found.
        found: usize,
    },
    /// A numeric parameter lies outside its valid (inclusive) range.
    OutOfRange {
        /// Parameter name, e.g. `"influence_gain"`.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// A structural invariant that is not a plain range or dimension check
    /// (e.g. an inverted interval, an update referencing an unknown user,
    /// an estimator incompatible with the diffusion model).
    InvalidConfig {
        /// Human-readable description of the violated invariant.
        message: String,
    },
    /// An I/O failure while writing experiment output.
    Io(std::io::Error),
    /// A lock guarding shared engine state was poisoned — a thread panicked
    /// while holding it, so the protected state may be mid-mutation.  The
    /// engine surfaces this instead of panicking the caller; recovery is to
    /// rebuild the engine.
    Poisoned {
        /// The lock in question, e.g. `"engine writer lock"`.
        what: &'static str,
    },
    /// A bounded arena or id space would overflow if the operation went
    /// through.  Raised by the checked insertion paths of the RR-set store
    /// instead of wrapping an offset silently; recovery is to raise the
    /// configured capacity or shrink the workload.
    CapacityExceeded {
        /// The resource that ran out, e.g. `"RR arena bytes"`.
        what: &'static str,
        /// The configured capacity.
        capacity: u64,
        /// The size the operation would have needed.
        needed: u64,
    },
}

impl ImdppError {
    /// Shorthand for [`ImdppError::InvalidConfig`].
    pub fn invalid(message: impl Into<String>) -> Self {
        ImdppError::InvalidConfig {
            message: message.into(),
        }
    }
}

impl fmt::Display for ImdppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImdppError::MissingComponent { what } => write!(f, "{what} is required"),
            ImdppError::DimensionMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected {expected}, found {found}"),
            ImdppError::OutOfRange {
                name,
                value,
                min,
                max,
            } => write!(f, "{name} = {value} is outside [{min}, {max}]"),
            ImdppError::InvalidConfig { message } => f.write_str(message),
            ImdppError::Io(e) => write!(f, "I/O error: {e}"),
            ImdppError::Poisoned { what } => {
                write!(f, "{what} was poisoned by a panicked thread")
            }
            ImdppError::CapacityExceeded {
                what,
                capacity,
                needed,
            } => write!(
                f,
                "{what} capacity exceeded: need {needed}, capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ImdppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImdppError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImdppError {
    fn from(e: std::io::Error) -> Self {
        ImdppError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_stable() {
        assert_eq!(
            ImdppError::MissingComponent { what: "budget" }.to_string(),
            "budget is required"
        );
        assert_eq!(
            ImdppError::DimensionMismatch {
                what: "cost model users",
                expected: 6,
                found: 2
            }
            .to_string(),
            "cost model users: expected 6, found 2"
        );
        assert_eq!(
            ImdppError::OutOfRange {
                name: "influence_gain",
                value: 3.0,
                min: 0.0,
                max: 1.0
            }
            .to_string(),
            "influence_gain = 3 is outside [0, 1]"
        );
        assert_eq!(ImdppError::invalid("broken").to_string(), "broken");
        assert_eq!(
            ImdppError::Poisoned {
                what: "engine writer lock"
            }
            .to_string(),
            "engine writer lock was poisoned by a panicked thread"
        );
        assert_eq!(
            ImdppError::CapacityExceeded {
                what: "RR arena bytes",
                capacity: 64,
                needed: 70
            }
            .to_string(),
            "RR arena bytes capacity exceeded: need 70, capacity 64"
        );
    }

    #[test]
    fn io_errors_convert_and_expose_a_source() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: ImdppError = io.into();
        assert!(err.to_string().contains("gone"));
        assert!(err.source().is_some());
        assert!(ImdppError::MissingComponent { what: "x" }
            .source()
            .is_none());
    }
}
