//! The immutable "world" shared by every simulation and every algorithm:
//! social network, item catalogue, relevance model, initial perceptions,
//! base preferences and the dynamics / model configuration.

use crate::dynamics::DynamicsConfig;
use crate::error::ImdppError;
use crate::models::DiffusionModel;
use imdpp_graph::{ItemId, SocialGraph, UserId};
use imdpp_kg::{ItemCatalog, PersonalPerception, RelevanceModel};
use std::sync::Arc;

/// The immutable IMDPP world: everything needed to run the diffusion process
/// except the seed group itself.
#[derive(Clone, Debug)]
pub struct Scenario {
    social: SocialGraph,
    catalog: ItemCatalog,
    relevance: Arc<RelevanceModel>,
    initial_perception: PersonalPerception,
    /// Flat `user_count × item_count` matrix of initial preferences
    /// `P_pref(u, x, 0)`.
    base_preferences: Vec<f64>,
    dynamics: DynamicsConfig,
    model: DiffusionModel,
}

impl Scenario {
    /// Starts building a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The social network.
    #[inline]
    pub fn social(&self) -> &SocialGraph {
        &self.social
    }

    /// The item catalogue.
    #[inline]
    pub fn catalog(&self) -> &ItemCatalog {
        &self.catalog
    }

    /// The shared relevance model (meta-graphs + matrices).
    #[inline]
    pub fn relevance(&self) -> &Arc<RelevanceModel> {
        &self.relevance
    }

    /// The initial (ζ = 0) personal perceptions.
    #[inline]
    pub fn initial_perception(&self) -> &PersonalPerception {
        &self.initial_perception
    }

    /// The dynamics configuration.
    #[inline]
    pub fn dynamics(&self) -> &DynamicsConfig {
        &self.dynamics
    }

    /// The triggering model.
    #[inline]
    pub fn model(&self) -> DiffusionModel {
        self.model
    }

    /// Number of users.
    #[inline]
    pub fn user_count(&self) -> usize {
        self.social.user_count()
    }

    /// Number of items.
    #[inline]
    pub fn item_count(&self) -> usize {
        self.catalog.item_count()
    }

    /// The initial preference `P_pref(u, x, 0)`.
    #[inline]
    pub fn base_preference(&self, u: UserId, x: ItemId) -> f64 {
        self.base_preferences[u.index() * self.catalog.item_count() + x.index()]
    }

    /// Iterator over all users.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.social.users()
    }

    /// Iterator over all items.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.catalog.items()
    }

    /// Returns a scenario identical to this one but with a different
    /// dynamics configuration (used by the static-vs-dynamic ablations).
    pub fn with_dynamics(&self, dynamics: DynamicsConfig) -> Scenario {
        let mut s = self.clone();
        s.dynamics = dynamics;
        s
    }

    /// Returns a scenario identical to this one except for one initial
    /// preference `P_pref(u, x, 0)`.  Models localized perception drift
    /// between promotions (the update stream the incremental sketch
    /// maintenance of `imdpp-sketch` consumes).
    ///
    /// # Panics
    /// Panics when `p` lies outside `[0, 1]`.
    pub fn with_base_preference(&self, u: UserId, x: ItemId, p: f64) -> Scenario {
        assert!((0.0..=1.0).contains(&p), "preference must lie in [0, 1]");
        let mut s = self.clone();
        s.base_preferences[u.index() * self.catalog.item_count() + x.index()] = p;
        s
    }

    /// Returns a scenario identical to this one except for a batch of
    /// initial preferences: each `(u, x, p)` sets `P_pref(u, x, 0) = p`.
    /// One clone regardless of the batch size (unlike chaining
    /// [`Scenario::with_base_preference`]).
    ///
    /// # Panics
    /// Panics when any `p` lies outside `[0, 1]`.
    pub fn with_base_preferences(&self, changes: &[(UserId, ItemId, f64)]) -> Scenario {
        let mut s = self.clone();
        let item_count = self.catalog.item_count();
        for &(u, x, p) in changes {
            assert!((0.0..=1.0).contains(&p), "preference must lie in [0, 1]");
            s.base_preferences[u.index() * item_count + x.index()] = p;
        }
        s
    }

    /// Returns a scenario identical to this one except for the social
    /// network's influence edges: `updates` (insertions, deletions, strength
    /// changes) are applied in order via
    /// [`SocialGraph::apply_edge_updates`].
    ///
    /// The user population is fixed — updates referencing users outside the
    /// scenario panic.  Adjacency order of untouched users is preserved,
    /// which is what lets the incremental sketch maintenance of
    /// `imdpp-sketch` treat the result as "the old world plus exactly these
    /// edges" and refresh instead of rebuild.
    pub fn with_edge_updates(&self, updates: &[imdpp_graph::EdgeUpdate]) -> Scenario {
        let mut s = self.clone();
        s.social = self.social.apply_edge_updates(updates);
        s
    }

    /// Returns a scenario identical to this one but with a different
    /// triggering model.
    pub fn with_model(&self, model: DiffusionModel) -> Scenario {
        let mut s = self.clone();
        s.model = model;
        s
    }

    /// Returns a scenario restricted to the first `k` meta-graphs (the
    /// Fig. 13 sensitivity study); initial weightings are reset to the
    /// uniform value of the first user's first weighting.
    pub fn with_metagraph_count(&self, k: usize) -> Scenario {
        let truncated = Arc::new(self.relevance.truncated(k));
        let initial_weight = if self.initial_perception.metagraph_count() > 0 {
            self.initial_perception.weight_vector(UserId(0))[0]
        } else {
            0.2
        };
        let perception = PersonalPerception::uniform(
            truncated.clone(),
            self.user_count(),
            initial_weight.clamp(imdpp_kg::personal::MIN_WEIGHT, 1.0),
        );
        let mut s = self.clone();
        s.relevance = truncated;
        s.initial_perception = perception;
        s
    }
}

/// Builder for [`Scenario`] with validation of dimensions and ranges.
#[derive(Default)]
pub struct ScenarioBuilder {
    social: Option<SocialGraph>,
    catalog: Option<ItemCatalog>,
    relevance: Option<Arc<RelevanceModel>>,
    initial_perception: Option<PersonalPerception>,
    base_preferences: Option<Vec<f64>>,
    uniform_base_preference: Option<f64>,
    initial_weight: f64,
    dynamics: DynamicsConfig,
    model: DiffusionModel,
}

impl ScenarioBuilder {
    /// Sets the social network (required).
    pub fn social(mut self, social: SocialGraph) -> Self {
        self.social = Some(social);
        self
    }

    /// Sets the item catalogue (required).
    pub fn catalog(mut self, catalog: ItemCatalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Sets the relevance model (required).
    pub fn relevance(mut self, relevance: Arc<RelevanceModel>) -> Self {
        self.relevance = Some(relevance);
        self
    }

    /// Sets explicit initial perceptions; when omitted, uniform weightings of
    /// [`Self::initial_weight`] are used.
    pub fn initial_perception(mut self, perception: PersonalPerception) -> Self {
        self.initial_perception = Some(perception);
        self
    }

    /// Sets the uniform initial meta-graph weighting (default 0.2).
    pub fn initial_weight(mut self, w: f64) -> Self {
        self.initial_weight = w;
        self
    }

    /// Sets the full `user_count × item_count` initial preference matrix.
    pub fn base_preferences(mut self, prefs: Vec<f64>) -> Self {
        self.base_preferences = Some(prefs);
        self
    }

    /// Sets a single initial preference value for every `(user, item)` pair.
    pub fn uniform_base_preference(mut self, p: f64) -> Self {
        self.uniform_base_preference = Some(p);
        self
    }

    /// Sets the dynamics configuration (default: [`DynamicsConfig::default`]).
    pub fn dynamics(mut self, dynamics: DynamicsConfig) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Sets the triggering model (default: Independent Cascade).
    pub fn model(mut self, model: DiffusionModel) -> Self {
        self.model = model;
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    /// Returns an [`ImdppError`] when a required component is missing or
    /// dimensions / ranges are inconsistent.
    pub fn build(self) -> Result<Scenario, ImdppError> {
        let social = self.social.ok_or(ImdppError::MissingComponent {
            what: "social graph",
        })?;
        let catalog = self.catalog.ok_or(ImdppError::MissingComponent {
            what: "item catalog",
        })?;
        let relevance = self.relevance.ok_or(ImdppError::MissingComponent {
            what: "relevance model",
        })?;
        if relevance.item_count() != catalog.item_count() {
            return Err(ImdppError::DimensionMismatch {
                what: "relevance model items vs catalog items",
                expected: catalog.item_count(),
                found: relevance.item_count(),
            });
        }
        self.dynamics.validate()?;
        let user_count = social.user_count();
        let item_count = catalog.item_count();
        let initial_weight = if self.initial_weight > 0.0 {
            self.initial_weight
        } else {
            0.2
        };
        let perception = match self.initial_perception {
            Some(p) => {
                if p.user_count() != user_count {
                    return Err(ImdppError::DimensionMismatch {
                        what: "perception users vs social graph users",
                        expected: user_count,
                        found: p.user_count(),
                    });
                }
                if p.metagraph_count() != relevance.len() {
                    return Err(ImdppError::DimensionMismatch {
                        what: "perception meta-graphs vs relevance model meta-graphs",
                        expected: relevance.len(),
                        found: p.metagraph_count(),
                    });
                }
                p
            }
            None => PersonalPerception::uniform(relevance.clone(), user_count, initial_weight),
        };
        let base_preferences = match (self.base_preferences, self.uniform_base_preference) {
            (Some(prefs), _) => {
                if prefs.len() != user_count * item_count {
                    return Err(ImdppError::DimensionMismatch {
                        what: "base preference matrix entries",
                        expected: user_count * item_count,
                        found: prefs.len(),
                    });
                }
                if let Some(&bad) = prefs.iter().find(|p| !(0.0..=1.0).contains(*p)) {
                    return Err(ImdppError::OutOfRange {
                        name: "base preference",
                        value: bad,
                        min: 0.0,
                        max: 1.0,
                    });
                }
                prefs
            }
            (None, Some(p)) => {
                if !(0.0..=1.0).contains(&p) {
                    return Err(ImdppError::OutOfRange {
                        name: "uniform base preference",
                        value: p,
                        min: 0.0,
                        max: 1.0,
                    });
                }
                vec![p; user_count * item_count]
            }
            (None, None) => vec![0.5; user_count * item_count],
        };
        Ok(Scenario {
            social,
            catalog,
            relevance,
            initial_perception: perception,
            base_preferences,
            dynamics: self.dynamics,
            model: self.model,
        })
    }
}

/// Builds a small, fully wired scenario around the Fig. 1 knowledge graph and
/// a tiny social network.  Used pervasively by unit tests, doc examples and
/// the quickstart example.
pub fn toy_scenario() -> Scenario {
    use imdpp_kg::hin::figure1_knowledge_graph;
    use imdpp_kg::MetaGraph;

    let kg = figure1_knowledge_graph();
    let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));
    // A 6-user social network shaped like Fig. 2 / Fig. 5: a small community
    // around Alice (0), Bob (1), Cindy (2) plus a periphery.
    let social = SocialGraph::from_influence_edges(
        6,
        vec![
            (UserId(0), UserId(1), 0.6), // Alice -> Bob
            (UserId(2), UserId(1), 0.4), // Cindy -> Bob
            (UserId(0), UserId(2), 0.5),
            (UserId(1), UserId(3), 0.5),
            (UserId(2), UserId(4), 0.5),
            (UserId(3), UserId(5), 0.5),
            (UserId(4), UserId(5), 0.3),
        ],
        true,
    );
    let catalog = ItemCatalog::with_names(
        vec![1.0, 0.5, 0.8, 0.3],
        vec![
            "iPhone".to_string(),
            "AirPods".to_string(),
            "wireless charger".to_string(),
            "charging cable".to_string(),
        ],
    );
    Scenario::builder()
        .social(social)
        .catalog(catalog)
        .relevance(relevance)
        .uniform_base_preference(0.4)
        .build()
        .expect("toy scenario must be valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_kg::MetaGraph;

    #[test]
    fn toy_scenario_is_consistent() {
        let s = toy_scenario();
        assert_eq!(s.user_count(), 6);
        assert_eq!(s.item_count(), 4);
        assert_eq!(s.base_preference(UserId(0), ItemId(0)), 0.4);
        assert_eq!(s.catalog().importance(ItemId(0)), 1.0);
        assert_eq!(s.model(), DiffusionModel::IndependentCascade);
    }

    #[test]
    fn builder_rejects_missing_components() {
        let err = Scenario::builder().build().unwrap_err();
        assert!(matches!(err, ImdppError::MissingComponent { .. }));
        assert!(err.to_string().contains("social"));
    }

    #[test]
    fn builder_rejects_mismatched_preference_matrix() {
        let s = toy_scenario();
        let err = Scenario::builder()
            .social(s.social().clone())
            .catalog(s.catalog().clone())
            .relevance(s.relevance().clone())
            .base_preferences(vec![0.5; 3])
            .build()
            .unwrap_err();
        assert!(matches!(err, ImdppError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("entries"));
    }

    #[test]
    fn builder_rejects_out_of_range_preferences() {
        let s = toy_scenario();
        let err = Scenario::builder()
            .social(s.social().clone())
            .catalog(s.catalog().clone())
            .relevance(s.relevance().clone())
            .uniform_base_preference(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ImdppError::OutOfRange { .. }));
        assert!(err.to_string().contains("[0, 1]"));
    }

    #[test]
    fn builder_rejects_item_count_mismatch() {
        let s = toy_scenario();
        let err = Scenario::builder()
            .social(s.social().clone())
            .catalog(ItemCatalog::uniform(2))
            .relevance(s.relevance().clone())
            .build()
            .unwrap_err();
        assert!(matches!(err, ImdppError::DimensionMismatch { .. }));
        assert!(err.to_string().contains("items"));
    }

    #[test]
    fn with_metagraph_count_truncates_model() {
        let s = toy_scenario();
        let s2 = s.with_metagraph_count(2);
        assert_eq!(s2.relevance().len(), 2);
        assert_eq!(s2.initial_perception().metagraph_count(), 2);
        // Original untouched.
        assert_eq!(s.relevance().len(), MetaGraph::default_set().len());
    }

    #[test]
    fn with_dynamics_and_model_replace_configuration() {
        let s = toy_scenario();
        let frozen = s.with_dynamics(DynamicsConfig::frozen());
        assert!(frozen.dynamics().frozen);
        assert!(!s.dynamics().frozen);
        let lt = s.with_model(DiffusionModel::LinearThreshold);
        assert_eq!(lt.model(), DiffusionModel::LinearThreshold);
    }

    #[test]
    fn with_base_preference_replaces_one_entry() {
        let s = toy_scenario();
        let s2 = s.with_base_preference(UserId(1), ItemId(2), 0.9);
        assert_eq!(s2.base_preference(UserId(1), ItemId(2)), 0.9);
        assert_eq!(s2.base_preference(UserId(1), ItemId(1)), 0.4);
        assert_eq!(s.base_preference(UserId(1), ItemId(2)), 0.4);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn with_base_preference_rejects_out_of_range() {
        let _ = toy_scenario().with_base_preference(UserId(0), ItemId(0), 1.5);
    }

    #[test]
    fn with_base_preferences_applies_a_batch_in_one_clone() {
        let s = toy_scenario();
        let s2 =
            s.with_base_preferences(&[(UserId(1), ItemId(2), 0.9), (UserId(0), ItemId(0), 0.1)]);
        assert_eq!(s2.base_preference(UserId(1), ItemId(2)), 0.9);
        assert_eq!(s2.base_preference(UserId(0), ItemId(0)), 0.1);
        assert_eq!(s2.base_preference(UserId(1), ItemId(1)), 0.4);
        assert_eq!(s.base_preference(UserId(1), ItemId(2)), 0.4);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn with_base_preferences_rejects_out_of_range() {
        let _ = toy_scenario().with_base_preferences(&[(UserId(0), ItemId(0), -0.2)]);
    }

    #[test]
    fn with_edge_updates_replaces_only_the_social_graph() {
        use imdpp_graph::EdgeUpdate;
        let s = toy_scenario();
        let s2 = s.with_edge_updates(&[
            EdgeUpdate::Reweight {
                src: UserId(0),
                dst: UserId(1),
                weight: 0.9,
            },
            EdgeUpdate::Insert {
                src: UserId(5),
                dst: UserId(0),
                weight: 0.2,
            },
        ]);
        assert_eq!(s2.social().influence(UserId(0), UserId(1)), 0.9);
        assert_eq!(s2.social().influence(UserId(5), UserId(0)), 0.2);
        // Everything else is untouched, including the original graph.
        assert_eq!(s.social().influence(UserId(0), UserId(1)), 0.6);
        assert_eq!(s2.base_preference(UserId(0), ItemId(0)), 0.4);
        assert_eq!(s2.user_count(), s.user_count());
    }

    #[test]
    fn explicit_preference_matrix_is_used() {
        let s = toy_scenario();
        let n = s.user_count() * s.item_count();
        let mut prefs = vec![0.1; n];
        prefs[0] = 0.9; // (user 0, item 0)
        let s2 = Scenario::builder()
            .social(s.social().clone())
            .catalog(s.catalog().clone())
            .relevance(s.relevance().clone())
            .base_preferences(prefs)
            .build()
            .unwrap();
        assert_eq!(s2.base_preference(UserId(0), ItemId(0)), 0.9);
        assert_eq!(s2.base_preference(UserId(1), ItemId(0)), 0.1);
    }
}
