//! Seeds `(u, x, t)` and seed groups `S = ⋃_t S_t`.

use imdpp_graph::{ItemId, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A seed: user `u` is hired to promote item `x` starting at the `t`-th
/// promotion (`t` is 1-based, `1 ≤ t ≤ T`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Seed {
    /// The seeded user.
    pub user: UserId,
    /// The promoted item.
    pub item: ItemId,
    /// The promotion (1-based timing) at which the seed is activated.
    pub promotion: u32,
}

impl Seed {
    /// Creates a seed.
    pub fn new(user: UserId, item: ItemId, promotion: u32) -> Self {
        assert!(promotion >= 1, "promotions are 1-based");
        Seed {
            user,
            item,
            promotion,
        }
    }

    /// The `(user, item)` nominee underlying this seed.
    pub fn nominee(&self) -> (UserId, ItemId) {
        (self.user, self.item)
    }
}

impl fmt::Debug for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, t{})", self.user, self.item, self.promotion)
    }
}

/// A seed group: the complete solution of an IMDPP instance.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedGroup {
    seeds: Vec<Seed>,
}

impl SeedGroup {
    /// The empty seed group.
    pub fn new() -> Self {
        SeedGroup { seeds: Vec::new() }
    }

    /// Builds a seed group from a vector of seeds (duplicates are removed).
    pub fn from_seeds(mut seeds: Vec<Seed>) -> Self {
        seeds.sort();
        seeds.dedup();
        SeedGroup { seeds }
    }

    /// Adds a seed if it is not already present; returns whether it was added.
    pub fn insert(&mut self, seed: Seed) -> bool {
        if self.seeds.contains(&seed) {
            false
        } else {
            self.seeds.push(seed);
            true
        }
    }

    /// Removes a seed if present; returns whether it was removed.
    pub fn remove(&mut self, seed: &Seed) -> bool {
        if let Some(pos) = self.seeds.iter().position(|s| s == seed) {
            self.seeds.remove(pos);
            true
        } else {
            false
        }
    }

    /// All seeds.
    pub fn seeds(&self) -> &[Seed] {
        &self.seeds
    }

    /// Number of seeds.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// True when the group contains no seeds.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Seeds activated in the given promotion (`S_t`).
    pub fn in_promotion(&self, t: u32) -> impl Iterator<Item = &Seed> + '_ {
        self.seeds.iter().filter(move |s| s.promotion == t)
    }

    /// The latest promotion timing used by any seed (`t̂`), or 0 if empty.
    pub fn latest_promotion(&self) -> u32 {
        self.seeds.iter().map(|s| s.promotion).max().unwrap_or(0)
    }

    /// True if the group already contains the nominee `(u, x)` at any timing.
    pub fn contains_nominee(&self, user: UserId, item: ItemId) -> bool {
        self.seeds.iter().any(|s| s.user == user && s.item == item)
    }

    /// Returns a new group equal to `self` plus an extra seed (used when
    /// evaluating marginal gains without mutating the current group).
    pub fn with(&self, seed: Seed) -> SeedGroup {
        let mut g = self.clone();
        g.insert(seed);
        g
    }

    /// Returns a copy of the group with every seed moved to promotion 1.
    /// (The `S*_first` construction used in the paper's proofs and by the
    /// nominee-selection objective.)
    pub fn flattened_to_first_promotion(&self) -> SeedGroup {
        let seeds = self
            .seeds
            .iter()
            .map(|s| Seed::new(s.user, s.item, 1))
            .collect();
        SeedGroup::from_seeds(seeds)
    }

    /// Total hiring cost under a cost function `cost(u, x)`.
    pub fn total_cost(&self, mut cost: impl FnMut(UserId, ItemId) -> f64) -> f64 {
        self.seeds.iter().map(|s| cost(s.user, s.item)).sum()
    }

    /// Iterator over the distinct items promoted by the group.
    pub fn items(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self.seeds.iter().map(|s| s.item).collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Iterator over the distinct users hired by the group.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.seeds.iter().map(|s| s.user).collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

impl FromIterator<Seed> for SeedGroup {
    fn from_iter<T: IntoIterator<Item = Seed>>(iter: T) -> Self {
        SeedGroup::from_seeds(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(u: u32, x: u32, t: u32) -> Seed {
        Seed::new(UserId(u), ItemId(x), t)
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = SeedGroup::new();
        assert!(g.insert(s(0, 1, 1)));
        assert!(!g.insert(s(0, 1, 1)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn from_seeds_deduplicates_and_sorts() {
        let g = SeedGroup::from_seeds(vec![s(1, 0, 2), s(0, 0, 1), s(1, 0, 2)]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.seeds()[0], s(0, 0, 1));
    }

    #[test]
    fn promotion_filter_and_latest() {
        let g = SeedGroup::from_seeds(vec![s(0, 0, 1), s(1, 1, 3), s(2, 0, 3)]);
        assert_eq!(g.in_promotion(3).count(), 2);
        assert_eq!(g.in_promotion(2).count(), 0);
        assert_eq!(g.latest_promotion(), 3);
        assert_eq!(SeedGroup::new().latest_promotion(), 0);
    }

    #[test]
    fn contains_nominee_ignores_timing() {
        let g = SeedGroup::from_seeds(vec![s(0, 1, 2)]);
        assert!(g.contains_nominee(UserId(0), ItemId(1)));
        assert!(!g.contains_nominee(UserId(0), ItemId(2)));
    }

    #[test]
    fn with_does_not_mutate_original() {
        let g = SeedGroup::from_seeds(vec![s(0, 0, 1)]);
        let g2 = g.with(s(1, 1, 2));
        assert_eq!(g.len(), 1);
        assert_eq!(g2.len(), 2);
    }

    #[test]
    fn flattening_moves_everything_to_first_promotion() {
        let g = SeedGroup::from_seeds(vec![s(0, 0, 3), s(1, 1, 2)]);
        let f = g.flattened_to_first_promotion();
        assert!(f.seeds().iter().all(|s| s.promotion == 1));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn total_cost_sums_over_seeds() {
        let g = SeedGroup::from_seeds(vec![s(0, 0, 1), s(1, 1, 1)]);
        let cost = g.total_cost(|u, _| 1.0 + u.0 as f64);
        assert!((cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn items_and_users_are_distinct_sorted() {
        let g = SeedGroup::from_seeds(vec![s(2, 1, 1), s(0, 1, 2), s(2, 0, 1)]);
        assert_eq!(g.items(), vec![ItemId(0), ItemId(1)]);
        assert_eq!(g.users(), vec![UserId(0), UserId(2)]);
    }

    #[test]
    fn remove_deletes_existing_seed() {
        let mut g = SeedGroup::from_seeds(vec![s(0, 0, 1), s(1, 1, 1)]);
        assert!(g.remove(&s(0, 0, 1)));
        assert!(!g.remove(&s(0, 0, 1)));
        assert_eq!(g.len(), 1);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn promotion_zero_is_rejected() {
        let _ = Seed::new(UserId(0), ItemId(0), 0);
    }
}
