//! The four dynamic factors of the IMDPP diffusion process (Sec. V-A).
//!
//! | Paper factor              | Function here                        |
//! |---------------------------|--------------------------------------|
//! | (1) relevance measurement | [`crate::state::DiffusionState::record_adoptions`] (delegates to [`imdpp_kg::PersonalPerception::update_on_adoption`]) |
//! | (2) preference estimation | [`DynamicsConfig::preference`]       |
//! | (3) influence learning    | [`DynamicsConfig::influence`]        |
//! | (4) item associations     | [`DynamicsConfig::extra_adoption_probability`] |
//!
//! All four are closed-form, monotone stand-ins for the learned models the
//! paper plugs in (SemRec, RSC/RCF, DeepInf/DANSER, CKE): adopting
//! complementary items raises preferences and adopting similar items raises
//! influence strengths, exactly the qualitative behaviour the algorithm
//! depends on.  See DESIGN.md §3 for the substitution rationale.

use crate::error::ImdppError;
use imdpp_graph::{ItemId, UserId};
use imdpp_kg::PersonalPerception;
use serde::{Deserialize, Serialize};

/// Parameters of the dynamic factors.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Learning rate of the meta-graph weighting update (relevance
    /// measurement).
    pub weight_learning_rate: f64,
    /// Gain applied to complementary relevance when estimating preferences:
    /// adopting a complement of `y` raises `P_pref(·, y)` by `gain · r_C`.
    pub preference_gain: f64,
    /// Loss applied to substitutable relevance when estimating preferences:
    /// adopting a substitute of `y` lowers `P_pref(·, y)` by `loss · r_S`.
    pub preference_loss: f64,
    /// Gain applied to user similarity when learning influence strengths.
    pub influence_gain: f64,
    /// Mixing factor between adoption-set similarity (Jaccard) and
    /// perception similarity (weighting cosine) in influence learning;
    /// 1.0 = only adoption similarity.
    pub influence_adoption_mix: f64,
    /// Scale of the extra-adoption probability (item associations).
    pub extra_adoption_scale: f64,
    /// Hard floor applied to dynamic preferences (`P_minpref` in Theorem 5).
    pub min_preference: f64,
    /// Hard floor applied to dynamic influence strengths (`P_minact`).
    pub min_influence: f64,
    /// When `true` the dynamic updates are disabled entirely: preferences,
    /// influence strengths and perceptions stay at their initial values.
    /// This realises the "static" restricted problem used by Lemma 1 /
    /// Theorems 2–4 and by several baselines.
    pub frozen: bool,
}

impl Default for DynamicsConfig {
    /// Default parameters.  The gains are deliberately moderate: the dynamic
    /// boosts must stay comparable to the *initial* influence strengths of
    /// Table II (0.01–0.12), otherwise every cascade saturates the network
    /// and the algorithms become indistinguishable.
    fn default() -> Self {
        DynamicsConfig {
            weight_learning_rate: 0.2,
            preference_gain: 0.3,
            preference_loss: 0.5,
            influence_gain: 0.1,
            influence_adoption_mix: 0.5,
            extra_adoption_scale: 0.25,
            min_preference: 0.0,
            min_influence: 0.0,
            frozen: false,
        }
    }
}

impl DynamicsConfig {
    /// A configuration with all dynamics switched off (static `P_pref`,
    /// `P_act`, `P_ext`), matching the restricted problem of Lemma 1.
    pub fn frozen() -> Self {
        DynamicsConfig {
            frozen: true,
            ..Self::default()
        }
    }

    /// Validates that every parameter lies in a sensible range.
    pub fn validate(&self) -> Result<(), ImdppError> {
        let checks = [
            ("weight_learning_rate", self.weight_learning_rate, 0.0, 10.0),
            ("preference_gain", self.preference_gain, 0.0, 10.0),
            ("preference_loss", self.preference_loss, 0.0, 10.0),
            ("influence_gain", self.influence_gain, 0.0, 1.0),
            (
                "influence_adoption_mix",
                self.influence_adoption_mix,
                0.0,
                1.0,
            ),
            ("extra_adoption_scale", self.extra_adoption_scale, 0.0, 1.0),
            ("min_preference", self.min_preference, 0.0, 1.0),
            ("min_influence", self.min_influence, 0.0, 1.0),
        ];
        for (name, v, lo, hi) in checks {
            if !v.is_finite() || v < lo || v > hi {
                return Err(ImdppError::OutOfRange {
                    name,
                    value: v,
                    min: lo,
                    max: hi,
                });
            }
        }
        Ok(())
    }

    /// (2) Preference estimation: the dynamic preference `P_pref(u, y)` given
    /// the base preference, the items `u` has adopted and `u`'s current
    /// personal item network.
    ///
    /// ```text
    /// P_pref = clamp(base + Σ_{x ∈ A(u)} gain·r_C(u,x,y) − loss·r_S(u,x,y))
    /// ```
    pub fn preference(
        &self,
        perception: &PersonalPerception,
        base_preference: f64,
        user: UserId,
        adopted: &[ItemId],
        item: ItemId,
    ) -> f64 {
        let base = base_preference.clamp(0.0, 1.0);
        if self.frozen {
            return base.max(self.min_preference);
        }
        let mut delta = 0.0;
        for &x in adopted {
            if x == item {
                continue;
            }
            delta += self.preference_gain * perception.complementary(user, x, item);
            delta -= self.preference_loss * perception.substitutable(user, x, item);
        }
        (base + delta).clamp(self.min_preference, 1.0)
    }

    /// (3) Influence learning: the dynamic influence strength
    /// `P_act(u, v)` given the base strength and the similarity of the two
    /// users' adopted items and perceptions.
    ///
    /// ```text
    /// sim   = mix · Jaccard(A(u), A(v)) + (1 − mix) · cos(W(u), W(v))
    /// P_act = clamp(base + influence_gain · sim · adopted_anything)
    /// ```
    ///
    /// The similarity contribution only kicks in once at least one of the two
    /// users has adopted something, so that the initial strengths of the
    /// dataset are reproduced exactly at `ζ = 0`.
    pub fn influence(
        &self,
        perception: &PersonalPerception,
        base_strength: f64,
        u: UserId,
        v: UserId,
        adopted_u: &[ItemId],
        adopted_v: &[ItemId],
    ) -> f64 {
        let base = base_strength.clamp(0.0, 1.0);
        if self.frozen {
            return base.max(self.min_influence);
        }
        if adopted_u.is_empty() && adopted_v.is_empty() {
            return base.max(self.min_influence);
        }
        let jaccard = jaccard_similarity(adopted_u, adopted_v);
        let cos = perception.weighting_similarity(u, v);
        let sim = self.influence_adoption_mix * jaccard + (1.0 - self.influence_adoption_mix) * cos;
        (base + self.influence_gain * sim).clamp(self.min_influence, 1.0)
    }

    /// (4) Item associations: the probability `P_ext(u, u', x, y)` that `u`,
    /// while being promoted `x` by `u'`, additionally adopts the relevant
    /// item `y`.
    ///
    /// ```text
    /// P_ext = scale · P_act(u', u) · P_pref(u, x) · r_C(u, x, y)
    /// ```
    pub fn extra_adoption_probability(
        &self,
        perception: &PersonalPerception,
        influence_strength: f64,
        preference_for_promoted: f64,
        user: UserId,
        promoted: ItemId,
        relevant: ItemId,
    ) -> f64 {
        if self.frozen {
            return 0.0;
        }
        let r_c = perception.complementary(user, promoted, relevant);
        (self.extra_adoption_scale
            * influence_strength.clamp(0.0, 1.0)
            * preference_for_promoted.clamp(0.0, 1.0)
            * r_c)
            .clamp(0.0, 1.0)
    }
}

/// Jaccard similarity of two item sets given as slices (not necessarily
/// sorted); `0.0` when both are empty.
pub fn jaccard_similarity(a: &[ItemId], b: &[ItemId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: std::collections::HashSet<u32> = a.iter().map(|i| i.0).collect();
    let sb: std::collections::HashSet<u32> = b.iter().map(|i| i.0).collect();
    // lint: allow(hash-order) — only the cardinalities are used; counting
    // is independent of iteration order.
    let inter = sa.intersection(&sb).count();
    // lint: allow(hash-order) — only the cardinalities are used; counting
    // is independent of iteration order.
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_kg::{hin::figure1_knowledge_graph, MetaGraph, RelevanceModel};
    use std::sync::Arc;

    fn perception() -> PersonalPerception {
        let model = Arc::new(RelevanceModel::compute(
            &figure1_knowledge_graph(),
            MetaGraph::default_set(),
        ));
        PersonalPerception::uniform(model, 2, 0.2)
    }

    #[test]
    fn default_config_is_valid() {
        assert!(DynamicsConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = DynamicsConfig {
            influence_gain: 3.0,
            ..DynamicsConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn preference_grows_with_complementary_adoptions() {
        let p = perception();
        let cfg = DynamicsConfig::default();
        // Preference for the wireless charger (item 2) with and without having
        // adopted the iPhone (item 0), which is complementary to it.
        let before = cfg.preference(&p, 0.3, UserId(0), &[], ItemId(2));
        let after = cfg.preference(&p, 0.3, UserId(0), &[ItemId(0)], ItemId(2));
        assert!(after > before);
        assert!(after <= 1.0);
    }

    #[test]
    fn preference_is_clamped_and_respects_floor() {
        let p = perception();
        let cfg = DynamicsConfig {
            min_preference: 0.1,
            preference_loss: 10.0,
            ..DynamicsConfig::default()
        };
        // Even with a huge substitutable penalty the preference cannot fall
        // below the configured floor.
        let v = cfg.preference(&p, 0.0, UserId(0), &[ItemId(0)], ItemId(1));
        assert!(v >= 0.1);
    }

    #[test]
    fn frozen_config_returns_base_values() {
        let p = perception();
        let cfg = DynamicsConfig::frozen();
        assert_eq!(
            cfg.preference(&p, 0.4, UserId(0), &[ItemId(0)], ItemId(2)),
            0.4
        );
        assert_eq!(
            cfg.influence(&p, 0.2, UserId(0), UserId(1), &[ItemId(0)], &[ItemId(0)]),
            0.2
        );
        assert_eq!(
            cfg.extra_adoption_probability(&p, 0.9, 0.9, UserId(0), ItemId(0), ItemId(1)),
            0.0
        );
    }

    #[test]
    fn influence_grows_with_shared_adoptions() {
        let p = perception();
        let cfg = DynamicsConfig::default();
        let before = cfg.influence(&p, 0.2, UserId(0), UserId(1), &[], &[]);
        let after = cfg.influence(
            &p,
            0.2,
            UserId(0),
            UserId(1),
            &[ItemId(0), ItemId(1)],
            &[ItemId(0), ItemId(1)],
        );
        assert_eq!(before, 0.2);
        assert!(after > before);
        assert!(after <= 1.0);
    }

    #[test]
    fn influence_gain_scales_with_similarity() {
        let p = perception();
        let cfg = DynamicsConfig::default();
        let same = cfg.influence(&p, 0.2, UserId(0), UserId(1), &[ItemId(0)], &[ItemId(0)]);
        let disjoint = cfg.influence(&p, 0.2, UserId(0), UserId(1), &[ItemId(0)], &[ItemId(3)]);
        assert!(same > disjoint);
    }

    #[test]
    fn extra_adoption_probability_follows_relevance() {
        let p = perception();
        let cfg = DynamicsConfig::default();
        // AirPods (1) is complementary to iPhone (0); cable (3) is not
        // complementary to AirPods in the Fig. 1 KG.
        let related = cfg.extra_adoption_probability(&p, 0.8, 0.9, UserId(0), ItemId(0), ItemId(1));
        let unrelated =
            cfg.extra_adoption_probability(&p, 0.8, 0.9, UserId(0), ItemId(1), ItemId(3));
        assert!(related > 0.0);
        assert_eq!(unrelated, 0.0);
        assert!(related <= 1.0);
    }

    #[test]
    fn jaccard_edge_cases() {
        assert_eq!(jaccard_similarity(&[], &[]), 0.0);
        assert_eq!(jaccard_similarity(&[ItemId(0)], &[]), 0.0);
        assert_eq!(jaccard_similarity(&[ItemId(0)], &[ItemId(0)]), 1.0);
        assert!((jaccard_similarity(&[ItemId(0), ItemId(1)], &[ItemId(1)]) - 0.5).abs() < 1e-12);
    }
}
