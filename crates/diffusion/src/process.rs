//! One stochastic realisation of the multi-promotion diffusion process
//! (Sec. III of the paper).

use crate::models::DiffusionModel;
use crate::scenario::Scenario;
use crate::seeds::SeedGroup;
use crate::state::DiffusionState;
use imdpp_graph::{ItemId, UserId};
use rand::Rng;
use std::collections::HashMap;

/// A single `(user, item)` adoption with the promotion and step at which it
/// happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdoptionRecord {
    /// The adopting user.
    pub user: UserId,
    /// The adopted item.
    pub item: ItemId,
    /// The promotion (1-based) during which the adoption happened.
    pub promotion: u32,
    /// The step `ζ_t` within the promotion (0 = seeding).
    pub step: u32,
    /// Whether the adoption came from an item association (`P_ext`) rather
    /// than a direct promotion.
    pub via_association: bool,
}

/// The outcome of one simulated campaign.
#[derive(Clone, Debug)]
pub struct SimulationOutcome {
    records: Vec<AdoptionRecord>,
    state: DiffusionState,
}

impl SimulationOutcome {
    /// All adoption records in chronological order.
    pub fn records(&self) -> &[AdoptionRecord] {
        &self.records
    }

    /// The final diffusion state (adoption sets + perceptions).
    pub fn state(&self) -> &DiffusionState {
        &self.state
    }

    /// Total number of adoptions.
    pub fn adoption_count(&self) -> usize {
        self.records.len()
    }

    /// The importance-aware influence of the whole campaign:
    /// `Σ_x w_x · n_x` over every adoption.
    pub fn weighted_spread(&self, scenario: &Scenario) -> f64 {
        self.records
            .iter()
            .map(|r| scenario.catalog().importance(r.item))
            .sum()
    }

    /// The importance-aware influence restricted to a user subset (used for
    /// the per-target-market spread `σ_τ`).
    pub fn weighted_spread_in(&self, scenario: &Scenario, users: &[UserId]) -> f64 {
        let set: std::collections::HashSet<u32> = users.iter().map(|u| u.0).collect();
        self.records
            .iter()
            .filter(|r| set.contains(&r.user.0))
            .map(|r| scenario.catalog().importance(r.item))
            .sum()
    }

    /// Number of adoptions of a specific item.
    pub fn adoptions_of(&self, item: ItemId) -> usize {
        self.records.iter().filter(|r| r.item == item).count()
    }

    /// Number of adoptions that happened in a specific promotion.
    pub fn adoptions_in_promotion(&self, t: u32) -> usize {
        self.records.iter().filter(|r| r.promotion == t).count()
    }
}

/// Runs one stochastic realisation of the campaign described by `seeds` over
/// `promotions` promotions.
///
/// The process follows Sec. III of the paper:
///
/// 1. At step `ζ_t = 0` of promotion `t`, the seeds of `S_t` adopt their
///    items (if not already adopted).
/// 2. At each later step, users who newly adopted an item at the previous
///    step promote it to their friends.  A friend `u` adopts with
///    probability `P_act(u', u) · P_pref(u, x)` (IC) or when the accumulated
///    strength reaches a pre-drawn threshold (LT); either way, being
///    promoted `x` can additionally trigger extra adoptions of relevant
///    items through `P_ext`.
/// 3. At the end of each step, perceptions / preferences / influence
///    strengths of users with new adoptions are updated.
/// 4. The promotion ends when a step produces no new adoptions; the next
///    promotion then starts from the resulting state.
pub fn simulate(
    scenario: &Scenario,
    seeds: &SeedGroup,
    promotions: u32,
    rng: &mut impl Rng,
) -> SimulationOutcome {
    let mut state = DiffusionState::new(scenario);
    let mut records = Vec::new();
    // LT thresholds are drawn lazily per (user, item) and fixed for the whole
    // campaign, matching the triggering-model construction in the paper's
    // submodularity proof.
    let mut lt_thresholds: HashMap<(u32, u32), f64> = HashMap::new();
    // Accumulated LT weight per (user, item) within the current promotion.
    let mut lt_weight: HashMap<(u32, u32), f64> = HashMap::new();

    for t in 1..=promotions {
        lt_weight.clear();
        // --- ζ_t = 0: seeding -------------------------------------------------
        let mut newly: Vec<(UserId, ItemId)> = Vec::new();
        for seed in seeds.in_promotion(t) {
            if !state.has_adopted(seed.user, seed.item) {
                newly.push((seed.user, seed.item));
            }
        }
        newly.sort_unstable_by_key(|(u, x)| (u.0, x.0));
        newly.dedup();
        let mut frontier: Vec<(UserId, ItemId)> = Vec::new();
        for &(u, x) in &newly {
            records.push(AdoptionRecord {
                user: u,
                item: x,
                promotion: t,
                step: 0,
                via_association: false,
            });
            frontier.push((u, x));
        }
        state.record_adoptions(scenario, &newly);

        // --- ζ_t ≥ 1: propagation --------------------------------------------
        let mut step = 1u32;
        while !frontier.is_empty() {
            let mut next_newly: Vec<(UserId, ItemId, bool)> = Vec::new();
            for &(promoter, item) in &frontier {
                for (friend, _) in scenario.social().influenced_by(promoter) {
                    if state.has_adopted(friend, item) {
                        continue;
                    }
                    let strength = state.influence(scenario, promoter, friend);
                    let preference = state.preference(scenario, friend, item);
                    let adopted_via_promotion = match scenario.model() {
                        DiffusionModel::IndependentCascade => {
                            rng.gen::<f64>() < strength * preference
                        }
                        DiffusionModel::LinearThreshold => {
                            let key = (friend.0, item.0);
                            let threshold =
                                *lt_thresholds.entry(key).or_insert_with(|| rng.gen::<f64>());
                            let acc = lt_weight.entry(key).or_insert(0.0);
                            *acc += strength * preference;
                            *acc >= threshold
                        }
                    };
                    if adopted_via_promotion {
                        next_newly.push((friend, item, false));
                    }
                    // Item associations: being promoted `item` can trigger the
                    // adoption of relevant items regardless of whether `item`
                    // itself was adopted (footnote 9 of the paper).
                    if !scenario.dynamics().frozen {
                        for (relevant, _, _) in
                            state.perception().personal_item_network(friend, item)
                        {
                            if state.has_adopted(friend, relevant) {
                                continue;
                            }
                            let p_ext = state.extra_adoption_probability(
                                scenario, friend, promoter, item, relevant,
                            );
                            if p_ext > 0.0 && rng.gen::<f64>() < p_ext {
                                next_newly.push((friend, relevant, true));
                            }
                        }
                    }
                }
            }
            if next_newly.is_empty() {
                break;
            }
            // Deduplicate (a user may be convinced through several paths in
            // the same step) and drop anything adopted meanwhile.
            next_newly.sort_unstable_by_key(|(u, x, _)| (u.0, x.0));
            next_newly.dedup_by_key(|(u, x, _)| (u.0, x.0));
            let mut recorded_pairs: Vec<(UserId, ItemId)> = Vec::new();
            for (u, x, via_association) in next_newly {
                if state.has_adopted(u, x) {
                    continue;
                }
                recorded_pairs.push((u, x));
                records.push(AdoptionRecord {
                    user: u,
                    item: x,
                    promotion: t,
                    step,
                    via_association,
                });
            }
            if recorded_pairs.is_empty() {
                break;
            }
            state.record_adoptions(scenario, &recorded_pairs);
            frontier = recorded_pairs;
            step += 1;
        }
    }

    SimulationOutcome { records, state }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::toy_scenario;
    use crate::seeds::Seed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seeds(list: &[(u32, u32, u32)]) -> SeedGroup {
        SeedGroup::from_seeds(
            list.iter()
                .map(|&(u, x, t)| Seed::new(UserId(u), ItemId(x), t))
                .collect(),
        )
    }

    #[test]
    fn empty_seed_group_produces_no_adoptions() {
        let s = toy_scenario();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate(&s, &SeedGroup::new(), 3, &mut rng);
        assert_eq!(out.adoption_count(), 0);
        assert_eq!(out.weighted_spread(&s), 0.0);
    }

    #[test]
    fn seeds_always_adopt_their_items() {
        let s = toy_scenario();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulate(&s, &seeds(&[(0, 0, 1), (2, 1, 2)]), 2, &mut rng);
        assert!(out.state().has_adopted(UserId(0), ItemId(0)));
        assert!(out.state().has_adopted(UserId(2), ItemId(1)));
        assert!(out.adoption_count() >= 2);
        // Seed adoptions are recorded at step 0 of their promotion.
        let seed_records: Vec<_> = out.records().iter().filter(|r| r.step == 0).collect();
        assert_eq!(seed_records.len(), 2);
        assert!(seed_records.iter().any(|r| r.promotion == 2));
    }

    #[test]
    fn each_user_adopts_an_item_at_most_once() {
        let s = toy_scenario();
        for sample in 0..20 {
            let mut rng = StdRng::seed_from_u64(sample);
            let out = simulate(&s, &seeds(&[(0, 0, 1), (2, 0, 1)]), 3, &mut rng);
            let mut seen = std::collections::HashSet::new();
            for r in out.records() {
                assert!(
                    seen.insert((r.user.0, r.item.0)),
                    "duplicate adoption of {:?} by {:?}",
                    r.item,
                    r.user
                );
            }
        }
    }

    #[test]
    fn weighted_spread_counts_importance() {
        let s = toy_scenario();
        let mut rng = StdRng::seed_from_u64(3);
        let out = simulate(&s, &seeds(&[(0, 0, 1)]), 1, &mut rng);
        let spread = out.weighted_spread(&s);
        // At least the seed adoption itself (importance 1.0).
        assert!(spread >= 1.0);
        let manual: f64 = out
            .records()
            .iter()
            .map(|r| s.catalog().importance(r.item))
            .sum();
        assert!((spread - manual).abs() < 1e-12);
    }

    #[test]
    fn full_strength_path_propagates_deterministically() {
        // With strength 1 and preference 1 and frozen dynamics, IC adoption is
        // certain along the path.
        use imdpp_graph::SocialGraph;
        use imdpp_kg::{ItemCatalog, MetaGraph, RelevanceModel};
        use std::sync::Arc;
        let kg = imdpp_kg::hin::figure1_knowledge_graph();
        let relevance = Arc::new(RelevanceModel::compute(&kg, MetaGraph::default_set()));
        let social = SocialGraph::from_influence_edges(
            3,
            vec![(UserId(0), UserId(1), 1.0), (UserId(1), UserId(2), 1.0)],
            true,
        );
        let scenario = Scenario::builder()
            .social(social)
            .catalog(ItemCatalog::uniform(4))
            .relevance(relevance)
            .uniform_base_preference(1.0)
            .dynamics(crate::dynamics::DynamicsConfig::frozen())
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let out = simulate(&scenario, &seeds(&[(0, 0, 1)]), 1, &mut rng);
        assert!(out.state().has_adopted(UserId(2), ItemId(0)));
        assert_eq!(out.adoption_count(), 3);
        // Steps are 0, 1, 2 along the path.
        let steps: Vec<u32> = out.records().iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![0, 1, 2]);
    }

    #[test]
    fn later_promotions_start_from_previous_state() {
        let s = toy_scenario();
        let mut rng = StdRng::seed_from_u64(5);
        let out = simulate(&s, &seeds(&[(0, 0, 1), (0, 0, 2)]), 2, &mut rng);
        // The second seeding of the same (user, item) cannot adopt again.
        let count = out
            .records()
            .iter()
            .filter(|r| r.user == UserId(0) && r.item == ItemId(0))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn association_adoptions_are_flagged() {
        let s = toy_scenario();
        let mut found_any = false;
        for sample in 0..50 {
            let mut rng = StdRng::seed_from_u64(sample);
            let out = simulate(&s, &seeds(&[(0, 0, 1)]), 2, &mut rng);
            if out.records().iter().any(|r| r.via_association) {
                found_any = true;
                break;
            }
        }
        assert!(
            found_any,
            "item associations should trigger at least one extra adoption across 50 runs"
        );
    }

    #[test]
    fn lt_model_also_diffuses() {
        let s = toy_scenario().with_model(DiffusionModel::LinearThreshold);
        let mut total = 0usize;
        for sample in 0..20 {
            let mut rng = StdRng::seed_from_u64(sample);
            let out = simulate(&s, &seeds(&[(0, 0, 1), (2, 0, 1)]), 2, &mut rng);
            total += out.adoption_count();
        }
        // At least the two seed adoptions per run.
        assert!(total >= 40);
    }

    #[test]
    fn promotion_and_step_metadata_are_consistent() {
        let s = toy_scenario();
        let mut rng = StdRng::seed_from_u64(11);
        let out = simulate(&s, &seeds(&[(0, 0, 1), (4, 2, 3)]), 3, &mut rng);
        for r in out.records() {
            assert!(r.promotion >= 1 && r.promotion <= 3);
        }
        assert_eq!(
            out.adoptions_in_promotion(1)
                + out.adoptions_in_promotion(2)
                + out.adoptions_in_promotion(3),
            out.adoption_count()
        );
    }

    #[test]
    fn spread_restricted_to_subset_is_at_most_total() {
        let s = toy_scenario();
        let mut rng = StdRng::seed_from_u64(13);
        let out = simulate(&s, &seeds(&[(0, 0, 1)]), 2, &mut rng);
        let subset = [UserId(0), UserId(1)];
        assert!(out.weighted_spread_in(&s, &subset) <= out.weighted_spread(&s) + 1e-12);
    }
}
