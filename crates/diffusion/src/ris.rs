//! Reverse Influence Sampling (RIS) for the *static* restricted problem.
//!
//! The paper's related-work section points to reverse-reachable-set methods
//! \[24\], \[25\] as the state of the art for estimating influence under the
//! triggering models.  They apply to the *restricted* IMDPP of Lemma 1
//! (probabilities fixed at their initial values, a single promotion), where
//! the adoption probability of an edge `u' → u` for item `x` is
//! `P_act(u', u) · P_pref(u, x, 0)`.  This module implements:
//!
//! * sampling of reverse-reachable (RR) sets for a given item,
//! * an unbiased spread estimator `σ̂(S) = n · E[S hits RR set]`,
//! * a greedy max-coverage seed selector over a collection of RR sets
//!   (the core of TIM/RIS-style algorithms).
//!
//! Monte-Carlo remains Dysim's *reference* estimator (and the only one for
//! the dynamic quantities `σ_τ` / `π_τ`, where drifting factors break the
//! static-edge assumption RIS needs), but the static `f(N)` queries of
//! nominee selection are estimator-generic: the full pipeline runs
//! sketch-backed end-to-end through `DysimConfig::oracle` and
//! `imdpp_sketch::pipeline`.  This module's agreement with forward
//! Monte-Carlo on the static problem is covered by tests.
//!
//! **Superseded by `imdpp-sketch`.**  This module keeps the small
//! self-contained implementation for the diffusion crate's own tests and
//! doc examples, but new code should use the `imdpp-sketch` crate, which
//! stores RR sets in a flat arena with an inverted user → set index,
//! samples them in parallel on deterministic per-set RNG streams, sizes the
//! pool with an `(ε, δ)` stopping rule, and supports incremental sample
//! reuse when perceptions drift or influence edges change between
//! promotions.

use crate::scenario::Scenario;
use imdpp_graph::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A collection of reverse-reachable sets for one item.
#[derive(Clone, Debug)]
pub struct RrSets {
    /// The item the sets were sampled for.
    pub item: ItemId,
    /// Each RR set: the users whose first-promotion seeding would reach the
    /// (uniformly sampled) root under the sampled edge realisation.
    pub sets: Vec<Vec<UserId>>,
    user_count: usize,
}

impl RrSets {
    /// Samples `count` reverse-reachable sets for `item` under the scenario's
    /// *initial* probabilities.
    ///
    /// A root user is drawn uniformly; edges are traversed backwards, each
    /// in-edge `u' → u` being live with probability
    /// `P_act(u', u, 0) · P_pref(u, item, 0)` (the IC triggering probability
    /// of the restricted problem).
    pub fn sample(scenario: &Scenario, item: ItemId, count: usize, seed: u64) -> Self {
        let n = scenario.user_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets = Vec::with_capacity(count);
        for _ in 0..count {
            if n == 0 {
                sets.push(Vec::new());
                continue;
            }
            let root = UserId(rng.gen_range(0..n as u32));
            sets.push(Self::sample_one(scenario, item, root, &mut rng));
        }
        RrSets {
            item,
            sets,
            user_count: n,
        }
    }

    fn sample_one(
        scenario: &Scenario,
        item: ItemId,
        root: UserId,
        rng: &mut StdRng,
    ) -> Vec<UserId> {
        let mut visited = vec![false; scenario.user_count()];
        let mut queue = std::collections::VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        let mut set = vec![root];
        while let Some(u) = queue.pop_front() {
            let pref = scenario.base_preference(u, item);
            for (v, strength) in scenario.social().influencers_of(u) {
                if visited[v.index()] {
                    continue;
                }
                if rng.gen::<f64>() < strength * pref {
                    visited[v.index()] = true;
                    set.push(v);
                    queue.push_back(v);
                }
            }
        }
        set
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no sets were sampled.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Unbiased estimate of the expected number of users adopting the item
    /// when `seed_users` are seeded with it in the first promotion:
    /// `n · (fraction of RR sets hit by the seed set)`.
    pub fn estimate_adopters(&self, seed_users: &[UserId]) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        let seeds: std::collections::HashSet<u32> = seed_users.iter().map(|u| u.0).collect();
        let hit = self
            .sets
            .iter()
            .filter(|set| set.iter().any(|u| seeds.contains(&u.0)))
            .count();
        self.user_count as f64 * hit as f64 / self.sets.len() as f64
    }

    /// Greedy max-coverage selection of `k` seed users over the RR sets (the
    /// selection core of TIM-family algorithms).  Returns the chosen users in
    /// selection order.
    ///
    /// Dense per-user counters and an inverted user → set index are built in
    /// one pass; counters are decremented as sets become covered (CELF-style
    /// incremental bookkeeping), so each RR-set entry is touched at most
    /// twice instead of being recounted every iteration.  Ties break
    /// deterministically toward the smallest user id, matching the original
    /// `HashMap`-recount implementation.
    pub fn greedy_seeds(&self, k: usize) -> Vec<UserId> {
        if self.user_count == 0 || self.sets.is_empty() {
            return Vec::new();
        }
        let mut counts = vec![0usize; self.user_count];
        for set in &self.sets {
            for u in set {
                counts[u.index()] += 1;
            }
        }
        // Inverted index: which sets does each user appear in?
        let mut inv: Vec<Vec<u32>> = vec![Vec::new(); self.user_count];
        for (i, set) in self.sets.iter().enumerate() {
            for u in set {
                inv[u.index()].push(i as u32);
            }
        }
        let mut covered = vec![false; self.sets.len()];
        let mut chosen = Vec::new();
        for _ in 0..k {
            // Argmax over the dense counters; the ascending scan makes the
            // smallest user id win ties.
            let mut best = 0usize;
            let mut gain = 0usize;
            for (u, &c) in counts.iter().enumerate() {
                if c > gain {
                    gain = c;
                    best = u;
                }
            }
            if gain == 0 {
                break;
            }
            chosen.push(UserId(best as u32));
            for &i in &inv[best] {
                if covered[i as usize] {
                    continue;
                }
                covered[i as usize] = true;
                for u in &self.sets[i as usize] {
                    counts[u.index()] -= 1;
                }
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::DynamicsConfig;
    use crate::scenario::toy_scenario;
    use crate::seeds::{Seed, SeedGroup};
    use crate::SpreadEstimator;

    #[test]
    fn rr_sets_have_the_requested_count_and_contain_their_root() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 64, 7);
        assert_eq!(rr.len(), 64);
        assert!(!rr.is_empty());
        for set in &rr.sets {
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn seeding_every_user_covers_every_set() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 32, 3);
        let everyone: Vec<UserId> = s.users().collect();
        let estimate = rr.estimate_adopters(&everyone);
        assert!((estimate - s.user_count() as f64).abs() < 1e-9);
        assert_eq!(rr.estimate_adopters(&[]), 0.0);
    }

    #[test]
    fn estimate_is_monotone_in_the_seed_set() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 256, 11);
        let one = rr.estimate_adopters(&[UserId(0)]);
        let two = rr.estimate_adopters(&[UserId(0), UserId(2)]);
        assert!(two >= one);
        assert!(one >= 1.0 - 1e-9); // the seed always covers its own root sets
    }

    #[test]
    fn ris_estimate_agrees_with_forward_monte_carlo_on_the_static_problem() {
        // Freeze the dynamics so both estimators target the same quantity:
        // the expected number of adopters of item 0 when user 0 is seeded.
        let s = toy_scenario().with_dynamics(DynamicsConfig::frozen());
        let rr = RrSets::sample(&s, ItemId(0), 4_000, 5);
        let ris = rr.estimate_adopters(&[UserId(0)]);
        let forward = SpreadEstimator::new(&s, 4_000, 9)
            .estimate_metric(
                &SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)]),
                1,
                |out| out.adoptions_of(ItemId(0)) as f64,
            )
            .mean;
        assert!(
            (ris - forward).abs() < 0.35,
            "RIS {ris:.3} vs forward Monte-Carlo {forward:.3}"
        );
    }

    #[test]
    fn greedy_seed_selection_prefers_influential_users() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 512, 13);
        let seeds = rr.greedy_seeds(2);
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 2);
        // User 5 has no out-edges: it can only cover its own roots and must
        // not be the first pick.
        assert_ne!(seeds[0], UserId(5));
        // The greedy's coverage should not be beaten by an arbitrary pair.
        let greedy_cov = rr.estimate_adopters(&seeds);
        let arbitrary = rr.estimate_adopters(&[UserId(5), UserId(4)]);
        assert!(greedy_cov + 1e-9 >= arbitrary);
    }

    #[test]
    fn greedy_stops_when_sets_are_exhausted() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(1), 16, 17);
        let seeds = rr.greedy_seeds(100);
        // Cannot pick more users than exist, and never picks a zero-gain user.
        assert!(seeds.len() <= s.user_count());
    }
}
