//! Reverse Influence Sampling (RIS) for the *static* restricted problem.
//!
//! The paper's related-work section points to reverse-reachable-set methods
//! \[24\], \[25\] as the state of the art for estimating influence under the
//! triggering models.  They apply to the *restricted* IMDPP of Lemma 1
//! (probabilities fixed at their initial values, a single promotion), where
//! the adoption probability of an edge `u' → u` for item `x` is
//! `P_act(u', u) · P_pref(u, x, 0)`.  This module implements:
//!
//! * sampling of reverse-reachable (RR) sets for a given item,
//! * an unbiased spread estimator `σ̂(S) = n · E[S hits RR set]`,
//! * a greedy max-coverage seed selector over a collection of RR sets
//!   (the core of TIM/RIS-style algorithms).
//!
//! Inside Dysim the Monte-Carlo estimator remains the reference (the dynamic
//! factors break the static-edge assumption RIS needs); RIS serves as a fast
//! cross-check for the static objective and as an additional baseline
//! component, and its agreement with forward Monte-Carlo is covered by
//! tests.

use crate::scenario::Scenario;
use imdpp_graph::{ItemId, UserId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A collection of reverse-reachable sets for one item.
#[derive(Clone, Debug)]
pub struct RrSets {
    /// The item the sets were sampled for.
    pub item: ItemId,
    /// Each RR set: the users whose first-promotion seeding would reach the
    /// (uniformly sampled) root under the sampled edge realisation.
    pub sets: Vec<Vec<UserId>>,
    user_count: usize,
}

impl RrSets {
    /// Samples `count` reverse-reachable sets for `item` under the scenario's
    /// *initial* probabilities.
    ///
    /// A root user is drawn uniformly; edges are traversed backwards, each
    /// in-edge `u' → u` being live with probability
    /// `P_act(u', u, 0) · P_pref(u, item, 0)` (the IC triggering probability
    /// of the restricted problem).
    pub fn sample(scenario: &Scenario, item: ItemId, count: usize, seed: u64) -> Self {
        let n = scenario.user_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets = Vec::with_capacity(count);
        for _ in 0..count {
            if n == 0 {
                sets.push(Vec::new());
                continue;
            }
            let root = UserId(rng.gen_range(0..n as u32));
            sets.push(Self::sample_one(scenario, item, root, &mut rng));
        }
        RrSets {
            item,
            sets,
            user_count: n,
        }
    }

    fn sample_one(
        scenario: &Scenario,
        item: ItemId,
        root: UserId,
        rng: &mut StdRng,
    ) -> Vec<UserId> {
        let mut visited = vec![false; scenario.user_count()];
        let mut queue = std::collections::VecDeque::new();
        visited[root.index()] = true;
        queue.push_back(root);
        let mut set = vec![root];
        while let Some(u) = queue.pop_front() {
            let pref = scenario.base_preference(u, item);
            for (v, strength) in scenario.social().influencers_of(u) {
                if visited[v.index()] {
                    continue;
                }
                if rng.gen::<f64>() < strength * pref {
                    visited[v.index()] = true;
                    set.push(v);
                    queue.push_back(v);
                }
            }
        }
        set
    }

    /// Number of RR sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no sets were sampled.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Unbiased estimate of the expected number of users adopting the item
    /// when `seed_users` are seeded with it in the first promotion:
    /// `n · (fraction of RR sets hit by the seed set)`.
    pub fn estimate_adopters(&self, seed_users: &[UserId]) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        let seeds: std::collections::HashSet<u32> = seed_users.iter().map(|u| u.0).collect();
        let hit = self
            .sets
            .iter()
            .filter(|set| set.iter().any(|u| seeds.contains(&u.0)))
            .count();
        self.user_count as f64 * hit as f64 / self.sets.len() as f64
    }

    /// Greedy max-coverage selection of `k` seed users over the RR sets (the
    /// selection core of TIM-family algorithms).  Returns the chosen users in
    /// selection order.
    pub fn greedy_seeds(&self, k: usize) -> Vec<UserId> {
        let mut covered = vec![false; self.sets.len()];
        let mut chosen = Vec::new();
        for _ in 0..k {
            // Count, for every user, how many uncovered RR sets it appears in.
            let mut counts: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for (i, set) in self.sets.iter().enumerate() {
                if covered[i] {
                    continue;
                }
                for u in set {
                    *counts.entry(u.0).or_insert(0) += 1;
                }
            }
            let Some((&best, &gain)) = counts
                .iter()
                .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            else {
                break;
            };
            if gain == 0 {
                break;
            }
            chosen.push(UserId(best));
            for (i, set) in self.sets.iter().enumerate() {
                if !covered[i] && set.iter().any(|u| u.0 == best) {
                    covered[i] = true;
                }
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::DynamicsConfig;
    use crate::scenario::toy_scenario;
    use crate::seeds::{Seed, SeedGroup};
    use crate::SpreadEstimator;

    #[test]
    fn rr_sets_have_the_requested_count_and_contain_their_root() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 64, 7);
        assert_eq!(rr.len(), 64);
        assert!(!rr.is_empty());
        for set in &rr.sets {
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn seeding_every_user_covers_every_set() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 32, 3);
        let everyone: Vec<UserId> = s.users().collect();
        let estimate = rr.estimate_adopters(&everyone);
        assert!((estimate - s.user_count() as f64).abs() < 1e-9);
        assert_eq!(rr.estimate_adopters(&[]), 0.0);
    }

    #[test]
    fn estimate_is_monotone_in_the_seed_set() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 256, 11);
        let one = rr.estimate_adopters(&[UserId(0)]);
        let two = rr.estimate_adopters(&[UserId(0), UserId(2)]);
        assert!(two >= one);
        assert!(one >= 1.0 - 1e-9); // the seed always covers its own root sets
    }

    #[test]
    fn ris_estimate_agrees_with_forward_monte_carlo_on_the_static_problem() {
        // Freeze the dynamics so both estimators target the same quantity:
        // the expected number of adopters of item 0 when user 0 is seeded.
        let s = toy_scenario().with_dynamics(DynamicsConfig::frozen());
        let rr = RrSets::sample(&s, ItemId(0), 4_000, 5);
        let ris = rr.estimate_adopters(&[UserId(0)]);
        let forward = SpreadEstimator::new(&s, 4_000, 9)
            .estimate_metric(
                &SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)]),
                1,
                |out| out.adoptions_of(ItemId(0)) as f64,
            )
            .mean;
        assert!(
            (ris - forward).abs() < 0.35,
            "RIS {ris:.3} vs forward Monte-Carlo {forward:.3}"
        );
    }

    #[test]
    fn greedy_seed_selection_prefers_influential_users() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(0), 512, 13);
        let seeds = rr.greedy_seeds(2);
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 2);
        // User 5 has no out-edges: it can only cover its own roots and must
        // not be the first pick.
        assert_ne!(seeds[0], UserId(5));
        // The greedy's coverage should not be beaten by an arbitrary pair.
        let greedy_cov = rr.estimate_adopters(&seeds);
        let arbitrary = rr.estimate_adopters(&[UserId(5), UserId(4)]);
        assert!(greedy_cov + 1e-9 >= arbitrary);
    }

    #[test]
    fn greedy_stops_when_sets_are_exhausted() {
        let s = toy_scenario();
        let rr = RrSets::sample(&s, ItemId(1), 16, 17);
        let seeds = rr.greedy_seeds(100);
        // Cannot pick more users than exist, and never picks a zero-gain user.
        assert!(seeds.len() <= s.user_count());
    }
}
