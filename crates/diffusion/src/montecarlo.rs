//! Parallel Monte-Carlo estimation of the importance-aware influence spread.
//!
//! Following footnote 12 of the paper, `σ(S)` is estimated by simulating the
//! diffusion `M` times and averaging.  The estimator is deterministic for a
//! fixed `(base_seed, sample_count)` pair regardless of the number of worker
//! threads, because each sample uses its own RNG stream derived from the
//! base seed and the sample index.

use crate::process::{simulate, SimulationOutcome};
use crate::scenario::Scenario;
use crate::seeds::SeedGroup;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Monte-Carlo estimate of a scalar metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpreadEstimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0.0 for a single sample).
    pub std_dev: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl SpreadEstimate {
    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.samples <= 1 {
            0.0
        } else {
            self.std_dev / (self.samples as f64).sqrt()
        }
    }
}

/// Monte-Carlo spread estimator over a scenario.
#[derive(Clone, Debug)]
pub struct SpreadEstimator<'a> {
    scenario: &'a Scenario,
    samples: usize,
    base_seed: u64,
    threads: usize,
}

impl<'a> SpreadEstimator<'a> {
    /// Creates an estimator with `samples` Monte-Carlo samples (the paper
    /// uses `M = 100`).
    pub fn new(scenario: &'a Scenario, samples: usize, base_seed: u64) -> Self {
        assert!(samples >= 1, "at least one sample is required");
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(samples);
        SpreadEstimator {
            scenario,
            samples,
            base_seed,
            threads,
        }
    }

    /// Overrides the number of worker threads (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &Scenario {
        self.scenario
    }

    /// Number of Monte-Carlo samples.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Estimates the expectation of an arbitrary per-simulation metric.
    pub fn estimate_metric<F>(
        &self,
        seeds: &SeedGroup,
        promotions: u32,
        metric: F,
    ) -> SpreadEstimate
    where
        F: Fn(&SimulationOutcome) -> f64 + Sync,
    {
        let values = self.collect_metric(seeds, promotions, &metric);
        summarize(&values)
    }

    /// Estimates the importance-aware influence spread `σ(S)`.
    pub fn estimate(&self, seeds: &SeedGroup, promotions: u32) -> SpreadEstimate {
        self.estimate_metric(seeds, promotions, |out| out.weighted_spread(self.scenario))
    }

    /// Convenience wrapper returning only the mean spread.
    pub fn mean_spread(&self, seeds: &SeedGroup, promotions: u32) -> f64 {
        self.estimate(seeds, promotions).mean
    }

    /// Collects the raw per-sample metric values (ordered by sample index).
    pub fn collect_metric<F>(&self, seeds: &SeedGroup, promotions: u32, metric: &F) -> Vec<f64>
    where
        F: Fn(&SimulationOutcome) -> f64 + Sync,
    {
        let mut values = vec![0.0f64; self.samples];
        if self.threads <= 1 || self.samples == 1 {
            for (i, slot) in values.iter_mut().enumerate() {
                let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(i as u64));
                let out = simulate(self.scenario, seeds, promotions, &mut rng);
                *slot = metric(&out);
            }
            return values;
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results = Mutex::new(&mut values);
        crossbeam::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|_| loop {
                    // lint: allow(atomic-ordering) — work-stealing ticket
                    // counter: the RMW is the only synchronisation needed
                    // (each index is claimed exactly once; results land in
                    // per-index slots behind the mutex).
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= self.samples {
                        break;
                    }
                    let mut rng = StdRng::seed_from_u64(self.base_seed.wrapping_add(i as u64));
                    let out = simulate(self.scenario, seeds, promotions, &mut rng);
                    let value = metric(&out);
                    results.lock()[i] = value;
                });
            }
        })
        .expect("monte-carlo worker thread panicked");
        values
    }
}

fn summarize(values: &[f64]) -> SpreadEstimate {
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let variance = if n > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
    } else {
        0.0
    };
    SpreadEstimate {
        mean,
        std_dev: variance.sqrt(),
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::toy_scenario;
    use crate::seeds::{Seed, SeedGroup};
    use imdpp_graph::{ItemId, UserId};

    fn one_seed() -> SeedGroup {
        SeedGroup::from_seeds(vec![Seed::new(UserId(0), ItemId(0), 1)])
    }

    #[test]
    fn estimate_of_empty_group_is_zero() {
        let s = toy_scenario();
        let est = SpreadEstimator::new(&s, 8, 42);
        let e = est.estimate(&SeedGroup::new(), 2);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.samples, 8);
    }

    #[test]
    fn estimate_includes_seed_importance() {
        let s = toy_scenario();
        let est = SpreadEstimator::new(&s, 16, 7);
        let e = est.estimate(&one_seed(), 1);
        // The seed itself adopts an item of importance 1.0 in every sample.
        assert!(e.mean >= 1.0);
        assert!(e.std_error() >= 0.0);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let s = toy_scenario();
        let a = SpreadEstimator::new(&s, 12, 99)
            .with_threads(1)
            .estimate(&one_seed(), 2);
        let b = SpreadEstimator::new(&s, 12, 99)
            .with_threads(4)
            .estimate(&one_seed(), 2);
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.std_dev - b.std_dev).abs() < 1e-12);
    }

    #[test]
    fn different_base_seeds_change_the_estimate_slightly() {
        let s = toy_scenario();
        let a = SpreadEstimator::new(&s, 4, 1).mean_spread(&one_seed(), 2);
        let b = SpreadEstimator::new(&s, 4, 2).mean_spread(&one_seed(), 2);
        // Not asserting inequality strictly (they may coincide), only that the
        // values are valid spreads.
        assert!(a >= 1.0 && b >= 1.0);
    }

    #[test]
    fn more_seeds_do_not_decrease_single_promotion_spread() {
        let s = toy_scenario();
        let est = SpreadEstimator::new(&s, 32, 3);
        let one = est.mean_spread(&one_seed(), 1);
        let two = est.mean_spread(
            &SeedGroup::from_seeds(vec![
                Seed::new(UserId(0), ItemId(0), 1),
                Seed::new(UserId(2), ItemId(0), 1),
            ]),
            1,
        );
        assert!(two + 1e-9 >= one, "two = {two}, one = {one}");
    }

    #[test]
    fn custom_metric_is_averaged() {
        let s = toy_scenario();
        let est = SpreadEstimator::new(&s, 8, 5);
        let e = est.estimate_metric(&one_seed(), 1, |out| out.adoption_count() as f64);
        assert!(e.mean >= 1.0);
    }

    #[test]
    fn collect_metric_returns_one_value_per_sample() {
        let s = toy_scenario();
        let est = SpreadEstimator::new(&s, 5, 11);
        let vals = est.collect_metric(&one_seed(), 1, &|out| out.weighted_spread(&s));
        assert_eq!(vals.len(), 5);
        assert!(vals.iter().all(|v| *v >= 1.0));
    }

    #[test]
    fn summary_statistics_are_correct() {
        let e = super::summarize(&[1.0, 3.0]);
        assert_eq!(e.mean, 2.0);
        assert!((e.std_dev - (2.0f64).sqrt()).abs() < 1e-12);
        assert!((e.std_error() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_are_rejected() {
        let s = toy_scenario();
        let _ = SpreadEstimator::new(&s, 0, 1);
    }
}
