//! Triggering-model variants of the diffusion process.
//!
//! The paper builds on the classic triggering models of Kempe et al. \[1\]:
//! the Independent Cascade (IC) and the Linear Threshold (LT).  The dynamic
//! factors (preferences, perceptions, influence strengths, item
//! associations) extend either model; the experiments of the paper use the
//! IC-based variant, so it is the default everywhere in this suite.

use serde::{Deserialize, Serialize};

/// Which triggering model governs a promotion attempt.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffusionModel {
    /// Independent Cascade: when `u'` newly adopts `x`, it gets one
    /// independent chance to make its friend `u` adopt `x` with probability
    /// `P_act(u', u) · P_pref(u, x)`.
    #[default]
    IndependentCascade,
    /// Linear Threshold: every user draws a threshold `θ_{u,x} ~ U[0, 1]`
    /// per item at the start of the simulation and adopts `x` once the sum
    /// of `P_act(u', u) · P_pref(u, x)` over in-neighbours that have adopted
    /// `x` reaches the threshold.
    LinearThreshold,
}

impl DiffusionModel {
    /// A short machine-readable name (used in experiment CSV output).
    pub fn name(&self) -> &'static str {
        match self {
            DiffusionModel::IndependentCascade => "ic",
            DiffusionModel::LinearThreshold => "lt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_independent_cascade() {
        assert_eq!(
            DiffusionModel::default(),
            DiffusionModel::IndependentCascade
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DiffusionModel::IndependentCascade.name(), "ic");
        assert_eq!(DiffusionModel::LinearThreshold.name(), "lt");
    }
}
