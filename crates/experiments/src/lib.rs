//! # imdpp-experiments
//!
//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the paper's evaluation section (Sec. VI).
//!
//! Every binary accepts the environment variables
//!
//! * `IMDPP_SCALE`  — multiplies the dataset sizes (default `1.0`; use e.g.
//!   `0.2` for a quick smoke run),
//! * `IMDPP_MC`     — Monte-Carlo samples used by the *final* spread
//!   evaluation (default 100, as in the paper),
//! * `IMDPP_SELECT_MC` — Monte-Carlo samples used *inside* the selection
//!   algorithms (default 20),
//! * `IMDPP_ORACLE` — estimator behind Dysim's nominee selection:
//!   `monte-carlo` (default), `rr-sketch` (2048 RR sets per item) or
//!   `rr-sketch:<sets>[:<shards>[:<threads>]]` (`threads` `0` = auto);
//!   every Dysim run goes through the `imdpp-engine` session façade, which
//!   honours this knob,
//! * `IMDPP_OUT`    — directory for CSV output (default `results/`).
//!
//! and prints the same rows / series the corresponding paper figure reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod output;

pub use harness::{
    algorithms, engine_for, evaluate_spread, parse_oracle, run_algorithm, solve_with_engine,
    AlgorithmKind, HarnessConfig, RunResult,
};
pub use output::{write_csv, Table};
