fn main() {}
