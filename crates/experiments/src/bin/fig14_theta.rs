//! Fig. 14: sensitivity of Dysim to the target-market overlap threshold θ
//! in TMI (b = 1000, T = 20 in the paper; θ is expressed here as a fraction
//! of the user count because the synthetic datasets are scaled down).
//!
//! Usage: `cargo run --release -p imdpp-experiments --bin fig14_theta [--quick]`

use imdpp_core::DysimConfig;
use imdpp_datasets::{generate, DatasetKind};
use imdpp_experiments::{engine_for, evaluate_spread, write_csv, HarnessConfig, Table};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = HarnessConfig::from_env();
    let datasets: Vec<DatasetKind> = if quick {
        vec![DatasetKind::YelpSmall]
    } else {
        DatasetKind::large().to_vec()
    };
    // θ as fractions of the user count, mirroring the paper's sweep over
    // absolute user counts per dataset.
    let theta_fractions = [0.005, 0.01, 0.02, 0.05];

    let mut table = Table::new(
        "Fig. 14 — sensitivity to the overlap threshold θ (b=1000, T=20)",
        &["dataset", "theta", "sigma", "seeds", "seconds"],
    );

    for kind in datasets {
        let dataset = generate(&kind.config().scaled(config.scale));
        let users = dataset.instance.scenario().user_count();
        let instance = dataset.instance.with_budget(1000.0).with_promotions(20);
        for &fraction in &theta_fractions {
            let theta = ((users as f64 * fraction).round() as usize).max(1);
            let dysim_config = DysimConfig {
                market_overlap_threshold: theta,
                ..config.dysim_config()
            };
            let engine = engine_for(&instance, dysim_config);
            // lint: allow(clock) — wall-clock measurement printed in the
            // Fig. 14 table; never feeds algorithm decisions.
            let start = Instant::now();
            let seeds = engine.solve();
            let seconds = start.elapsed().as_secs_f64();
            let sigma = evaluate_spread(&instance, &seeds, &config);
            println!(
                "{} theta={theta} sigma={:.1} ({} seeds, {:.1}s)",
                kind.name(),
                sigma,
                seeds.len(),
                seconds
            );
            table.push_row(vec![
                kind.name().to_string(),
                theta.to_string(),
                format!("{sigma:.3}"),
                seeds.len().to_string(),
                format!("{seconds:.3}"),
            ]);
        }
    }

    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, "fig14_theta") {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
