//! Fig. 8: comparison against OPT on the 100-user Amazon sample.
//!
//! * `fig8_opt budgets`     — Fig. 8(a): σ vs budget b ∈ {50, 75, 100, 125} at T = 2
//! * `fig8_opt promotions`  — Fig. 8(b): σ vs T ∈ {1, 2, 3} at b = 100
//! * append `--quick` to halve the sweep.

use imdpp_datasets::{generate, DatasetKind};
use imdpp_experiments::{run_algorithm, write_csv, AlgorithmKind, HarnessConfig, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("budgets");
    let quick = args.iter().any(|a| a == "--quick");
    let config = HarnessConfig::from_env();

    let dataset = generate(&DatasetKind::AmazonTiny.config().scaled(config.scale));
    let algorithms = [
        AlgorithmKind::Opt,
        AlgorithmKind::Dysim,
        AlgorithmKind::Bgrd,
        AlgorithmKind::Hag,
        AlgorithmKind::Ps,
        AlgorithmKind::Drhga,
    ];

    let mut table = Table::new(
        format!("Fig. 8 ({mode}) — Amazon 100-user sample vs OPT"),
        &["sweep", "algorithm", "sigma", "seeds", "seconds"],
    );

    match mode {
        "promotions" => {
            let promotions: Vec<u32> = if quick { vec![1, 2] } else { vec![1, 2, 3] };
            for &t in &promotions {
                let instance = dataset.instance.with_budget(100.0).with_promotions(t);
                for kind in algorithms {
                    let r = run_algorithm(kind, &instance, &config)
                        .expect("metrics/persist side channel");
                    println!(
                        "T={t} {:<6} sigma={:.2} ({} seeds, {:.2}s)",
                        r.algorithm,
                        r.spread,
                        r.seeds.len(),
                        r.seconds
                    );
                    table.push_row(vec![
                        format!("T={t}"),
                        r.algorithm.to_string(),
                        format!("{:.3}", r.spread),
                        r.seeds.len().to_string(),
                        format!("{:.3}", r.seconds),
                    ]);
                }
            }
        }
        _ => {
            let budgets: Vec<f64> = if quick {
                vec![50.0, 125.0]
            } else {
                vec![50.0, 75.0, 100.0, 125.0]
            };
            for &b in &budgets {
                let instance = dataset.instance.with_budget(b).with_promotions(2);
                for kind in algorithms {
                    let r = run_algorithm(kind, &instance, &config)
                        .expect("metrics/persist side channel");
                    println!(
                        "b={b} {:<6} sigma={:.2} ({} seeds, {:.2}s)",
                        r.algorithm,
                        r.spread,
                        r.seeds.len(),
                        r.seconds
                    );
                    table.push_row(vec![
                        format!("b={b}"),
                        r.algorithm.to_string(),
                        format!("{:.3}", r.spread),
                        r.seeds.len().to_string(),
                        format!("{:.3}", r.seconds),
                    ]);
                }
            }
        }
    }

    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, &format!("fig8_{mode}")) {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
