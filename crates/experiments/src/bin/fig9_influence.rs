//! Fig. 9(a)–(c) and 9(e)–(f): influence spread of Dysim vs the baselines on
//! the large datasets.
//!
//! * `fig9_influence budget`     — σ vs b ∈ {100..500} at T = 10 (Figs. 9(a)–(c))
//! * `fig9_influence promotions` — σ vs T ∈ {1, 5, 10, 20, 40} at b = 500 (Figs. 9(e)–(f))
//! * optional dataset filter as a second positional argument
//!   (`yelp`, `amazon`, `douban`, `gowalla`)
//! * append `--quick` to shrink the sweep.

use imdpp_datasets::{generate, DatasetKind};
use imdpp_experiments::{algorithms, run_algorithm, write_csv, HarnessConfig, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("budget");
    let quick = args.iter().any(|a| a == "--quick");
    let dataset_filter = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    let config = HarnessConfig::from_env();

    let datasets: Vec<DatasetKind> = match mode {
        "promotions" => vec![DatasetKind::YelpSmall, DatasetKind::AmazonSmall],
        _ => vec![
            DatasetKind::YelpSmall,
            DatasetKind::AmazonSmall,
            DatasetKind::DoubanSmall,
        ],
    };
    let datasets: Vec<DatasetKind> = datasets
        .into_iter()
        .filter(|k| dataset_filter.as_deref().is_none_or(|f| k.name() == f))
        .collect();

    let mut table = Table::new(
        format!("Fig. 9 influence ({mode})"),
        &["dataset", "sweep", "algorithm", "sigma", "seeds", "seconds"],
    );

    for kind in datasets {
        let dataset = generate(&kind.config().scaled(config.scale));
        match mode {
            "promotions" => {
                let sweep: Vec<u32> = if quick {
                    vec![1, 5, 10]
                } else {
                    vec![1, 5, 10, 20, 40]
                };
                for &t in &sweep {
                    let instance = dataset.instance.with_budget(500.0).with_promotions(t);
                    for algo in algorithms() {
                        let r = run_algorithm(algo, &instance, &config)
                            .expect("metrics/persist side channel");
                        println!(
                            "{} T={t} {:<6} sigma={:.1} ({} seeds, {:.1}s)",
                            kind.name(),
                            r.algorithm,
                            r.spread,
                            r.seeds.len(),
                            r.seconds
                        );
                        table.push_row(vec![
                            kind.name().to_string(),
                            format!("T={t}"),
                            r.algorithm.to_string(),
                            format!("{:.3}", r.spread),
                            r.seeds.len().to_string(),
                            format!("{:.3}", r.seconds),
                        ]);
                    }
                }
            }
            _ => {
                let sweep: Vec<f64> = if quick {
                    vec![100.0, 300.0]
                } else {
                    vec![100.0, 200.0, 300.0, 400.0, 500.0]
                };
                for &b in &sweep {
                    let instance = dataset.instance.with_budget(b).with_promotions(10);
                    for algo in algorithms() {
                        let r = run_algorithm(algo, &instance, &config)
                            .expect("metrics/persist side channel");
                        println!(
                            "{} b={b} {:<6} sigma={:.1} ({} seeds, {:.1}s)",
                            kind.name(),
                            r.algorithm,
                            r.spread,
                            r.seeds.len(),
                            r.seconds
                        );
                        table.push_row(vec![
                            kind.name().to_string(),
                            format!("b={b}"),
                            r.algorithm.to_string(),
                            format!("{:.3}", r.spread),
                            r.seeds.len().to_string(),
                            format!("{:.3}", r.seconds),
                        ]);
                    }
                }
            }
        }
    }

    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, &format!("fig9_influence_{mode}")) {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
