//! Fig. 12 + Table III: the course-promotion empirical study — number of
//! students selecting elective courses per class, for Dysim, BGRD, HAG and
//! PS at b = 50, T = 3.
//!
//! Usage: `cargo run --release -p imdpp-experiments --bin fig12_empirical`

use imdpp_core::Evaluator;
use imdpp_datasets::{generate_class, ClassSpec};
use imdpp_experiments::{run_algorithm, write_csv, AlgorithmKind, HarnessConfig, Table};

fn main() {
    let config = HarnessConfig::from_env();
    let algorithms = [
        AlgorithmKind::Dysim,
        AlgorithmKind::Bgrd,
        AlgorithmKind::Hag,
        AlgorithmKind::Ps,
    ];

    let mut class_table = Table::new("Table III — class statistics", &["class", "users", "edges"]);
    let mut table = Table::new(
        "Fig. 12 — students selecting elective courses (b=50, T=3)",
        &["class", "algorithm", "selections", "sigma", "seconds"],
    );

    for spec in ClassSpec::all() {
        class_table.push_row(vec![
            spec.id.to_string(),
            spec.users.to_string(),
            spec.edges.to_string(),
        ]);
        let instance = generate_class(&spec);
        for algo in algorithms {
            let r = run_algorithm(algo, &instance, &config).expect("metrics/persist side channel");
            // All course importances are 1, so σ equals the expected number of
            // course selections; report it rounded as the figure does.
            let selections = Evaluator::new(&instance, config.eval_samples, 0xC1A55)
                .spread(&r.seeds)
                .round();
            println!(
                "class {} {:<6} selections={} ({} seeds, {:.1}s)",
                spec.id,
                r.algorithm,
                selections,
                r.seeds.len(),
                r.seconds
            );
            table.push_row(vec![
                spec.id.to_string(),
                r.algorithm.to_string(),
                format!("{selections}"),
                format!("{:.3}", r.spread),
                format!("{:.3}", r.seconds),
            ]);
        }
    }

    print!("{}", class_table.render());
    print!("{}", table.render());
    if let Err(e) = write_csv(&class_table, &config.out_dir, "table3_classes") {
        eprintln!("could not write csv: {e}");
    }
    match write_csv(&table, &config.out_dir, "fig12_empirical") {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
