//! Fig. 9(d), 9(g) and 9(h): execution time of Dysim vs the baselines.
//!
//! * `fig9_time budget`     — selection time vs b on Amazon (Fig. 9(d))
//! * `fig9_time promotions` — selection time vs T on Amazon (Fig. 9(g))
//! * `fig9_time datasets`   — Dysim's time across the four datasets (Fig. 9(h))
//! * append `--quick` to shrink the sweep.

use imdpp_datasets::{generate, DatasetKind};
use imdpp_experiments::{
    algorithms, run_algorithm, write_csv, AlgorithmKind, HarnessConfig, Table,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("budget");
    let quick = args.iter().any(|a| a == "--quick");
    let config = HarnessConfig::from_env();

    let mut table = Table::new(
        format!("Fig. 9 execution time ({mode})"),
        &["dataset", "sweep", "algorithm", "seconds", "sigma"],
    );

    match mode {
        "datasets" => {
            for kind in DatasetKind::large() {
                let dataset = generate(&kind.config().scaled(config.scale));
                let instance = dataset.instance.with_budget(500.0).with_promotions(10);
                let r = run_algorithm(AlgorithmKind::Dysim, &instance, &config)
                    .expect("metrics/persist side channel");
                println!(
                    "{} Dysim {:.2}s sigma={:.1}",
                    kind.name(),
                    r.seconds,
                    r.spread
                );
                table.push_row(vec![
                    kind.name().to_string(),
                    "b=500,T=10".to_string(),
                    r.algorithm.to_string(),
                    format!("{:.3}", r.seconds),
                    format!("{:.3}", r.spread),
                ]);
            }
        }
        "promotions" => {
            let dataset = generate(&DatasetKind::AmazonSmall.config().scaled(config.scale));
            let sweep: Vec<u32> = if quick {
                vec![1, 10]
            } else {
                vec![1, 5, 10, 20, 40]
            };
            for &t in &sweep {
                let instance = dataset.instance.with_budget(500.0).with_promotions(t);
                for algo in algorithms() {
                    let r = run_algorithm(algo, &instance, &config)
                        .expect("metrics/persist side channel");
                    println!("amazon T={t} {:<6} {:.2}s", r.algorithm, r.seconds);
                    table.push_row(vec![
                        "amazon".to_string(),
                        format!("T={t}"),
                        r.algorithm.to_string(),
                        format!("{:.3}", r.seconds),
                        format!("{:.3}", r.spread),
                    ]);
                }
            }
        }
        _ => {
            let dataset = generate(&DatasetKind::AmazonSmall.config().scaled(config.scale));
            let sweep: Vec<f64> = if quick {
                vec![100.0, 300.0]
            } else {
                vec![100.0, 200.0, 300.0, 400.0, 500.0]
            };
            for &b in &sweep {
                let instance = dataset.instance.with_budget(b).with_promotions(10);
                for algo in algorithms() {
                    let r = run_algorithm(algo, &instance, &config)
                        .expect("metrics/persist side channel");
                    println!("amazon b={b} {:<6} {:.2}s", r.algorithm, r.seconds);
                    table.push_row(vec![
                        "amazon".to_string(),
                        format!("b={b}"),
                        r.algorithm.to_string(),
                        format!("{:.3}", r.seconds),
                        format!("{:.3}", r.spread),
                    ]);
                }
            }
        }
    }

    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, &format!("fig9_time_{mode}")) {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
