//! Sec. VI-F style case study: trace how one user's perception of item
//! relationships, preferences and incoming influence strengths evolve over a
//! multi-promotion campaign planned by Dysim on the Amazon-shaped dataset.
//!
//! The paper's case studies observe (1) substitutable relevance growing after
//! adopting related items and steering extra adoptions towards high-importance
//! items, (2) complementary adoptions raising preferences in later
//! promotions, and (3) common adoptions strengthening influence between two
//! users.  This binary reports the same three signals for the most-influenced
//! user of a simulated campaign.
//!
//! Usage: `cargo run --release -p imdpp-experiments --bin case_study`

use imdpp_datasets::{generate, DatasetKind};
use imdpp_diffusion::{simulate, DiffusionState};
use imdpp_experiments::{solve_with_engine, HarnessConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = HarnessConfig::from_env();
    let dataset = generate(&DatasetKind::AmazonTiny.config());
    let instance = dataset.instance.with_budget(120.0).with_promotions(5);
    let scenario = instance.scenario();

    let seeds = solve_with_engine(&instance, config.dysim_config());
    println!(
        "campaign: {} seeds over {} promotions (budget {:.0})",
        seeds.len(),
        instance.promotions(),
        instance.budget()
    );

    // One stochastic realisation of the campaign.
    let mut rng = StdRng::seed_from_u64(0xCA5E);
    let outcome = simulate(scenario, &seeds, instance.promotions(), &mut rng);
    println!(
        "total adoptions in this realisation: {}",
        outcome.adoption_count()
    );

    // Pick the non-seed user with the most adoptions as the case-study subject.
    let seed_users = seeds.users();
    let subject = scenario
        .users()
        .filter(|u| !seed_users.contains(u))
        .max_by_key(|&u| outcome.state().adopted_items(u).len())
        .expect("at least one non-seed user exists");
    let adopted = outcome.state().adopted_items(subject);
    println!(
        "\ncase-study subject: {subject} (adopted {} items)",
        adopted.len()
    );
    for record in outcome.records().iter().filter(|r| r.user == subject) {
        println!(
            "  promotion {}, step {}: adopted {}{}",
            record.promotion,
            record.step,
            scenario.catalog().name(record.item),
            if record.via_association {
                " (via item association)"
            } else {
                ""
            }
        );
    }

    // Compare the subject's initial state against the final state.
    let initial = DiffusionState::new(scenario);
    let final_state = outcome.state();

    println!("\n(1) perception of item relationships (meta-graph weightings):");
    println!(
        "    initial: {:?}",
        rounded(initial.perception().weight_vector(subject))
    );
    println!(
        "    final  : {:?}",
        rounded(final_state.perception().weight_vector(subject))
    );

    println!("\n(2) preferences for not-yet-adopted items (initial → final):");
    let mut shown = 0;
    for x in scenario.items() {
        if final_state.has_adopted(subject, x) || shown >= 5 {
            continue;
        }
        let before = initial.preference(scenario, subject, x);
        let after = final_state.preference(scenario, subject, x);
        if (after - before).abs() > 1e-6 {
            println!(
                "    {:<22} {:.2} → {:.2}",
                scenario.catalog().name(x),
                before,
                after
            );
            shown += 1;
        }
    }
    if shown == 0 {
        println!("    (no preference changed for the remaining items)");
    }

    println!("\n(3) incoming influence strengths (initial → final):");
    for (v, base) in scenario.social().influencers_of(subject).take(5) {
        let after = final_state.influence(scenario, v, subject);
        println!("    {v} → {subject}: {base:.2} → {after:.2}");
    }
}

fn rounded(values: &[f64]) -> Vec<f64> {
    values.iter().map(|v| (v * 100.0).round() / 100.0).collect()
}
