//! Table II: statistics of the (synthetic) datasets.
//!
//! Usage: `cargo run --release -p imdpp-experiments --bin table2_stats`

use imdpp_datasets::{generate, DatasetKind, DatasetStats};
use imdpp_experiments::{write_csv, HarnessConfig, Table};

fn main() {
    let config = HarnessConfig::from_env();
    let mut table = Table::new(
        format!("Table II — dataset statistics (scale {})", config.scale),
        &[
            "dataset",
            "node_types",
            "nodes",
            "users",
            "items",
            "edge_types",
            "edges",
            "friendships",
            "directed",
            "avg_strength",
            "avg_importance",
        ],
    );
    for kind in DatasetKind::all() {
        let ds = generate(&kind.config().scaled(config.scale));
        let stats = DatasetStats::of(&ds);
        table.push_row(vec![
            stats.name.clone(),
            stats.node_types.to_string(),
            stats.nodes.to_string(),
            stats.users.to_string(),
            stats.items.to_string(),
            stats.edge_types.to_string(),
            stats.edges.to_string(),
            stats.friendships.to_string(),
            stats.directed.to_string(),
            format!("{:.3}", stats.avg_influence_strength),
            format!("{:.2}", stats.avg_item_importance),
        ]);
    }
    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, "table2_stats") {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
