//! Fig. 13: sensitivity of Dysim to the number of meta-graphs
//! (1, 2 or 3 complementary meta-graphs; b = 100, T = 3).
//!
//! Usage: `cargo run --release -p imdpp-experiments --bin fig13_metagraphs [--quick]`

use imdpp_datasets::{generate, DatasetKind};
use imdpp_experiments::{run_algorithm, write_csv, AlgorithmKind, HarnessConfig, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = HarnessConfig::from_env();
    let datasets: Vec<DatasetKind> = if quick {
        vec![DatasetKind::YelpSmall]
    } else {
        DatasetKind::large().to_vec()
    };

    let mut table = Table::new(
        "Fig. 13 — sensitivity to the number of meta-graphs (b=100, T=3)",
        &["dataset", "metagraphs", "sigma", "seeds", "seconds"],
    );

    for kind in datasets {
        let dataset = generate(&kind.config().scaled(config.scale));
        for metagraphs in 1..=3usize {
            let scenario = dataset.instance.scenario().with_metagraph_count(metagraphs);
            let instance = dataset
                .instance
                .with_scenario(scenario)
                .expect("truncated scenario must remain valid")
                .with_budget(100.0)
                .with_promotions(3);
            let r = run_algorithm(AlgorithmKind::Dysim, &instance, &config)
                .expect("metrics/persist side channel");
            println!(
                "{} m={metagraphs} sigma={:.1} ({} seeds, {:.1}s)",
                kind.name(),
                r.spread,
                r.seeds.len(),
                r.seconds
            );
            table.push_row(vec![
                kind.name().to_string(),
                metagraphs.to_string(),
                format!("{:.3}", r.spread),
                r.seeds.len().to_string(),
                format!("{:.3}", r.seconds),
            ]);
        }
    }

    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, "fig13_metagraphs") {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
