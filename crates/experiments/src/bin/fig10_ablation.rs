//! Fig. 10: ablation study — Dysim vs Dysim without target markets (w/o TM)
//! and without item priority (w/o IP), on Yelp and Amazon.
//!
//! * `fig10_ablation budget`     — σ vs b ∈ {750..1500} at T = 20 (Figs. 10(a), (c))
//! * `fig10_ablation promotions` — σ vs T ∈ {5, 10, 20, 40} at b = 1000 (Figs. 10(b), (d))
//! * append `--quick` to shrink the sweep.

use imdpp_datasets::{generate, DatasetKind};
use imdpp_experiments::{run_algorithm, write_csv, AlgorithmKind, HarnessConfig, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().map(String::as_str).unwrap_or("budget");
    let quick = args.iter().any(|a| a == "--quick");
    let config = HarnessConfig::from_env();

    let variants = [
        AlgorithmKind::Dysim,
        AlgorithmKind::DysimNoTm,
        AlgorithmKind::DysimNoIp,
    ];
    let mut table = Table::new(
        format!("Fig. 10 ablation ({mode})"),
        &["dataset", "sweep", "variant", "sigma", "seeds", "seconds"],
    );

    for kind in [DatasetKind::YelpSmall, DatasetKind::AmazonSmall] {
        let dataset = generate(&kind.config().scaled(config.scale));
        let sweeps: Vec<(String, f64, u32)> = match mode {
            "promotions" => {
                let ts: Vec<u32> = if quick {
                    vec![5, 20]
                } else {
                    vec![5, 10, 20, 40]
                };
                ts.iter().map(|&t| (format!("T={t}"), 1000.0, t)).collect()
            }
            _ => {
                let bs: Vec<f64> = if quick {
                    vec![750.0, 1500.0]
                } else {
                    vec![750.0, 1000.0, 1250.0, 1500.0]
                };
                bs.iter().map(|&b| (format!("b={b}"), b, 20)).collect()
            }
        };
        for (label, budget, promotions) in sweeps {
            let instance = dataset
                .instance
                .with_budget(budget)
                .with_promotions(promotions);
            for variant in variants {
                let r = run_algorithm(variant, &instance, &config)
                    .expect("metrics/persist side channel");
                println!(
                    "{} {label} {:<12} sigma={:.1} ({} seeds, {:.1}s)",
                    kind.name(),
                    r.algorithm,
                    r.spread,
                    r.seeds.len(),
                    r.seconds
                );
                table.push_row(vec![
                    kind.name().to_string(),
                    label.clone(),
                    r.algorithm.to_string(),
                    format!("{:.3}", r.spread),
                    r.seeds.len().to_string(),
                    format!("{:.3}", r.seconds),
                ]);
            }
        }
    }

    print!("{}", table.render());
    match write_csv(&table, &config.out_dir, &format!("fig10_ablation_{mode}")) {
        Ok(path) => println!("csv written to {path}"),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
