//! Algorithm registry, timing and evaluation shared by the experiment
//! binaries.

use imdpp_baselines::{Algorithm, BaselineConfig, Bgrd, Drhga, Hag, Opt, PathScore};
use imdpp_core::{Dysim, DysimConfig, Evaluator, ImdppInstance, MarketOrdering, SeedGroup};
use std::time::Instant;

/// Environment-driven configuration of an experiment run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Dataset scale factor (multiplies user / item counts).
    pub scale: f64,
    /// Monte-Carlo samples for the final, reported spread.
    pub eval_samples: usize,
    /// Monte-Carlo samples used inside the selection algorithms.
    pub select_samples: usize,
    /// Candidate-user cap used by every algorithm.
    pub candidate_users: Option<usize>,
    /// Output directory for CSV files.
    pub out_dir: String,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 1.0,
            eval_samples: 100,
            select_samples: 20,
            candidate_users: Some(48),
            out_dir: "results".to_string(),
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the `IMDPP_*` environment variables.
    pub fn from_env() -> Self {
        let mut cfg = HarnessConfig::default();
        if let Ok(v) = std::env::var("IMDPP_SCALE") {
            if let Ok(f) = v.parse::<f64>() {
                cfg.scale = f.max(0.01);
            }
        }
        if let Ok(v) = std::env::var("IMDPP_MC") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.eval_samples = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("IMDPP_SELECT_MC") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.select_samples = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("IMDPP_CANDIDATES") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.candidate_users = Some(n.max(1));
            }
        }
        if let Ok(v) = std::env::var("IMDPP_OUT") {
            cfg.out_dir = v;
        }
        cfg
    }

    /// The Dysim configuration corresponding to this harness configuration.
    pub fn dysim_config(&self) -> DysimConfig {
        DysimConfig {
            mc_samples: self.select_samples,
            candidate_users: self.candidate_users,
            ..DysimConfig::default()
        }
    }

    /// The baseline configuration corresponding to this harness configuration.
    pub fn baseline_config(&self) -> BaselineConfig {
        BaselineConfig {
            mc_samples: self.select_samples,
            candidate_users: self.candidate_users,
            ..BaselineConfig::default()
        }
    }
}

/// The algorithms compared throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Dysim (this paper).
    Dysim,
    /// Dysim without target markets (ablation, Fig. 10).
    DysimNoTm,
    /// Dysim without item priority (ablation, Fig. 10).
    DysimNoIp,
    /// BGRD baseline.
    Bgrd,
    /// HAG baseline.
    Hag,
    /// PS baseline.
    Ps,
    /// DRHGA baseline.
    Drhga,
    /// Brute-force optimum (small instances only).
    Opt,
}

impl AlgorithmKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Dysim => "Dysim",
            AlgorithmKind::DysimNoTm => "Dysim w/o TM",
            AlgorithmKind::DysimNoIp => "Dysim w/o IP",
            AlgorithmKind::Bgrd => "BGRD",
            AlgorithmKind::Hag => "HAG",
            AlgorithmKind::Ps => "PS",
            AlgorithmKind::Drhga => "DRHGA",
            AlgorithmKind::Opt => "OPT",
        }
    }
}

/// The main comparison set of Figs. 9 (Dysim + the four baselines).
pub fn algorithms() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::Dysim,
        AlgorithmKind::Bgrd,
        AlgorithmKind::Hag,
        AlgorithmKind::Ps,
        AlgorithmKind::Drhga,
    ]
}

/// One algorithm run on one instance.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which algorithm ran.
    pub algorithm: &'static str,
    /// The selected seeds.
    pub seeds: SeedGroup,
    /// The evaluated importance-aware influence spread σ(S).
    pub spread: f64,
    /// Selection wall-clock time in seconds (spread evaluation excluded).
    pub seconds: f64,
}

/// Runs one algorithm on an instance and evaluates the resulting seed group
/// with the harness's evaluation sample count.
pub fn run_algorithm(
    kind: AlgorithmKind,
    instance: &ImdppInstance,
    config: &HarnessConfig,
) -> RunResult {
    let start = Instant::now();
    let seeds = match kind {
        AlgorithmKind::Dysim => Dysim::new(config.dysim_config()).run(instance),
        AlgorithmKind::DysimNoTm => {
            Dysim::new(config.dysim_config().without_target_markets()).run(instance)
        }
        AlgorithmKind::DysimNoIp => {
            Dysim::new(config.dysim_config().without_item_priority()).run(instance)
        }
        AlgorithmKind::Bgrd => Bgrd::new(config.baseline_config()).select(instance),
        AlgorithmKind::Hag => Hag::new(config.baseline_config()).select(instance),
        AlgorithmKind::Ps => PathScore::new(config.baseline_config()).select(instance),
        AlgorithmKind::Drhga => Drhga::new(config.baseline_config()).select(instance),
        AlgorithmKind::Opt => Opt::new(config.baseline_config(), 4, 12).select(instance),
    };
    let seconds = start.elapsed().as_secs_f64();
    let spread = evaluate_spread(instance, &seeds, config);
    RunResult {
        algorithm: kind.name(),
        seeds,
        spread,
        seconds,
    }
}

/// Evaluates a seed group with the harness's final evaluation sample count.
pub fn evaluate_spread(instance: &ImdppInstance, seeds: &SeedGroup, config: &HarnessConfig) -> f64 {
    Evaluator::new(instance, config.eval_samples, 0xE7A1).spread(seeds)
}

/// Runs Dysim with a specific market ordering (the Fig. 11 comparison).
pub fn run_dysim_with_ordering(
    instance: &ImdppInstance,
    config: &HarnessConfig,
    ordering: MarketOrdering,
) -> RunResult {
    let start = Instant::now();
    let dysim_config = DysimConfig {
        ordering,
        ..config.dysim_config()
    };
    let seeds = Dysim::new(dysim_config).run(instance);
    let seconds = start.elapsed().as_secs_f64();
    let spread = evaluate_spread(instance, &seeds, config);
    RunResult {
        algorithm: ordering.name(),
        seeds,
        spread,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn tiny_instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 2.0, 2).unwrap()
    }

    fn tiny_config() -> HarnessConfig {
        HarnessConfig {
            scale: 1.0,
            eval_samples: 16,
            select_samples: 4,
            candidate_users: Some(8),
            out_dir: "/tmp/imdpp-test-results".to_string(),
        }
    }

    #[test]
    fn every_algorithm_kind_runs_on_the_toy_instance() {
        let inst = tiny_instance();
        let cfg = tiny_config();
        for kind in [
            AlgorithmKind::Dysim,
            AlgorithmKind::DysimNoTm,
            AlgorithmKind::DysimNoIp,
            AlgorithmKind::Bgrd,
            AlgorithmKind::Hag,
            AlgorithmKind::Ps,
            AlgorithmKind::Drhga,
        ] {
            let result = run_algorithm(kind, &inst, &cfg);
            assert!(inst.is_feasible(&result.seeds), "{}", kind.name());
            assert!(result.spread >= 0.0);
            assert!(result.seconds >= 0.0);
        }
    }

    #[test]
    fn harness_config_from_env_defaults() {
        let cfg = HarnessConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.eval_samples >= 1);
    }

    #[test]
    fn algorithm_names_match_the_paper() {
        let names: Vec<&str> = algorithms().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Dysim", "BGRD", "HAG", "PS", "DRHGA"]);
    }

    #[test]
    fn ordering_runs_produce_feasible_seeds() {
        let inst = tiny_instance();
        let cfg = tiny_config();
        let result = run_dysim_with_ordering(&inst, &cfg, MarketOrdering::Profitability);
        assert!(inst.is_feasible(&result.seeds));
        assert_eq!(result.algorithm, "PF");
    }
}
