//! Algorithm registry, timing and evaluation shared by the experiment
//! binaries.

use imdpp_baselines::{Algorithm, BaselineConfig, Bgrd, Drhga, Hag, Opt, PathScore};
use imdpp_core::{
    DysimConfig, Evaluator, ImdppError, ImdppInstance, MarketOrdering, OracleKind, SeedGroup,
};
use imdpp_engine::Engine;
use std::path::PathBuf;
use std::time::Instant;

/// Environment-driven configuration of an experiment run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Dataset scale factor (multiplies user / item counts).
    pub scale: f64,
    /// Monte-Carlo samples for the final, reported spread.
    pub eval_samples: usize,
    /// Monte-Carlo samples used inside the selection algorithms.
    pub select_samples: usize,
    /// Candidate-user cap used by every algorithm.
    pub candidate_users: Option<usize>,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Estimator behind Dysim's nominee selection (`IMDPP_ORACLE`).
    pub oracle: OracleKind,
    /// Where to dump the engine telemetry snapshot (`IMDPP_METRICS`).
    ///
    /// `None` (the default) disables the dump.  When set, every
    /// engine-backed run rewrites the file with that run's snapshot, so
    /// after a multi-algorithm sweep the file holds the *last* Dysim run's
    /// telemetry — pass a distinct path per invocation to keep them all.
    pub metrics_out: Option<PathBuf>,
    /// Where to persist the engine state after a solve (`IMDPP_PERSIST`).
    ///
    /// `None` (the default) disables persistence.  When set, every
    /// engine-backed run rewrites the file via [`Engine::persist`], so a
    /// later process can warm-restart from it with
    /// `Engine::for_instance(..).restore(path)` without resampling.
    pub persist_path: Option<PathBuf>,
    /// Maintained-solution repair bound (`IMDPP_MAINTAIN`): `off` disables
    /// maintenance, a float in `(0, 1]` replaces the default bound.
    pub maintain_bound: Option<f64>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            scale: 1.0,
            eval_samples: 100,
            select_samples: 20,
            candidate_users: Some(48),
            out_dir: "results".to_string(),
            oracle: OracleKind::MonteCarlo,
            metrics_out: None,
            persist_path: None,
            maintain_bound: DysimConfig::default().maintain_bound,
        }
    }
}

/// Parses the `IMDPP_MAINTAIN` syntax: `off` / `0` / `none` (disable
/// maintained solutions) or a repair bound in `(0, 1]` (`1` = paranoid
/// mode — any update forces a full re-solve).  `None` means the value was
/// not understood.
pub fn parse_maintain(value: &str) -> Option<Option<f64>> {
    let v = value.trim().to_ascii_lowercase();
    match v.as_str() {
        "off" | "none" | "0" => Some(None),
        _ => match v.parse::<f64>() {
            Ok(b) if b > 0.0 && b <= 1.0 => Some(Some(b)),
            _ => None,
        },
    }
}

/// Parses the `IMDPP_ORACLE` syntax: `monte-carlo` / `mc`,
/// `rr-sketch` / `sketch` (2048 RR sets per item, 1 shard, auto threads),
/// `rr-sketch:<sets>`, `rr-sketch:<sets>:<shards>`, or
/// `rr-sketch:<sets>:<shards>:<threads>` (`threads` may be `0` = auto —
/// every available core; any other value is capped at the machine's cores).
pub fn parse_oracle(value: &str) -> Option<OracleKind> {
    let v = value.trim().to_ascii_lowercase();
    match v.as_str() {
        "monte-carlo" | "montecarlo" | "mc" => Some(OracleKind::MonteCarlo),
        "rr-sketch" | "rrsketch" | "sketch" => Some(OracleKind::RrSketch {
            sets_per_item: 2048,
            shards: 1,
            threads: 0,
        }),
        _ => {
            let rest = v
                .strip_prefix("rr-sketch:")
                .or_else(|| v.strip_prefix("sketch:"))?;
            let mut parts = rest.split(':');
            let sets_per_item = parts.next()?.parse::<usize>().ok().filter(|&n| n > 0)?;
            let shards = match parts.next() {
                Some(s) => s.parse::<usize>().ok().filter(|&s| s > 0)?,
                None => 1,
            };
            // Unlike sets and shards, 0 threads is meaningful (= auto).
            let threads = match parts.next() {
                Some(t) => t.parse::<usize>().ok()?,
                None => 0,
            };
            if parts.next().is_some() {
                return None;
            }
            Some(OracleKind::RrSketch {
                sets_per_item,
                shards,
                threads,
            })
        }
    }
}

impl HarnessConfig {
    /// Reads the configuration from the `IMDPP_*` environment variables.
    pub fn from_env() -> Self {
        let mut cfg = HarnessConfig::default();
        if let Ok(v) = std::env::var("IMDPP_SCALE") {
            if let Ok(f) = v.parse::<f64>() {
                cfg.scale = f.max(0.01);
            }
        }
        if let Ok(v) = std::env::var("IMDPP_MC") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.eval_samples = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("IMDPP_SELECT_MC") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.select_samples = n.max(1);
            }
        }
        if let Ok(v) = std::env::var("IMDPP_CANDIDATES") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.candidate_users = Some(n.max(1));
            }
        }
        if let Ok(v) = std::env::var("IMDPP_OUT") {
            cfg.out_dir = v;
        }
        if let Ok(v) = std::env::var("IMDPP_ORACLE") {
            match parse_oracle(&v) {
                Some(oracle) => cfg.oracle = oracle,
                None => eprintln!(
                    "IMDPP_ORACLE = {v:?} not understood (expected monte-carlo | rr-sketch | \
                     rr-sketch:<sets> | rr-sketch:<sets>:<shards> | \
                     rr-sketch:<sets>:<shards>:<threads>); keeping the default"
                ),
            }
        }
        if let Ok(v) = std::env::var("IMDPP_MAINTAIN") {
            match parse_maintain(&v) {
                Some(bound) => cfg.maintain_bound = bound,
                None => eprintln!(
                    "IMDPP_MAINTAIN = {v:?} not understood (expected off | a bound in (0, 1]); \
                     keeping the default"
                ),
            }
        }
        cfg.metrics_out = imdpp_obs::metrics_env_path();
        if let Ok(v) = std::env::var("IMDPP_PERSIST") {
            if !v.trim().is_empty() {
                cfg.persist_path = Some(PathBuf::from(v));
            }
        }
        cfg
    }

    /// The Dysim configuration corresponding to this harness configuration.
    pub fn dysim_config(&self) -> DysimConfig {
        DysimConfig {
            mc_samples: self.select_samples,
            candidate_users: self.candidate_users,
            oracle: self.oracle,
            maintain_bound: self.maintain_bound,
            ..DysimConfig::default()
        }
    }

    /// The baseline configuration corresponding to this harness configuration.
    pub fn baseline_config(&self) -> BaselineConfig {
        BaselineConfig {
            mc_samples: self.select_samples,
            candidate_users: self.candidate_users,
            ..BaselineConfig::default()
        }
    }
}

/// The algorithms compared throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Dysim (this paper).
    Dysim,
    /// Dysim without target markets (ablation, Fig. 10).
    DysimNoTm,
    /// Dysim without item priority (ablation, Fig. 10).
    DysimNoIp,
    /// BGRD baseline.
    Bgrd,
    /// HAG baseline.
    Hag,
    /// PS baseline.
    Ps,
    /// DRHGA baseline.
    Drhga,
    /// Brute-force optimum (small instances only).
    Opt,
}

impl AlgorithmKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Dysim => "Dysim",
            AlgorithmKind::DysimNoTm => "Dysim w/o TM",
            AlgorithmKind::DysimNoIp => "Dysim w/o IP",
            AlgorithmKind::Bgrd => "BGRD",
            AlgorithmKind::Hag => "HAG",
            AlgorithmKind::Ps => "PS",
            AlgorithmKind::Drhga => "DRHGA",
            AlgorithmKind::Opt => "OPT",
        }
    }
}

/// The main comparison set of Figs. 9 (Dysim + the four baselines).
pub fn algorithms() -> [AlgorithmKind; 5] {
    [
        AlgorithmKind::Dysim,
        AlgorithmKind::Bgrd,
        AlgorithmKind::Hag,
        AlgorithmKind::Ps,
        AlgorithmKind::Drhga,
    ]
}

/// One algorithm run on one instance.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Which algorithm ran.
    pub algorithm: &'static str,
    /// The selected seeds.
    pub seeds: SeedGroup,
    /// The evaluated importance-aware influence spread σ(S).
    pub spread: f64,
    /// Selection wall-clock time in seconds (spread evaluation excluded).
    pub seconds: f64,
}

/// Runs one algorithm on an instance and evaluates the resulting seed group
/// with the harness's evaluation sample count.
///
/// Fails only on side-channel I/O: an unwritable `IMDPP_METRICS` or
/// `IMDPP_PERSIST` path surfaces as [`ImdppError::Io`] with the offending
/// path in the message, instead of silently dropping the artifact.
pub fn run_algorithm(
    kind: AlgorithmKind,
    instance: &ImdppInstance,
    config: &HarnessConfig,
) -> Result<RunResult, ImdppError> {
    // Session setup (engine construction: instance clone + oracle build) is
    // excluded from the timed window so the Dysim kinds stay comparable to
    // the baselines, which are timed on `&instance` directly — in a serving
    // session that cost is paid once and amortized over every solve.
    let engine = match kind {
        AlgorithmKind::Dysim => Some(engine_for(instance, config.dysim_config())),
        AlgorithmKind::DysimNoTm => Some(engine_for(
            instance,
            config.dysim_config().without_target_markets(),
        )),
        AlgorithmKind::DysimNoIp => Some(engine_for(
            instance,
            config.dysim_config().without_item_priority(),
        )),
        _ => None,
    };
    // lint: allow(clock) — wall-clock measurement reported as the run's
    // `seconds` column (paper Fig. 13); never feeds algorithm decisions.
    let start = Instant::now();
    let seeds = match (&engine, kind) {
        (Some(engine), _) => engine.solve(),
        (None, AlgorithmKind::Bgrd) => Bgrd::new(config.baseline_config()).select(instance),
        (None, AlgorithmKind::Hag) => Hag::new(config.baseline_config()).select(instance),
        (None, AlgorithmKind::Ps) => PathScore::new(config.baseline_config()).select(instance),
        (None, AlgorithmKind::Drhga) => Drhga::new(config.baseline_config()).select(instance),
        (None, AlgorithmKind::Opt) => Opt::new(config.baseline_config(), 4, 12).select(instance),
        (None, _) => unreachable!("every Dysim kind builds an engine above"),
    };
    let seconds = start.elapsed().as_secs_f64();
    if let Some(engine) = &engine {
        dump_artifacts(engine, config)?;
    }
    let spread = evaluate_spread(instance, &seeds, config);
    Ok(RunResult {
        algorithm: kind.name(),
        seeds,
        spread,
        seconds,
    })
}

/// Writes `engine`'s telemetry snapshot to [`HarnessConfig::metrics_out`]
/// (the `IMDPP_METRICS` knob) and persists the engine state to
/// [`HarnessConfig::persist_path`] (the `IMDPP_PERSIST` knob); a no-op for
/// whichever knob is unset.
///
/// An unwritable path is an error, not a stderr note: the caller asked for
/// the artifact by setting the knob, so losing it must sink the run.  The
/// returned [`ImdppError::Io`] names the path that failed.
pub fn dump_artifacts(engine: &Engine, config: &HarnessConfig) -> Result<(), ImdppError> {
    if let Some(path) = &config.metrics_out {
        engine.telemetry().write_to(path).map_err(|e| {
            ImdppError::Io(std::io::Error::new(
                e.kind(),
                format!("IMDPP_METRICS: cannot write {}: {e}", path.display()),
            ))
        })?;
    }
    if let Some(path) = &config.persist_path {
        engine.persist(path).map_err(|e| match e {
            ImdppError::Io(io) => ImdppError::Io(std::io::Error::new(
                io.kind(),
                format!("IMDPP_PERSIST: cannot write {}: {io}", path.display()),
            )),
            other => other,
        })?;
    }
    Ok(())
}

/// Builds an `imdpp-engine` session on an experiment instance, honouring
/// the configuration's [`OracleKind`].
pub fn engine_for(instance: &ImdppInstance, config: DysimConfig) -> Engine {
    Engine::for_instance(instance)
        .config(config)
        .build()
        .expect("experiment instances are valid")
}

/// Runs the full Dysim pipeline through the `imdpp-engine` session façade
/// (one-shot here: build an engine on the instance, solve, drop).  Callers
/// that time the solve should build via [`engine_for`] first and time only
/// `Engine::solve`.
pub fn solve_with_engine(instance: &ImdppInstance, config: DysimConfig) -> SeedGroup {
    engine_for(instance, config).solve()
}

/// Evaluates a seed group with the harness's final evaluation sample count.
pub fn evaluate_spread(instance: &ImdppInstance, seeds: &SeedGroup, config: &HarnessConfig) -> f64 {
    Evaluator::new(instance, config.eval_samples, 0xE7A1).spread(seeds)
}

/// Runs Dysim with a specific market ordering (the Fig. 11 comparison).
/// Shares [`run_algorithm`]'s error contract for the `IMDPP_METRICS` /
/// `IMDPP_PERSIST` side channels.
pub fn run_dysim_with_ordering(
    instance: &ImdppInstance,
    config: &HarnessConfig,
    ordering: MarketOrdering,
) -> Result<RunResult, ImdppError> {
    let dysim_config = DysimConfig {
        ordering,
        ..config.dysim_config()
    };
    let engine = engine_for(instance, dysim_config);
    // lint: allow(clock) — wall-clock measurement reported as the run's
    // `seconds` column (paper Fig. 11); never feeds algorithm decisions.
    let start = Instant::now();
    let seeds = engine.solve();
    let seconds = start.elapsed().as_secs_f64();
    dump_artifacts(&engine, config)?;
    let spread = evaluate_spread(instance, &seeds, config);
    Ok(RunResult {
        algorithm: ordering.name(),
        seeds,
        spread,
        seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imdpp_core::CostModel;
    use imdpp_diffusion::scenario::toy_scenario;

    fn tiny_instance() -> ImdppInstance {
        let scenario = toy_scenario();
        let costs = CostModel::uniform(scenario.user_count(), scenario.item_count(), 1.0);
        ImdppInstance::new(scenario, costs, 2.0, 2).unwrap()
    }

    fn tiny_config() -> HarnessConfig {
        HarnessConfig {
            scale: 1.0,
            eval_samples: 16,
            select_samples: 4,
            candidate_users: Some(8),
            out_dir: "/tmp/imdpp-test-results".to_string(),
            oracle: OracleKind::MonteCarlo,
            metrics_out: None,
            persist_path: None,
            maintain_bound: Some(0.95),
        }
    }

    #[test]
    fn every_algorithm_kind_runs_on_the_toy_instance() {
        let inst = tiny_instance();
        let cfg = tiny_config();
        for kind in [
            AlgorithmKind::Dysim,
            AlgorithmKind::DysimNoTm,
            AlgorithmKind::DysimNoIp,
            AlgorithmKind::Bgrd,
            AlgorithmKind::Hag,
            AlgorithmKind::Ps,
            AlgorithmKind::Drhga,
        ] {
            let result = run_algorithm(kind, &inst, &cfg).unwrap();
            assert!(inst.is_feasible(&result.seeds), "{}", kind.name());
            assert!(result.spread >= 0.0);
            assert!(result.seconds >= 0.0);
        }
    }

    #[test]
    fn harness_config_from_env_defaults() {
        let cfg = HarnessConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.eval_samples >= 1);
    }

    #[test]
    fn maintain_env_syntax_parses() {
        assert_eq!(parse_maintain("off"), Some(None));
        assert_eq!(parse_maintain("NONE"), Some(None));
        assert_eq!(parse_maintain("0"), Some(None));
        assert_eq!(parse_maintain("0.95"), Some(Some(0.95)));
        assert_eq!(parse_maintain("1"), Some(Some(1.0)));
        assert_eq!(parse_maintain("1.5"), None);
        assert_eq!(parse_maintain("-0.2"), None);
        assert_eq!(parse_maintain("bogus"), None);
    }

    #[test]
    fn oracle_env_syntax_parses() {
        assert_eq!(parse_oracle("monte-carlo"), Some(OracleKind::MonteCarlo));
        assert_eq!(parse_oracle("MC"), Some(OracleKind::MonteCarlo));
        assert_eq!(
            parse_oracle("rr-sketch"),
            Some(OracleKind::RrSketch {
                sets_per_item: 2048,
                shards: 1,
                threads: 0,
            })
        );
        assert_eq!(
            parse_oracle("rr-sketch:512"),
            Some(OracleKind::RrSketch {
                sets_per_item: 512,
                shards: 1,
                threads: 0,
            })
        );
        assert_eq!(
            parse_oracle("sketch:64"),
            Some(OracleKind::RrSketch {
                sets_per_item: 64,
                shards: 1,
                threads: 0,
            })
        );
        assert_eq!(
            parse_oracle("rr-sketch:512:4"),
            Some(OracleKind::RrSketch {
                sets_per_item: 512,
                shards: 4,
                threads: 0,
            })
        );
        assert_eq!(
            parse_oracle("sketch:64:2"),
            Some(OracleKind::RrSketch {
                sets_per_item: 64,
                shards: 2,
                threads: 0,
            })
        );
        assert_eq!(
            parse_oracle("rr-sketch:512:4:8"),
            Some(OracleKind::RrSketch {
                sets_per_item: 512,
                shards: 4,
                threads: 8,
            })
        );
        // 0 threads is the documented auto convention, not an error.
        assert_eq!(
            parse_oracle("sketch:64:2:0"),
            Some(OracleKind::RrSketch {
                sets_per_item: 64,
                shards: 2,
                threads: 0,
            })
        );
        assert_eq!(parse_oracle("rr-sketch:0"), None);
        assert_eq!(parse_oracle("rr-sketch:512:0"), None);
        assert_eq!(parse_oracle("rr-sketch:512:four"), None);
        assert_eq!(parse_oracle("rr-sketch:512:4:two"), None);
        assert_eq!(parse_oracle("rr-sketch:512:4:8:9"), None);
        assert_eq!(parse_oracle("quantum"), None);
    }

    #[test]
    fn sketch_oracle_config_runs_the_dysim_kinds() {
        let inst = tiny_instance();
        let cfg = HarnessConfig {
            oracle: OracleKind::RrSketch {
                sets_per_item: 256,
                shards: 1,
                threads: 0,
            },
            ..tiny_config()
        };
        let result = run_algorithm(AlgorithmKind::Dysim, &inst, &cfg).unwrap();
        assert!(inst.is_feasible(&result.seeds));
        assert!(!result.seeds.is_empty());
    }

    #[test]
    fn metrics_knob_writes_a_telemetry_snapshot() {
        let inst = tiny_instance();
        let path = std::env::temp_dir().join("imdpp-harness-metrics-test.json");
        let _ = std::fs::remove_file(&path);
        let cfg = HarnessConfig {
            metrics_out: Some(path.clone()),
            ..tiny_config()
        };
        let result = run_algorithm(AlgorithmKind::Dysim, &inst, &cfg).unwrap();
        assert!(inst.is_feasible(&result.seeds));
        let json = std::fs::read_to_string(&path).expect("metrics file written");
        assert!(json.contains("\"engine.solves\": 1"));
        assert!(json.contains("\"histograms\""));
        std::fs::remove_file(&path).unwrap();

        // Baseline runs have no engine and leave the file alone.
        let missing = std::env::temp_dir().join("imdpp-harness-metrics-none.json");
        let cfg = HarnessConfig {
            metrics_out: Some(missing.clone()),
            ..tiny_config()
        };
        let _ = run_algorithm(AlgorithmKind::Bgrd, &inst, &cfg).unwrap();
        assert!(!missing.exists());
    }

    #[test]
    fn unwritable_metrics_path_is_a_typed_error_not_a_silent_drop() {
        let inst = tiny_instance();
        // A regular file used as a directory component: `write_to`'s
        // create_dir_all on the parent fails, which is the closest portable
        // stand-in for "unwritable directory" without chmod games.
        let blocker = std::env::temp_dir().join("imdpp-harness-metrics-blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let cfg = HarnessConfig {
            metrics_out: Some(blocker.join("metrics.json")),
            ..tiny_config()
        };
        let err = run_algorithm(AlgorithmKind::Dysim, &inst, &cfg).unwrap_err();
        match err {
            ImdppError::Io(e) => {
                let msg = e.to_string();
                assert!(msg.contains("IMDPP_METRICS"), "{msg}");
                assert!(msg.contains("metrics.json"), "{msg}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_file(&blocker).unwrap();
    }

    #[test]
    fn unwritable_persist_path_is_a_typed_error_too() {
        let inst = tiny_instance();
        // `Engine::persist` uses fs::write, which never creates parent
        // directories — a missing nested directory is enough to fail.
        let cfg = HarnessConfig {
            persist_path: Some(
                std::env::temp_dir()
                    .join("imdpp-harness-no-such-dir")
                    .join("engine.bin"),
            ),
            ..tiny_config()
        };
        let err = run_algorithm(AlgorithmKind::Dysim, &inst, &cfg).unwrap_err();
        match err {
            ImdppError::Io(e) => {
                let msg = e.to_string();
                assert!(msg.contains("IMDPP_PERSIST"), "{msg}");
                assert!(msg.contains("engine.bin"), "{msg}");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn persist_knob_writes_a_restorable_engine_image() {
        let inst = tiny_instance();
        let path = std::env::temp_dir().join("imdpp-harness-persist-test.bin");
        let _ = std::fs::remove_file(&path);
        let cfg = HarnessConfig {
            persist_path: Some(path.clone()),
            ..tiny_config()
        };
        let result = run_algorithm(AlgorithmKind::Dysim, &inst, &cfg).unwrap();
        let restored = Engine::for_instance(&inst)
            .config(cfg.dysim_config())
            .restore(&path)
            .unwrap();
        assert_eq!(restored.solve(), result.seeds);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn algorithm_names_match_the_paper() {
        let names: Vec<&str> = algorithms().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["Dysim", "BGRD", "HAG", "PS", "DRHGA"]);
    }

    #[test]
    fn ordering_runs_produce_feasible_seeds() {
        let inst = tiny_instance();
        let cfg = tiny_config();
        let result = run_dysim_with_ordering(&inst, &cfg, MarketOrdering::Profitability).unwrap();
        assert!(inst.is_feasible(&result.seeds));
        assert_eq!(result.algorithm, "PF");
    }
}
