//! Plain-text tables and CSV output for the experiment binaries.

use imdpp_core::ImdppError;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned result table that is also dumped to CSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table to `<out_dir>/<file_name>.csv`, creating the directory if
/// needed.  Returns the path written to.
///
/// # Errors
/// Returns [`ImdppError::Io`] when the directory or file cannot be written.
pub fn write_csv(table: &Table, out_dir: &str, file_name: &str) -> Result<String, ImdppError> {
    fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{file_name}.csv"));
    let mut f = fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path.to_string_lossy().into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["algorithm", "sigma"]);
        t.push_row(vec!["Dysim".to_string(), "12.5".to_string()]);
        t.push_row(vec!["BGRD".to_string(), "7.0".to_string()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("Dysim"));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".to_string(), "2".to_string()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn write_csv_creates_file() {
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["x".to_string()]);
        let dir = std::env::temp_dir().join("imdpp-output-test");
        let path = write_csv(&t, dir.to_str().unwrap(), "demo").unwrap();
        assert!(std::path::Path::new(&path).exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_are_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".to_string()]);
    }
}
