// Fixture: accumulated float gains on a selection path.
// Linted as if it lived at crates/core/src/nominees.rs.

fn greedy(oracle: &dyn Oracle, universe: &[usize]) -> f64 {
    let mut current_value = 0.0;
    for &candidate in universe {
        let gain = oracle.value_with(candidate) - current_value;
        current_value += gain;
    }
    current_value
}
