// Fixture: an unannotated relaxed site and a SeqCst site that tries (and
// fails) to annotate itself away.
use std::sync::atomic::{AtomicU64, Ordering};

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn read(counter: &AtomicU64) -> u64 {
    // lint: allow(atomic-seqcst) — trying to sneak past the denylist
    counter.load(Ordering::SeqCst)
}
