// Fixture: hash-container iteration in a determinism-scoped crate.
// Linted as if it lived at crates/graph/src/fixture.rs.
use std::collections::{HashMap, HashSet};

fn endpoints_from_hash_iteration(picked: HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for t in picked {
        out.push(t);
    }
    out
}

fn degree_sum(adjacency: &HashMap<u32, Vec<u32>>) -> usize {
    adjacency.values().map(|nbrs| nbrs.len()).sum()
}
