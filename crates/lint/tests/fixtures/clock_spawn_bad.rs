// Fixture: clock reads and thread creation outside their allowed homes.
// Linted as if it lived at crates/engine/src/fixture.rs.
use std::time::Instant;

fn adaptive_step() -> u64 {
    let started = Instant::now();
    let worker = std::thread::spawn(|| 41);
    let answer = worker.join().unwrap();
    answer + started.elapsed().as_secs()
}
