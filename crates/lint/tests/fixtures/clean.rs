// Fixture: code that follows every invariant — sorted iteration, exact
// value installation, integer counters, no clocks, no threads.
// Linted as if it lived at crates/core/src/nominees.rs (the strictest scope).
use std::collections::BTreeMap;

fn greedy(oracle: &dyn Oracle, universe: &[usize]) -> f64 {
    let mut current_value = 0.0;
    let mut evaluations = 0usize;
    let mut scores: BTreeMap<usize, f64> = BTreeMap::new();
    for &candidate in universe {
        let value_with = oracle.value_with(candidate);
        evaluations += 1;
        scores.insert(candidate, value_with);
        if value_with > current_value {
            current_value = value_with;
        }
    }
    let _ = evaluations;
    current_value
}
