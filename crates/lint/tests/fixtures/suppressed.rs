// Fixture: the same hazards as the bad fixtures, silenced by justified
// annotations.  Linted as if it lived at crates/graph/src/fixture.rs.
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

fn sorted_endpoints(picked: HashSet<u32>) -> Vec<u32> {
    // lint: allow(hash-order) — collected and sorted right below.
    let mut out: Vec<u32> = picked.into_iter().collect();
    out.sort_unstable();
    out
}

fn bump(counter: &AtomicU64) {
    // lint: allow(atomic-ordering) — independent counter, no ordering needed.
    counter.fetch_add(1, Ordering::Relaxed);
}
