//! Fixture tests: every rule fires on a known-bad snippet at the expected
//! line, a clean file under the strictest scope yields no findings, and a
//! justified annotation suppresses exactly the finding it covers.
//!
//! The fixtures live under `tests/fixtures/` which the workspace walk
//! excludes (`WALK_EXCLUDES`), so the rule violations they contain on
//! purpose never show up in a `--workspace` run; the tests feed them to
//! `lint_file` directly with a fake repo-relative path that puts them in
//! the scope under test.

use imdpp_lint::rules::{lint_file, FileLint};

fn fixture(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"))
}

fn lint_fixture(name: &str, fake_rel_path: &str) -> FileLint {
    lint_file(fake_rel_path, &fixture(name))
}

/// (rule, line) pairs of a lint result, in report order.
fn fired(result: &FileLint) -> Vec<(&str, usize)> {
    result.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn hash_order_fires_on_for_loop_and_method_iteration() {
    let result = lint_fixture("hash_order_bad.rs", "crates/graph/src/fixture.rs");
    assert_eq!(
        fired(&result),
        vec![("hash-order", 7), ("hash-order", 14)],
        "expected the `for t in picked` loop and the `adjacency.values()` \
         call to be flagged: {:#?}",
        result.findings
    );
}

#[test]
fn hash_order_is_scoped_to_determinism_critical_crates() {
    // The same source linted as if it lived in the obs crate (out of
    // scope) produces no hash-order findings.
    let result = lint_fixture("hash_order_bad.rs", "crates/obs/src/fixture.rs");
    assert!(
        result.findings.is_empty(),
        "hash-order must not fire outside its scoped crates: {:#?}",
        result.findings
    );
}

#[test]
fn float_accum_fires_on_compound_assignment_over_oracle_values() {
    let result = lint_fixture("float_accum_bad.rs", "crates/core/src/nominees.rs");
    assert_eq!(
        fired(&result),
        vec![("float-accum", 8)],
        "expected `current_value += gain` to be flagged: {:#?}",
        result.findings
    );
}

#[test]
fn float_accum_is_scoped_to_selection_and_repair_files() {
    let result = lint_fixture("float_accum_bad.rs", "crates/graph/src/fixture.rs");
    assert!(
        result.findings.is_empty(),
        "float-accum must not fire outside its scoped files: {:#?}",
        result.findings
    );
}

#[test]
fn atomics_fire_everywhere_and_seqcst_is_unsuppressible() {
    let result = lint_fixture("atomic_bad.rs", "crates/obs/src/fixture.rs");
    let rules_and_lines = fired(&result);
    // The unannotated Relaxed site needs a justification.
    assert!(
        rules_and_lines.contains(&("atomic-ordering", 6)),
        "expected the Relaxed fetch_add to be flagged: {:#?}",
        result.findings
    );
    // SeqCst is denied outright even though the site carries a justified
    // allow(atomic-seqcst) — and that allow, having suppressed nothing,
    // is itself reported as stale.
    assert!(
        rules_and_lines.contains(&("atomic-seqcst", 11)),
        "expected the SeqCst load to be flagged despite its annotation: {:#?}",
        result.findings
    );
    assert!(
        rules_and_lines.contains(&("unused-allow", 10)),
        "expected the ineffective allow(atomic-seqcst) to be reported stale: {:#?}",
        result.findings
    );
}

#[test]
fn clock_and_spawn_fire_outside_their_allowed_homes() {
    let result = lint_fixture("clock_spawn_bad.rs", "crates/engine/src/fixture.rs");
    assert_eq!(
        fired(&result),
        vec![("clock", 6), ("spawn", 7)],
        "expected Instant::now and thread::spawn to be flagged: {:#?}",
        result.findings
    );
    // The `.unwrap()` on line 8 is a panic site (budgeted per crate), not
    // a per-site finding.
    assert_eq!(result.panic_sites, vec![8]);
}

#[test]
fn clock_is_allowed_in_obs_and_spawn_in_the_sampler() {
    let in_obs = lint_fixture("clock_spawn_bad.rs", "crates/obs/src/fixture.rs");
    assert!(
        !fired(&in_obs).contains(&("clock", 6)),
        "clock reads are free inside crates/obs: {:#?}",
        in_obs.findings
    );
    let in_sampler = lint_fixture("clock_spawn_bad.rs", "crates/sketch/src/sampler.rs");
    assert!(
        !fired(&in_sampler).contains(&("spawn", 7)),
        "thread creation is free inside the sampler: {:#?}",
        in_sampler.findings
    );
}

#[test]
fn clean_fixture_produces_no_findings_under_the_strictest_scope() {
    // nominees.rs is in both the hash-order crate scope and the
    // float-accum file scope; the clean fixture survives both.
    let result = lint_fixture("clean.rs", "crates/core/src/nominees.rs");
    assert!(
        result.findings.is_empty(),
        "clean fixture must lint clean: {:#?}",
        result.findings
    );
    assert!(result.panic_sites.is_empty());
}

#[test]
fn justified_annotations_suppress_and_are_consumed() {
    let result = lint_fixture("suppressed.rs", "crates/graph/src/fixture.rs");
    assert!(
        result.findings.is_empty(),
        "justified allows must suppress their findings without tripping \
         unused-allow: {:#?}",
        result.findings
    );
}

#[test]
fn unjustified_annotation_does_not_suppress() {
    // Strip the justification off the suppressed fixture's first allow:
    // the finding comes back AND the annotation itself is reported.
    let source = fixture("suppressed.rs").replace(
        "// lint: allow(hash-order) — collected and sorted right below.",
        "// lint: allow(hash-order)",
    );
    let result = lint_file("crates/graph/src/fixture.rs", &source);
    let rules_and_lines = fired(&result);
    assert!(
        rules_and_lines.contains(&("hash-order", 8)),
        "an unjustified allow must not suppress: {:#?}",
        result.findings
    );
    assert!(
        rules_and_lines.contains(&("bad-annotation", 7)),
        "the unjustified allow itself must be reported: {:#?}",
        result.findings
    );
}
