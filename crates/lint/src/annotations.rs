//! The inline escape hatch: `// lint: allow(<rule>) — <justification>`.
//!
//! Deny-by-default only works if the escape hatch forces a *recorded
//! decision*: every allow must name the rule it silences and say why the
//! site is sound.  An allow with no justification is itself a finding, and
//! so is an allow that no finding consumed (`unused-allow`) — stale
//! suppressions are how invariants rot silently.
//!
//! Placement: on the flagged line as a trailing comment, or on its own
//! comment line in the comment block immediately above the flagged line
//! (several allows may stack, one per line).

use crate::lexer::{Comment, Lexed};
use std::collections::BTreeSet;

/// One parsed allow annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allow {
    /// Line the annotation comment sits on.
    pub line: usize,
    /// The rules it silences (comma-separated in the source).
    pub rules: Vec<String>,
    /// The justification text after the separator.
    pub justification: String,
    /// Whether the justification was present and non-empty.
    pub justified: bool,
}

/// All allows in one file, plus the set of lines that hold code (needed to
/// walk comment blocks upward).
#[derive(Debug, Default)]
pub struct Allows {
    allows: Vec<Allow>,
    code_lines: BTreeSet<usize>,
}

impl Allows {
    pub fn parse(lexed: &Lexed) -> Allows {
        Allows {
            allows: lexed.comments.iter().filter_map(parse_comment).collect(),
            code_lines: lexed.code_lines(),
        }
    }

    /// Every parsed allow (for unused / unjustified reporting).
    pub fn all(&self) -> &[Allow] {
        &self.allows
    }

    /// Finds an allow for `rule` covering `line`: trailing on the line
    /// itself, or in the contiguous comment-only block directly above.
    /// Returns the allow's index so callers can mark it used.
    pub fn covering(&self, rule: &str, line: usize) -> Option<usize> {
        // Trailing allow on the flagged line.
        if let Some(ix) = self.at_line(rule, line) {
            return Some(ix);
        }
        // Walk upward through comment-only lines.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.code_lines.contains(&l) {
                break;
            }
            if let Some(ix) = self.at_line(rule, l) {
                return Some(ix);
            }
        }
        None
    }

    fn at_line(&self, rule: &str, line: usize) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| a.line == line && a.rules.iter().any(|r| r == rule))
    }
}

/// Parses `lint: allow(rule-a, rule-b) — justification` out of a comment
/// body.  The separator may be an em/en dash or a plain hyphen; what matters
/// is that a non-empty justification follows.
fn parse_comment(comment: &Comment) -> Option<Allow> {
    let text = comment.text.trim();
    let rest = text.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':'])
        .trim();
    Some(Allow {
        line: comment.line,
        rules,
        justification: tail.to_string(),
        justified: !tail.is_empty(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn allows(src: &str) -> Allows {
        Allows::parse(&lex(src))
    }

    #[test]
    fn parses_rule_and_justification() {
        let a = allows("// lint: allow(hash-order) — sorted right below\nx();\n");
        assert_eq!(a.all().len(), 1);
        assert_eq!(a.all()[0].rules, vec!["hash-order"]);
        assert!(a.all()[0].justified);
        assert_eq!(a.all()[0].justification, "sorted right below");
    }

    #[test]
    fn plain_hyphen_separator_is_accepted() {
        let a = allows("// lint: allow(clock) - bench timing\nx();\n");
        assert!(a.all()[0].justified);
    }

    #[test]
    fn missing_justification_is_flagged_not_silently_accepted() {
        let a = allows("// lint: allow(clock)\nx();\n");
        assert_eq!(a.all().len(), 1);
        assert!(!a.all()[0].justified);
    }

    #[test]
    fn covers_trailing_and_block_above() {
        let src = "\
fn f() {
    // lint: allow(clock) — span timing
    // more prose
    now();
    later(); // lint: allow(spawn) — harness thread
}
";
        let a = allows(src);
        assert!(a.covering("clock", 4).is_some());
        assert!(a.covering("spawn", 5).is_some());
        // The allow does not leak past intervening code lines.
        assert!(a.covering("clock", 5).is_none());
    }

    #[test]
    fn multiple_rules_per_allow() {
        let a = allows("// lint: allow(clock, spawn) — harness does both\nx();\n");
        assert!(a.covering("clock", 2).is_some());
        assert!(a.covering("spawn", 2).is_some());
        assert!(a.covering("hash-order", 2).is_none());
    }
}
