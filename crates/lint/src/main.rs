//! CLI for `imdpp-lint`.
//!
//! ```text
//! imdpp-lint --workspace [--root PATH] [--json PATH] [--update-budgets]
//! imdpp-lint compare-budgets OLD NEW
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or loosened budgets), 2 usage/IO error.

use imdpp_lint::budgets::Budgets;
use imdpp_lint::{lint_workspace, measured_budgets, report};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

const BUDGETS_FILE: &str = "lint-budgets.toml";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  imdpp-lint --workspace [--root PATH] [--json PATH] [--update-budgets]\n  \
         imdpp-lint compare-budgets OLD NEW"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare-budgets") {
        return compare_budgets(&args[1..]);
    }

    let mut workspace = false;
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut update_budgets = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage(),
            },
            "--update-budgets" => update_budgets = true,
            _ => return usage(),
        }
    }
    if !workspace {
        return usage();
    }

    // Locate the workspace root: accept --root directly, or walk up from
    // the CWD (cargo run sets CWD to the invocation dir, not the root).
    let root = match find_root(&root) {
        Some(r) => r,
        None => {
            eprintln!(
                "imdpp-lint: no workspace root (Cargo.toml with [workspace]) at or above {}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    let budgets_path = root.join(BUDGETS_FILE);
    let mut budgets = match fs::read_to_string(&budgets_path) {
        Ok(src) => match Budgets::parse(&src) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("imdpp-lint: {}", e);
                return ExitCode::from(2);
            }
        },
        Err(_) if update_budgets => Budgets::default(),
        Err(e) => {
            eprintln!("imdpp-lint: cannot read {}: {}", budgets_path.display(), e);
            return ExitCode::from(2);
        }
    };

    if update_budgets {
        // Measure first, pin, then lint against the pinned file so the run
        // that wrote the budgets also validates them.
        match lint_workspace(&root, &budgets) {
            Ok(ws) => {
                budgets = measured_budgets(&ws);
                if let Err(e) = fs::write(&budgets_path, budgets.render()) {
                    eprintln!("imdpp-lint: cannot write {}: {}", budgets_path.display(), e);
                    return ExitCode::from(2);
                }
                println!(
                    "pinned {} budgets in {}",
                    budgets.panics.len(),
                    BUDGETS_FILE
                );
            }
            Err(e) => {
                eprintln!("imdpp-lint: {}", e);
                return ExitCode::from(2);
            }
        }
    }

    let ws = match lint_workspace(&root, &budgets) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("imdpp-lint: {}", e);
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &json_path {
        let json = report::render_json(&ws.findings, &ws.panic_counts);
        if let Some(parent) = json_path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(e) = fs::write(json_path, json) {
            eprintln!("imdpp-lint: cannot write {}: {}", json_path.display(), e);
            return ExitCode::from(2);
        }
    }

    for f in &ws.findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
    }
    println!(
        "imdpp-lint: {} file(s), {} finding(s), {} panic budget key(s)",
        ws.files_scanned,
        ws.findings.len(),
        ws.panic_counts.len()
    );
    if ws.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn compare_budgets(args: &[String]) -> ExitCode {
    let [old_path, new_path] = args else {
        return usage();
    };
    let read = |p: &String| -> Result<Budgets, String> {
        let src = fs::read_to_string(p).map_err(|e| format!("cannot read {}: {}", p, e))?;
        Budgets::parse(&src).map_err(|e| e.to_string())
    };
    let (old, new) = match (read(old_path), read(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("imdpp-lint: {}", e);
            return ExitCode::from(2);
        }
    };
    let loosened = old.loosened_in(&new);
    if loosened.is_empty() {
        println!("budgets ok: no entry loosened ({} keys)", new.panics.len());
        ExitCode::SUCCESS
    } else {
        for (key, o, n) in &loosened {
            eprintln!(
                "budget loosened: {} {} -> {} (budgets only ratchet down)",
                key, o, n
            );
        }
        ExitCode::from(1)
    }
}

/// Walks up from `start` to the first directory whose Cargo.toml declares a
/// `[workspace]`.
fn find_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = fs::canonicalize(start).ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = fs::read_to_string(&manifest) {
            if src.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
