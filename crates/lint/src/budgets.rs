//! Panic budgets: checked-in per-crate ceilings for `.unwrap()` /
//! `.expect(…)` / `panic!` sites, mirroring the `allow(deprecated)` budget
//! that ratcheted to 0 in PR 3.
//!
//! The file format is a minimal TOML subset (one `[panics]` table of
//! `key = integer` lines) parsed by hand — the lint is zero-dependency by
//! policy.  Budgets may only ratchet down; CI compares the committed file
//! against a freshly regenerated one and fails if any key loosened.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Parsed budgets: budget-key (crate name or pseudo-crate) → max panic sites.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Budgets {
    pub panics: BTreeMap<String, usize>,
}

/// A parse failure with the offending line (1-based).
#[derive(Debug, PartialEq, Eq)]
pub struct BudgetParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for BudgetParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-budgets.toml:{}: {}", self.line, self.message)
    }
}

impl Budgets {
    /// Parses the budgets file.  Unknown sections are rejected rather than
    /// skipped — a typoed `[panic]` section silently enforcing nothing is
    /// exactly the failure mode a budget file must not have.
    pub fn parse(source: &str) -> Result<Budgets, BudgetParseError> {
        let mut budgets = Budgets::default();
        let mut in_panics = false;
        for (ix, raw) in source.lines().enumerate() {
            let lineno = ix + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[') {
                let name = section.strip_suffix(']').ok_or(BudgetParseError {
                    line: lineno,
                    message: "unterminated section header".to_string(),
                })?;
                if name.trim() != "panics" {
                    return Err(BudgetParseError {
                        line: lineno,
                        message: format!("unknown section [{}] (only [panics] is defined)", name),
                    });
                }
                in_panics = true;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(BudgetParseError {
                    line: lineno,
                    message: "expected `key = <integer>`".to_string(),
                });
            };
            if !in_panics {
                return Err(BudgetParseError {
                    line: lineno,
                    message: "entry before the [panics] section".to_string(),
                });
            }
            let key = key.trim().trim_matches('"').to_string();
            let value: usize = value.trim().parse().map_err(|_| BudgetParseError {
                line: lineno,
                message: format!("budget for `{}` is not a non-negative integer", key),
            })?;
            if budgets.panics.insert(key.clone(), value).is_some() {
                return Err(BudgetParseError {
                    line: lineno,
                    message: format!("duplicate budget for `{}`", key),
                });
            }
        }
        Ok(budgets)
    }

    /// Renders the canonical file contents for `--update-budgets`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic budgets enforced by `imdpp-lint` (rule: panic-budget).\n\
             #\n\
             # Each entry caps the number of `.unwrap()` / `.expect(...)` / `panic!`\n\
             # sites in that crate (pseudo-crates: `suite` = src/, `tests`, `examples`).\n\
             # Budgets may only ratchet DOWN; CI fails if a regenerated file loosens\n\
             # any entry. Regenerate after removing sites with:\n\
             #   cargo run -p imdpp-lint --release -- --workspace --update-budgets\n\
             \n[panics]\n",
        );
        for (key, value) in &self.panics {
            let _ = writeln!(out, "{} = {}", key, value);
        }
        out
    }

    /// Keys whose budget loosened (grew) in `new` relative to `self`, with
    /// (old, new) counts.  New keys are fine — a new crate starts at its
    /// measured count; only existing ceilings are one-way.
    pub fn loosened_in(&self, new: &Budgets) -> Vec<(String, usize, usize)> {
        let mut out = Vec::new();
        for (key, old) in &self.panics {
            if let Some(newer) = new.panics.get(key) {
                if newer > old {
                    out.push((key.clone(), *old, *newer));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_sections_and_entries() {
        let src = "# header\n[panics]\ncore = 3  # inline comment\nengine = 0\n";
        let b = Budgets::parse(src).expect("parses");
        assert_eq!(b.panics.get("core"), Some(&3));
        assert_eq!(b.panics.get("engine"), Some(&0));
    }

    #[test]
    fn rejects_typoed_section_and_bare_entries() {
        assert!(Budgets::parse("[panic]\ncore = 3\n").is_err());
        assert!(Budgets::parse("core = 3\n").is_err());
        assert!(Budgets::parse("[panics]\ncore = -1\n").is_err());
        assert!(Budgets::parse("[panics]\ncore = 3\ncore = 4\n").is_err());
    }

    #[test]
    fn round_trips_through_render() {
        let mut b = Budgets::default();
        b.panics.insert("core".to_string(), 12);
        b.panics.insert("tests".to_string(), 40);
        let again = Budgets::parse(&b.render()).expect("rendered file parses");
        assert_eq!(b, again);
    }

    #[test]
    fn loosening_is_directional() {
        let old = Budgets::parse("[panics]\ncore = 3\nengine = 5\n").expect("old");
        let tightened =
            Budgets::parse("[panics]\ncore = 2\nengine = 5\nnewcrate = 9\n").expect("new");
        assert!(old.loosened_in(&tightened).is_empty());
        let loosened = Budgets::parse("[panics]\ncore = 4\nengine = 5\n").expect("loose");
        assert_eq!(old.loosened_in(&loosened), vec![("core".to_string(), 3, 4)]);
    }
}
