//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The linter needs to see identifiers, punctuation and comments with
//! accurate line numbers while *never* mistaking the inside of a string
//! literal or a doc comment for code (rustdoc examples are full of
//! `unwrap()` calls that must not count against panic budgets).  That is a
//! far smaller job than parsing Rust, so — consistent with the workspace's
//! offline-shim policy of zero external dependencies — this module lexes by
//! hand instead of pulling in `syn` or a `rustc` driver.
//!
//! What it understands:
//! * line comments (`//`, `///`, `//!`) and nested block comments,
//! * string, raw-string (any number of `#`s), byte-string and char
//!   literals, including escapes,
//! * lifetimes vs. char literals (`'a` vs `'a'`),
//! * identifiers (with `r#` raw prefixes), numbers, and one- or two-char
//!   operators (`::`, `+=`, …).
//!
//! What it does not try to do: macro expansion, type resolution, or any
//! nesting-aware grammar beyond bracket depth.  The rules in
//! [`crate::rules`] are explicitly heuristic over this token stream; the
//! dynamic determinism grid remains the ground-truth check.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// The token text (operators are normalized, e.g. `+=`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// Coarse token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Integer or float literal.
    Number,
    /// String / raw string / byte string / char literal (text excluded).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// Operator or delimiter, possibly two characters (`::`, `+=`, `->`).
    Punct,
}

/// A comment with its location; `text` excludes the comment markers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Comment body (for block comments, the whole body with newlines).
    pub text: String,
}

/// The output of lexing one file: the code tokens and, separately, every
/// comment (the annotation escape hatch lives in comments).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Lines that contain at least one code token (used to decide whether a
    /// line is comment-only when walking annotations upward).
    pub fn code_lines(&self) -> std::collections::BTreeSet<usize> {
        self.tokens.iter().map(|t| t.line).collect()
    }
}

/// Two-character operators the lexer keeps together.  Order matters only in
/// that all entries are checked before falling back to single chars.
const TWO_CHAR_OPS: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<", ">>", "..",
];

/// Lexes `source` into tokens and comments.  Unterminated literals are
/// tolerated (the rest of the file becomes one literal token) — the linter
/// must never panic on weird input, it is itself under the panic budget.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut j = start;
                // Skip doc-comment markers so `/// text` yields `text`.
                while j < bytes.len() && bytes[j] != b'\n' {
                    j += 1;
                }
                let mut body = &source[start..j];
                body = body.strip_prefix(['/', '!']).unwrap_or(body);
                out.comments.push(Comment {
                    line,
                    text: body.trim().to_string(),
                });
                i = j;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                let mut body = &source[start..end.min(source.len())];
                body = body.strip_prefix(['*', '!']).unwrap_or(body);
                out.comments.push(Comment {
                    line: start_line,
                    text: body.trim().to_string(),
                });
                i = j;
            }
            '"' => {
                let (next_i, next_line) = skip_string(source, i, line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                line = next_line;
                i = next_i;
            }
            'r' | 'b' if starts_raw_or_byte_literal(bytes, i) => {
                let start_line = line;
                let (next_i, next_line) = skip_prefixed_literal(source, i, line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
                line = next_line;
                i = next_i;
            }
            '\'' => {
                // Lifetime (`'a` not closed by `'`) vs. char literal.
                if is_lifetime(bytes, i) {
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_char(bytes[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: source[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let (next_i, next_line) = skip_char_literal(source, i, line);
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                    line = next_line;
                    i = next_i;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // Good enough for linting: digits, `_`, `.`, exponents and
                // type suffixes all glue into one number token.
                while j < bytes.len()
                    && (is_ident_char(bytes[j])
                        || bytes[j] == b'.' && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()))
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: source[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() && is_ident_char(bytes[j]) {
                    j += 1;
                }
                let mut text = &source[i..j];
                text = text.strip_prefix("r#").unwrap_or(text);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: text.to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                let two = source.get(i..i + 2);
                if let Some(op) = two.filter(|t| TWO_CHAR_OPS.contains(t)) {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: op.to_string(),
                        line,
                    });
                    i += 2;
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b == b'_' || (b as char).is_ascii_alphanumeric()
}

/// `'a` / `'static` (a lifetime) iff the quote is followed by an identifier
/// char that is *not* itself closed by a quote (`'a'` is a char literal).
fn is_lifetime(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b) if is_ident_char(b) => bytes.get(i + 2) != Some(&b'\''),
        _ => false,
    }
}

/// Does `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'` start here?  A bare
/// identifier starting with `r`/`b` (e.g. `rng`) does not.
fn starts_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // b"…" / b'…'
    bytes[i] == b'b' && matches!(bytes.get(j), Some(&b'"') | Some(&b'\''))
}

/// Skips a `"…"` literal starting at `i`; returns (next index, next line).
fn skip_string(source: &str, i: usize, mut line: usize) -> (usize, usize) {
    let bytes = source.as_bytes();
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\n' => {
                line += 1;
                j += 1;
            }
            b'"' => return (j + 1, line),
            _ => j += 1,
        }
    }
    (j, line)
}

/// Skips `r#"…"#`-style raw strings and `b"…"` / `b'…'` byte literals.
fn skip_prefixed_literal(source: &str, i: usize, mut line: usize) -> (usize, usize) {
    let bytes = source.as_bytes();
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        while j < bytes.len() {
            if bytes[j] == b'\n' {
                line += 1;
                j += 1;
            } else if bytes[j] == b'"' && source.as_bytes()[j..].starts_with(&closer) {
                return (j + closer.len(), line);
            } else {
                j += 1;
            }
        }
        (j, line)
    } else if bytes.get(j) == Some(&b'\'') {
        // b'x' byte char
        let (ni, nl) = skip_char_literal(source, j, line);
        (ni, nl)
    } else {
        // b"…"
        let (ni, nl) = skip_string(source, j, line);
        (ni, nl)
    }
}

/// Skips a `'x'` / `'\n'` char literal starting at the quote.
fn skip_char_literal(source: &str, i: usize, line: usize) -> (usize, usize) {
    let bytes = source.as_bytes();
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        j += 2;
    } else if j < bytes.len() {
        // Possibly multi-byte UTF-8: advance one char.
        let rest = &source[j..];
        j += rest.chars().next().map_or(1, |c| c.len_utf8());
    }
    if bytes.get(j) == Some(&b'\'') {
        j += 1;
    }
    (j, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let lexed = lex("// calls unwrap()\nlet x = 1; /* expect( */\n");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "calls unwrap()");
        assert!(!idents("// unwrap\nfoo();").contains(&"unwrap".to_string()));
        assert!(lexed.tokens.iter().all(|t| t.text != "expect"));
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let lexed = lex("/// doc unwrap()\n//! inner\nfn f() {}\n");
        assert_eq!(lexed.comments[0].text, "doc unwrap()");
        assert_eq!(lexed.comments[1].text, "inner");
        assert_eq!(idents("/// doc\nfn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn strings_and_chars_hide_their_content() {
        let src = r#"let s = "unwrap() // not a comment"; let c = '"'; let l: &'static str = x;"#;
        let names = idents(src);
        assert!(!names.contains(&"unwrap".to_string()));
        assert!(names.contains(&"static".to_string()) || !names.is_empty());
        // The lifetime is lexed as a lifetime, not a char literal.
        let lexed = lex(src);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"let s = r#"panic!("inside")"#; after();"##;
        let names = idents(src);
        assert!(!names.contains(&"panic".to_string()));
        assert!(names.contains(&"after".to_string()));
    }

    #[test]
    fn two_char_ops_stay_together() {
        let toks = lex("a += b::c;");
        let ops: Vec<_> = toks
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(ops, vec!["+=", "::", ";"]);
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"x\ny\";\n/* b\nc */\nfn f() {}\n";
        let lexed = lex(src);
        let f = lexed.tokens.iter().find(|t| t.text == "f").unwrap();
        assert_eq!(f.line, 5);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn g() {}";
        assert_eq!(idents(src), vec!["fn", "g"]);
    }
}
