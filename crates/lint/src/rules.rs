//! The invariant rules: what `imdpp-lint` denies and why.
//!
//! Every rule here encodes an invariant the test suite can only check
//! *dynamically* (and often only probabilistically); the lint moves the
//! check to `cargo` time.  Each rule names the incident that motivated it —
//! see `docs/INVARIANTS.md` for the full catalogue.
//!
//! The rules are deliberately heuristic: they run over the token stream of
//! [`crate::lexer`], not a typed AST, so they over-approximate (flagging
//! some sound sites, silenced with a justified
//! `// lint: allow(<rule>) — why` annotation) and under-approximate (a
//! hash container smuggled through enough indirection escapes).  The
//! deny-by-default direction is the point: a new nondeterminism hazard
//! fails the build until a human either fixes it or writes down why it is
//! sound, and `tests/parallel_determinism.rs` remains the ground truth.

use crate::annotations::Allows;
use crate::lexer::{lex, Lexed, Token, TokenKind};
use std::collections::BTreeSet;

/// Rule identifiers (these appear in `allow(...)` annotations and reports).
pub const RULE_HASH_ORDER: &str = "hash-order";
pub const RULE_FLOAT_ACCUM: &str = "float-accum";
pub const RULE_ATOMIC_ORDERING: &str = "atomic-ordering";
pub const RULE_ATOMIC_SEQCST: &str = "atomic-seqcst";
pub const RULE_CLOCK: &str = "clock";
pub const RULE_SPAWN: &str = "spawn";
pub const RULE_PANIC_BUDGET: &str = "panic-budget";
pub const RULE_BAD_ANNOTATION: &str = "bad-annotation";
pub const RULE_UNUSED_ALLOW: &str = "unused-allow";
pub const RULE_REPO_HYGIENE: &str = "repo-hygiene";

/// Crates whose iteration order can feed RNG streams, edge order or greedy
/// tie-breaks; hash-container iteration is denied there (PR 1's bug class:
/// `HashSet` iteration fed `endpoints` in the generators).
const HASH_SCOPED_CRATES: &[&str] = &["graph", "kg", "diffusion", "core", "sketch"];

/// Selection / repair path files where accumulated float state is denied
/// (PR 7's bug class: a running `+=` gain sum in CELF diverged by ulps from
/// the oracle's exact value and broke prefix reproduction).
const FLOAT_SCOPED_FILES: &[&str] = &[
    "crates/core/src/nominees.rs",
    "crates/core/src/submodular.rs",
    "crates/core/src/dysim.rs",
    "crates/core/src/tdsi.rs",
    "crates/core/src/dre.rs",
    "crates/sketch/src/greedy.rs",
    "crates/sketch/src/maintain.rs",
    "crates/sketch/src/adaptive.rs",
];

/// Identifier fragments that mark a statement as handling oracle-derived
/// float values (as opposed to integer bookkeeping like `evaluations += 1`).
const FLOAT_MARKERS: &[&str] = &[
    "gain",
    "value",
    "cost",
    "spent",
    "sigma",
    "spread",
    "marginal",
    "objective",
];

/// Where reading the clock is part of the job: the telemetry layer and the
/// benches.  Everywhere else a clock read needs an `allow(clock)` naming the
/// telemetry span it feeds.
const CLOCK_ALLOWED_PREFIXES: &[&str] = &["crates/obs/", "crates/bench/"];

/// The only files allowed to create threads: the sampler's stream-parallel
/// worker pool and the shard fan-out built on it.  Ad-hoc threads elsewhere
/// bypass `sampler::effective_threads` and the worker<->shard ownership map
/// that makes scheduling irrelevant to results.
const SPAWN_ALLOWED_FILES: &[&str] = &[
    "crates/sketch/src/sampler.rs",
    "crates/sketch/src/sharded.rs",
];

/// Hash-container methods whose result order is the hasher's, not the
/// program's.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "intersection",
    "union",
    "difference",
    "symmetric_difference",
];

/// Atomic memory orderings that require a justification annotation.  The
/// documented policy (crates/obs) is relaxed or acquire/release with a
/// reason; `SeqCst` is denied outright — it papers over a protocol the
/// author could not state, at a cost on every armv8/ppc fence.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel"];

/// One finding: a rule violation at a location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

/// Result of linting one file: findings plus the panic sites (the latter
/// are aggregated into per-crate budgets by the workspace driver rather
/// than reported per site).
#[derive(Debug, Default)]
pub struct FileLint {
    pub findings: Vec<Finding>,
    /// Lines of `.unwrap()` / `.expect(` / `panic!` sites.
    pub panic_sites: Vec<usize>,
}

/// Lints one file's source. `rel_path` must be repo-relative with `/`
/// separators (it drives the per-rule scoping).
pub fn lint_file(rel_path: &str, source: &str) -> FileLint {
    let lexed = lex(source);
    let allows = Allows::parse(&lexed);
    let depths = bracket_depths(&lexed.tokens);
    let mut used_allows: BTreeSet<usize> = BTreeSet::new();
    let mut raw: Vec<Finding> = Vec::new();

    check_hash_order(rel_path, &lexed, &depths, &mut raw);
    check_float_accum(rel_path, &lexed, &depths, &mut raw);
    check_atomics(rel_path, &lexed, &mut raw);
    check_clock(rel_path, &lexed, &mut raw);
    check_spawn(rel_path, &lexed, &mut raw);

    // Deduplicate (two detectors can flag the same line) and apply allows.
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    raw.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        // `atomic-seqcst` is not suppressible: no allow lookup at all.
        if f.rule != RULE_ATOMIC_SEQCST {
            if let Some(ix) = allows.covering(f.rule, f.line) {
                if allows.all()[ix].justified {
                    used_allows.insert(ix);
                    continue;
                }
            }
        }
        findings.push(f);
    }

    // Annotation hygiene: unjustified allows and allows nothing consumed.
    for (ix, a) in allows.all().iter().enumerate() {
        if !a.justified {
            findings.push(Finding {
                rule: RULE_BAD_ANNOTATION,
                path: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "allow({}) has no justification — write `// lint: allow({}) — <why>`",
                    a.rules.join(", "),
                    a.rules.join(", "),
                ),
            });
        } else if !used_allows.contains(&ix) {
            findings.push(Finding {
                rule: RULE_UNUSED_ALLOW,
                path: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "allow({}) suppresses nothing — remove the stale annotation",
                    a.rules.join(", ")
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    FileLint {
        findings,
        panic_sites: panic_sites(&lexed),
    }
}

/// Bracket depth per token (all of `()[]{}` count — the rules only need a
/// consistent notion of "same nesting level").
fn bracket_depths(tokens: &[Token]) -> Vec<usize> {
    let mut depth = 0usize;
    let mut out = Vec::with_capacity(tokens.len());
    for t in tokens {
        match t.text.as_str() {
            "(" | "[" | "{" => {
                out.push(depth);
                depth += 1;
            }
            ")" | "]" | "}" => {
                depth = depth.saturating_sub(1);
                out.push(depth);
            }
            _ => out.push(depth),
        }
    }
    out
}

fn ident_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

fn punct_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_hash_container(text: &str) -> bool {
    text == "HashMap" || text == "HashSet"
}

/// The budget key a repo-relative path belongs to: `crates/<name>/…` maps to
/// `<name>`, the root `src/`, `tests/` and `examples/` trees to pseudo-crates.
pub fn budget_key(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("crates").to_string(),
        Some("src") => "suite".to_string(),
        Some("tests") => "tests".to_string(),
        Some("examples") => "examples".to_string(),
        Some(other) => other.to_string(),
        None => rel_path.to_string(),
    }
}

fn crate_of(rel_path: &str) -> Option<&str> {
    rel_path.strip_prefix("crates/")?.split('/').next()
}

// ---------------------------------------------------------------------------
// hash-order
// ---------------------------------------------------------------------------

/// Flags iteration over `HashMap` / `HashSet` in the RNG- and
/// selection-feeding crates.  Tracking is name-based: identifiers bound (by
/// `let`, field or parameter position) to a statement mentioning a hash
/// container are considered hash-ordered until rebound to something else.
fn check_hash_order(rel_path: &str, lexed: &Lexed, depths: &[usize], out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(rel_path) else {
        return;
    };
    if !HASH_SCOPED_CRATES.contains(&krate) {
        return;
    }
    let tokens = &lexed.tokens;

    // Pending set mutations: (apply-at-index, name, insert?)
    let mut pending: Vec<(usize, String, bool)> = Vec::new();
    let mut hash_idents: BTreeSet<String> = BTreeSet::new();

    // Field / parameter ascriptions take effect immediately: walking left
    // from a container token over path segments to find `name :`.
    for i in 0..tokens.len() {
        if tokens[i].kind == TokenKind::Ident && is_hash_container(&tokens[i].text) {
            let mut j = i;
            while j >= 1 {
                let prev = &tokens[j - 1];
                let skip = prev.text == "::"
                    || prev.text == "&"
                    || prev.text == "mut"
                    || (prev.kind == TokenKind::Ident && j >= 2 && punct_at(tokens, j - 2, "::"));
                if skip {
                    j -= 1;
                } else {
                    break;
                }
            }
            if j >= 2 && punct_at(tokens, j - 1, ":") && tokens[j - 2].kind == TokenKind::Ident {
                hash_idents.insert(tokens[j - 2].text.clone());
            }
        }
    }

    // `let` bindings: insertion or (rebinding) removal, effective after the
    // statement ends so `let v: Vec<_> = set.into_iter()…` still sees `set`.
    for i in 0..tokens.len() {
        if !ident_at(tokens, i, "let") {
            continue;
        }
        let mut j = i + 1;
        if ident_at(tokens, j, "mut") {
            j += 1;
        }
        if tokens.get(j).map(|t| t.kind) != Some(TokenKind::Ident) {
            continue; // destructuring pattern: not tracked
        }
        let name = tokens[j].text.clone();
        let d = depths[i];
        let mut end = j;
        let mut mentions_hash = false;
        while end < tokens.len() {
            if tokens[end].kind == TokenKind::Ident && is_hash_container(&tokens[end].text) {
                mentions_hash = true;
            }
            if punct_at(tokens, end, ";") && depths[end] <= d {
                break;
            }
            end += 1;
        }
        pending.push((end + 1, name, mentions_hash));
    }
    pending.sort_by_key(|p| p.0);

    let mut pending_iter = pending.into_iter().peekable();
    for i in 0..tokens.len() {
        while let Some((at, _, _)) = pending_iter.peek() {
            if *at <= i {
                let (_, name, insert) = pending_iter.next().expect("peeked");
                if insert {
                    hash_idents.insert(name);
                } else {
                    hash_idents.remove(&name);
                }
            } else {
                break;
            }
        }
        let t = &tokens[i];
        // `recv.iter()` — receiver identifier directly before the dot.
        if t.kind == TokenKind::Ident
            && HASH_ITER_METHODS.contains(&t.text.as_str())
            && punct_at(tokens, i + 1, "(")
            && i >= 2
            && punct_at(tokens, i - 1, ".")
            && tokens[i - 2].kind == TokenKind::Ident
            && (hash_idents.contains(&tokens[i - 2].text) || is_hash_container(&tokens[i - 2].text))
        {
            out.push(Finding {
                rule: RULE_HASH_ORDER,
                path: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`{}.{}()` iterates a hash container in a determinism-scoped crate; \
                     iterate a BTreeMap/sorted Vec instead, or justify why order cannot \
                     reach RNG, edge order or selection",
                    tokens[i - 2].text,
                    t.text
                ),
            });
        }
        // `for pat in <expr containing a hash ident> {`
        if ident_at(tokens, i, "for") {
            let d = depths[i];
            let mut j = i + 1;
            let mut in_ix = None;
            while j < tokens.len() && j < i + 64 {
                if ident_at(tokens, j, "in") && depths[j] == d {
                    in_ix = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(in_ix) = in_ix {
                let mut k = in_ix + 1;
                while k < tokens.len() {
                    if punct_at(tokens, k, "{") && depths[k] == d {
                        break;
                    }
                    let tk = &tokens[k];
                    if tk.kind == TokenKind::Ident
                        && (hash_idents.contains(&tk.text) || is_hash_container(&tk.text))
                    {
                        out.push(Finding {
                            rule: RULE_HASH_ORDER,
                            path: rel_path.to_string(),
                            line: tokens[i].line,
                            message: format!(
                                "`for … in` over hash-ordered `{}` in a determinism-scoped \
                                 crate; iterate a BTreeMap/sorted Vec instead, or justify \
                                 why order cannot reach RNG, edge order or selection",
                                tk.text
                            ),
                        });
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-accum
// ---------------------------------------------------------------------------

/// Flags running float accumulation (`+=`, `.sum()`) over oracle-derived
/// values in the selection / repair path files.  Integer bookkeeping
/// (`evaluations += 1`) carries none of the [`FLOAT_MARKERS`] and passes.
fn check_float_accum(rel_path: &str, lexed: &Lexed, depths: &[usize], out: &mut Vec<Finding>) {
    if !FLOAT_SCOPED_FILES.contains(&rel_path) {
        return;
    }
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        let is_plus_eq = punct_at(tokens, i, "+=");
        let is_sum = ident_at(tokens, i, "sum")
            && punct_at(tokens, i + 1, "(")
            && i >= 1
            && punct_at(tokens, i - 1, ".");
        let is_turbofish_sum = ident_at(tokens, i, "sum")
            && punct_at(tokens, i + 1, "::")
            && i >= 1
            && punct_at(tokens, i - 1, ".");
        if !is_plus_eq && !is_sum && !is_turbofish_sum {
            continue;
        }
        let (start, end) = statement_span(tokens, depths, i);
        let marker = tokens[start..end].iter().find(|t| {
            t.kind == TokenKind::Ident
                && FLOAT_MARKERS
                    .iter()
                    .any(|m| t.text.to_ascii_lowercase().contains(m))
        });
        if let Some(m) = marker {
            let op = if is_plus_eq { "+=" } else { ".sum()" };
            out.push(Finding {
                rule: RULE_FLOAT_ACCUM,
                path: rel_path.to_string(),
                line: tokens[i].line,
                message: format!(
                    "`{op}` accumulates `{}`-like float state on a selection/repair path; \
                     install the oracle's exact value instead of a running sum, or justify \
                     why accumulated rounding cannot reach the greedy trace",
                    m.text
                ),
            });
        }
    }
}

/// The token span of the statement containing `i`: from after the previous
/// `;` / `{` / `}` at or below the token's depth to the next `;` at or
/// below it.
fn statement_span(tokens: &[Token], depths: &[usize], i: usize) -> (usize, usize) {
    let d = depths[i];
    let mut start = i;
    while start > 0 {
        let p = &tokens[start - 1];
        if depths[start - 1] <= d && matches!(p.text.as_str(), ";" | "{" | "}") {
            break;
        }
        start -= 1;
    }
    let mut end = i;
    while end < tokens.len() {
        if depths[end] <= d && punct_at(tokens, end, ";") {
            break;
        }
        end += 1;
    }
    (start, end.min(tokens.len()))
}

// ---------------------------------------------------------------------------
// atomic-ordering / atomic-seqcst
// ---------------------------------------------------------------------------

/// Every atomic `Ordering::…` site must justify its ordering; `SeqCst` is
/// denied with no escape hatch.  (`cmp::Ordering`'s variants — `Less`,
/// `Equal`, `Greater` — do not collide with the atomic names.)
fn check_atomics(rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        if !ident_at(tokens, i, "Ordering") || !punct_at(tokens, i + 1, "::") {
            continue;
        }
        let Some(variant) = tokens.get(i + 2) else {
            continue;
        };
        if variant.text == "SeqCst" {
            out.push(Finding {
                rule: RULE_ATOMIC_SEQCST,
                path: rel_path.to_string(),
                line: variant.line,
                message: "Ordering::SeqCst is denied (not suppressible): state the actual \
                          protocol with Relaxed/Acquire/Release and an allow(atomic-ordering) \
                          justification"
                    .to_string(),
            });
        } else if ATOMIC_ORDERINGS.contains(&variant.text.as_str()) {
            out.push(Finding {
                rule: RULE_ATOMIC_ORDERING,
                path: rel_path.to_string(),
                line: variant.line,
                message: format!(
                    "atomic Ordering::{} needs a justification — \
                     `// lint: allow(atomic-ordering) — <why this ordering suffices>`",
                    variant.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// clock
// ---------------------------------------------------------------------------

/// `Instant::now` / `SystemTime::now` outside the telemetry layer and the
/// benches must name the telemetry span or measurement they feed.  Clock
/// reads anywhere else are how wall-clock sneaks into adaptive logic and
/// breaks replayability.
fn check_clock(rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    if CLOCK_ALLOWED_PREFIXES
        .iter()
        .any(|p| rel_path.starts_with(p))
    {
        return;
    }
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        let is_clock = (ident_at(tokens, i, "Instant") || ident_at(tokens, i, "SystemTime"))
            && punct_at(tokens, i + 1, "::")
            && ident_at(tokens, i + 2, "now");
        if is_clock {
            out.push(Finding {
                rule: RULE_CLOCK,
                path: rel_path.to_string(),
                line: tokens[i].line,
                message: format!(
                    "`{}::now()` outside crates/obs and crates/bench — annotate the \
                     telemetry span it feeds with `// lint: allow(clock) — <span>`",
                    tokens[i].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// spawn
// ---------------------------------------------------------------------------

/// `thread::spawn` / `thread::scope` outside the sampler's worker pool and
/// the shard fan-out: ad-hoc threads bypass `sampler::effective_threads`
/// and the worker<->shard ownership that keeps scheduling out of results.
fn check_spawn(rel_path: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    if SPAWN_ALLOWED_FILES.contains(&rel_path) {
        return;
    }
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        let is_spawn = ident_at(tokens, i, "thread")
            && punct_at(tokens, i + 1, "::")
            && (ident_at(tokens, i + 2, "spawn") || ident_at(tokens, i + 2, "scope"));
        if is_spawn {
            out.push(Finding {
                rule: RULE_SPAWN,
                path: rel_path.to_string(),
                line: tokens[i].line,
                message: "thread creation outside sampler::for_each_shard — route work \
                          through the shard worker pool, or justify the harness thread with \
                          `// lint: allow(spawn) — <why>`"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// panic sites (aggregated into budgets by the workspace driver)
// ---------------------------------------------------------------------------

/// Lines of `.unwrap()`, `.expect(…)` and `panic!` sites.  `unwrap_or*`,
/// `unwrap_err`, `expect_err` are different identifiers and do not count.
fn panic_sites(lexed: &Lexed) -> Vec<usize> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let dotted = i >= 1 && punct_at(tokens, i - 1, ".");
        let called = punct_at(tokens, i + 1, "(");
        let site = (t.text == "unwrap" && dotted && called && punct_at(tokens, i + 2, ")"))
            || (t.text == "expect" && dotted && called)
            || (t.text == "panic" && punct_at(tokens, i + 1, "!"));
        if site {
            out.push(t.line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, src).findings
    }

    #[test]
    fn budget_keys_map_paths() {
        assert_eq!(budget_key("crates/engine/src/lib.rs"), "engine");
        assert_eq!(budget_key("src/lib.rs"), "suite");
        assert_eq!(budget_key("tests/end_to_end.rs"), "tests");
        assert_eq!(budget_key("examples/quickstart.rs"), "examples");
    }

    #[test]
    fn hash_iteration_fires_only_in_scoped_crates() {
        let src = "fn f() { let m = std::collections::HashMap::new(); for k in m.keys() {} }";
        assert_eq!(findings("crates/graph/src/x.rs", src).len(), 1);
        assert!(findings("crates/engine/src/lib.rs", src).is_empty());
    }

    #[test]
    fn rebinding_to_vec_stops_tracking_after_the_statement() {
        let src = "\
fn f() {
    let mut s: std::collections::HashSet<u32> = std::collections::HashSet::new();
    let mut s: Vec<u32> = s.into_iter().collect();
    s.sort_unstable();
    for v in s { use_it(v); }
}
";
        let fs = findings("crates/graph/src/x.rs", src);
        // The into_iter on line 3 is flagged (still a hash set there)…
        assert_eq!(fs.iter().filter(|f| f.line == 3).count(), 1);
        // …but the loop over the sorted Vec on line 5 is not.
        assert!(fs.iter().all(|f| f.line != 5));
    }

    #[test]
    fn membership_tests_are_not_iteration() {
        let src = "fn f(s: &std::collections::HashSet<u32>) -> bool { s.contains(&3) }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_accum_distinguishes_counters_from_oracle_values() {
        let src = "\
fn f() {
    let mut evaluations = 0usize;
    evaluations += 1;
    let mut current_value = 0.0;
    current_value += gain;
}
";
        let fs = findings("crates/core/src/nominees.rs", src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 5);
        // Same code outside the scoped files: silent.
        assert!(findings("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn seqcst_is_not_suppressible() {
        let src = "\
fn f(a: &std::sync::atomic::AtomicU64) {
    // lint: allow(atomic-seqcst) — trying to sneak it in
    a.load(std::sync::atomic::Ordering::SeqCst);
}
";
        let fs = findings("crates/obs/src/x.rs", src);
        assert!(fs.iter().any(|f| f.rule == RULE_ATOMIC_SEQCST));
        // The annotation itself is reported as consuming nothing.
        assert!(fs.iter().any(|f| f.rule == RULE_UNUSED_ALLOW));
    }

    #[test]
    fn relaxed_needs_and_accepts_a_justification() {
        let bare = "fn f(a: &A) { a.load(Ordering::Relaxed); }";
        let fs = findings("crates/obs/src/x.rs", bare);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, RULE_ATOMIC_ORDERING);

        let ok = "\
fn f(a: &A) {
    // lint: allow(atomic-ordering) — independent counter, no ordering needed
    a.load(Ordering::Relaxed);
}
";
        assert!(findings("crates/obs/src/x.rs", ok).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_an_atomic_site() {
        let src = "fn f() { let _ = a.partial_cmp(&b).unwrap_or(Ordering::Equal); }";
        assert!(findings("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn clock_scope_and_annotation() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(findings("crates/obs/src/lib.rs", src).is_empty());
        assert!(findings("crates/bench/benches/b.rs", src).is_empty());
        assert_eq!(findings("crates/engine/src/lib.rs", src).len(), 1);
        assert_eq!(findings("tests/scale_store.rs", src).len(), 1);
    }

    #[test]
    fn spawn_scope() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(findings("crates/sketch/src/sampler.rs", src).is_empty());
        assert_eq!(findings("tests/engine_snapshot.rs", src).len(), 1);
    }

    #[test]
    fn panic_sites_exclude_fallible_cousins_and_comments() {
        let src = "\
fn f(x: Option<u32>, r: Result<u32, u32>) -> u32 {
    // unwrap() in a comment does not count
    let a = x.unwrap();
    let b = r.unwrap_or(0);
    let c = r.expect(\"msg\");
    let d = r.unwrap_err();
    if a + b + c + d > 10 { panic!(\"boom\"); }
    0
}
";
        let lint = lint_file("crates/core/src/x.rs", src);
        assert_eq!(lint.panic_sites, vec![3, 5, 7]);
    }

    #[test]
    fn unjustified_allow_is_a_finding_and_does_not_suppress() {
        let src = "\
fn f() {
    // lint: allow(clock)
    let t = Instant::now();
}
";
        let fs = findings("crates/engine/src/lib.rs", src);
        assert!(fs.iter().any(|f| f.rule == RULE_CLOCK));
        assert!(fs.iter().any(|f| f.rule == RULE_BAD_ANNOTATION));
    }
}
