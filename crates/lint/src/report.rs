//! The machine-readable findings report CI uploads as an artifact.
//!
//! Hand-rolled JSON (the lint is zero-dependency): findings sorted by
//! (path, line, rule) plus the per-crate panic counts versus their budgets,
//! so a CI artifact diff shows exactly what changed between runs.

use crate::rules::Finding;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Panic-count summary for one budget key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicCount {
    pub key: String,
    pub count: usize,
    /// `None` when the key has no entry in lint-budgets.toml.
    pub budget: Option<usize>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report. `findings` must already be in report order.
pub fn render_json(findings: &[Finding], panics: &[PanicCount]) -> String {
    let mut out = String::from("{\n  \"tool\": \"imdpp-lint\",\n  \"findings\": [\n");
    for (ix, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        );
        out.push_str(if ix + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"panic_counts\": {\n");
    for (ix, p) in panics.iter().enumerate() {
        let budget = match p.budget {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "    \"{}\": {{\"count\": {}, \"budget\": {}}}",
            json_escape(&p.key),
            p.count,
            budget
        );
        out.push_str(if ix + 1 < panics.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Groups per-file panic site counts into per-budget-key totals.
pub fn panic_counts(
    per_file: &BTreeMap<String, usize>,
    budgets: &crate::budgets::Budgets,
) -> Vec<PanicCount> {
    let mut by_key: BTreeMap<String, usize> = BTreeMap::new();
    for (path, count) in per_file {
        *by_key.entry(crate::rules::budget_key(path)).or_insert(0) += count;
    }
    by_key
        .into_iter()
        .map(|(key, count)| PanicCount {
            budget: budgets.panics.get(&key).copied(),
            key,
            count,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn renders_valid_shape_and_escapes() {
        let findings = vec![Finding {
            rule: "clock",
            path: "crates/engine/src/lib.rs".to_string(),
            line: 7,
            message: "say \"why\"\nplease".to_string(),
        }];
        let panics = vec![PanicCount {
            key: "engine".to_string(),
            count: 3,
            budget: Some(5),
        }];
        let json = render_json(&findings, &panics);
        assert!(json.contains("\"rule\": \"clock\""));
        assert!(json.contains("say \\\"why\\\"\\nplease"));
        assert!(json.contains("\"engine\": {\"count\": 3, \"budget\": 5}"));
        // Balanced braces as a cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_report_is_still_valid() {
        let json = render_json(&[], &[]);
        assert!(json.contains("\"findings\": [\n  ]"));
    }
}
