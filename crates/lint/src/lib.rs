//! `imdpp-lint`: the workspace static-analysis pass that enforces the
//! project's determinism, atomics, clock/spawn and error-handling
//! invariants at `cargo` time.
//!
//! The guarantee the test suite proves dynamically — bit-identical
//! estimates, seeds, `RefreshStats` and telemetry counters across the
//! shards × threads grid — has only ever been broken by patterns that were
//! visible statically (PR 1: `HashSet` iteration feeding RNG/edge order;
//! PR 7: an accumulated float gain sum diverging by ulps from the oracle).
//! This crate walks the workspace sources with a hand-rolled tokenizer
//! (zero dependencies, consistent with the offline-shim policy — no
//! syn/dylint) and denies those patterns by default; the escape hatch is an
//! inline `// lint: allow(<rule>) — <justification>` annotation, which is
//! itself linted (it must be justified, and must actually suppress
//! something).  See `docs/INVARIANTS.md` for the rule catalogue.

pub mod annotations;
pub mod budgets;
pub mod lexer;
pub mod report;
pub mod rules;

use budgets::Budgets;
use report::PanicCount;
use rules::Finding;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The source trees the lint walks, relative to the repo root.
const WALK_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Subtrees excluded from the walk: the lint's own fixture corpus (its
/// files violate rules on purpose) and the offline third-party shims
/// (stand-ins for external crates, not project code).
const WALK_EXCLUDES: &[&str] = &["crates/lint/tests", "shims"];

/// Everything one workspace pass produces.
#[derive(Debug, Default)]
pub struct WorkspaceLint {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Per-budget-key panic counts versus their budgets.
    pub panic_counts: Vec<PanicCount>,
    /// Per-file panic site counts (feeds `--update-budgets`).
    pub panic_sites_per_file: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

/// Collects the repo-relative paths (forward slashes) of every `.rs` file
/// the lint covers, sorted — the walk order is part of the report contract.
pub fn collect_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for tree in WALK_ROOTS {
        let dir = root.join(tree);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let rel = rel_path(root, &path);
        if WALK_EXCLUDES
            .iter()
            .any(|x| rel == *x || rel.starts_with(&format!("{x}/")))
        {
            continue;
        }
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(root, &path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs the full pass: per-file rules, panic budgets, repo hygiene.
pub fn lint_workspace(root: &Path, budgets: &Budgets) -> io::Result<WorkspaceLint> {
    let mut ws = WorkspaceLint::default();
    for rel in collect_sources(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let file = rules::lint_file(&rel, &source);
        ws.findings.extend(file.findings);
        ws.panic_sites_per_file.insert(rel, file.panic_sites.len());
        ws.files_scanned += 1;
    }

    ws.panic_counts = report::panic_counts(&ws.panic_sites_per_file, budgets);
    for p in &ws.panic_counts {
        match p.budget {
            None => ws.findings.push(Finding {
                rule: rules::RULE_PANIC_BUDGET,
                path: "lint-budgets.toml".to_string(),
                line: 1,
                message: format!(
                    "`{}` has {} panic site(s) but no budget — pin it with --update-budgets",
                    p.key, p.count
                ),
            }),
            Some(b) if p.count > b => ws.findings.push(Finding {
                rule: rules::RULE_PANIC_BUDGET,
                path: "lint-budgets.toml".to_string(),
                line: 1,
                message: format!(
                    "`{}` has {} panic site(s), over its budget of {} — convert \
                     unwrap/expect to typed errors (budgets only ratchet down)",
                    p.key, p.count, b
                ),
            }),
            Some(_) => {}
        }
    }

    check_repo_hygiene(root, &mut ws.findings);

    ws.findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(ws)
}

/// The repo-hygiene rule: the tracked `results/bench_*.json` summaries must
/// be un-ignored explicitly.  A bare `/results` dir-ignore makes git refuse
/// to descend, so the negation only works as `/results/*` + a `!` pattern —
/// without it, fresh clones need `git add -f` and CI artifact diffs rot.
fn check_repo_hygiene(root: &Path, findings: &mut Vec<Finding>) {
    let gitignore = match fs::read_to_string(root.join(".gitignore")) {
        Ok(s) => s,
        Err(_) => {
            findings.push(Finding {
                rule: rules::RULE_REPO_HYGIENE,
                path: ".gitignore".to_string(),
                line: 1,
                message: "missing .gitignore at the workspace root".to_string(),
            });
            return;
        }
    };
    let lines: Vec<&str> = gitignore.lines().map(str::trim).collect();
    let has_unignore = lines
        .iter()
        .any(|l| *l == "!/results/bench_*.json" || *l == "!results/bench_*.json");
    if !has_unignore {
        findings.push(Finding {
            rule: rules::RULE_REPO_HYGIENE,
            path: ".gitignore".to_string(),
            line: 1,
            message: "tracked bench summaries need `!/results/bench_*.json` so fresh \
                      clones do not require `git add -f`"
                .to_string(),
        });
    }
    // A dir-level ignore defeats the negation: git never descends into an
    // ignored directory, so `!…/bench_*.json` under `/results` is dead.
    if let Some(ix) = lines
        .iter()
        .position(|l| matches!(*l, "/results" | "results" | "results/" | "/results/"))
    {
        findings.push(Finding {
            rule: rules::RULE_REPO_HYGIENE,
            path: ".gitignore".to_string(),
            line: ix + 1,
            message: "dir-level `/results` ignore blocks the bench_*.json un-ignore; \
                      use `/results/*` so git still descends"
                .to_string(),
        });
    }
}

/// Budgets regenerated from the measured counts (`--update-budgets`).
pub fn measured_budgets(ws: &WorkspaceLint) -> Budgets {
    let mut by_key: BTreeMap<String, usize> = BTreeMap::new();
    for (path, count) in &ws.panic_sites_per_file {
        *by_key.entry(rules::budget_key(path)).or_insert(0) += count;
    }
    Budgets { panics: by_key }
}
