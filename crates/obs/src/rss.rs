//! Process peak-RSS readout for the bench summaries.

/// The peak resident set size (`VmHWM`) of the current process in bytes,
/// read from `/proc/self/status`.  Returns `None` off Linux (the procfs
/// read simply fails) or when the field is missing or malformed.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts `VmHWM` from a `/proc/<pid>/status` document.  The kernel
/// reports the value in kibibytes (`VmHWM:   123456 kB`) and the unit is
/// parsed explicitly: a unitless value or an unexpected unit yields `None`
/// rather than a silently misscaled byte count.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let mut fields = line.trim_start_matches("VmHWM:").split_whitespace();
    let value: u64 = fields.next()?.parse().ok()?;
    let unit = fields.next()?;
    if fields.next().is_some() || unit != "kB" {
        return None;
    }
    value.checked_mul(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_format() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(123456 * 1024));
    }

    #[test]
    fn missing_or_malformed_fields_yield_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmPeak:\t 1 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[test]
    fn unitless_values_are_rejected_not_misscaled() {
        assert_eq!(parse_vm_hwm("VmHWM:\t  123456\n"), None);
    }

    #[test]
    fn unknown_units_are_rejected() {
        assert_eq!(parse_vm_hwm("VmHWM:\t  123456 MB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t  123456 KiB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\t  123456 kB extra\n"), None);
    }

    #[test]
    fn overflowing_values_are_rejected_not_wrapped() {
        let status = format!("VmHWM:\t  {} kB\n", u64::MAX);
        assert_eq!(parse_vm_hwm(&status), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_readout_reports_a_positive_peak() {
        let peak = peak_rss_bytes().expect("Linux exposes /proc/self/status");
        assert!(peak > 0);
    }
}
