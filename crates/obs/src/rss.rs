//! Process RSS readouts (peak and current) for the bench summaries and the
//! serving tier's memory gates.

/// The peak resident set size (`VmHWM`) of the current process in bytes,
/// read from `/proc/self/status`.  Returns `None` off Linux (the procfs
/// read simply fails) or when the field is missing or malformed.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_kb_field(&status, "VmHWM:")
}

/// The *current* resident set size (`VmRSS`) of the process in bytes, from
/// the same procfs document.  Unlike [`peak_rss_bytes`] this can go down
/// again, which is what before/after deltas (e.g. "N tenants cost O(deltas)
/// memory") need; same `None` semantics off Linux.
pub fn current_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_kb_field(&status, "VmRSS:")
}

/// Extracts a kB-denominated field from a `/proc/<pid>/status` document.
/// The kernel reports values in kibibytes (`VmHWM:   123456 kB`) and the
/// unit is parsed explicitly: a unitless value or an unexpected unit yields
/// `None` rather than a silently misscaled byte count.
fn parse_kb_field(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    let mut fields = line.trim_start_matches(field).split_whitespace();
    let value: u64 = fields.next()?.parse().ok()?;
    let unit = fields.next()?;
    if fields.next().is_some() || unit != "kB" {
        return None;
    }
    value.checked_mul(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_format() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t1\n";
        assert_eq!(parse_kb_field(status, "VmHWM:"), Some(123456 * 1024));
    }

    #[test]
    fn fields_are_selected_independently() {
        let status = "VmHWM:\t  2048 kB\nVmRSS:\t  1024 kB\n";
        assert_eq!(parse_kb_field(status, "VmHWM:"), Some(2048 * 1024));
        assert_eq!(parse_kb_field(status, "VmRSS:"), Some(1024 * 1024));
    }

    #[test]
    fn missing_or_malformed_fields_yield_none() {
        assert_eq!(parse_kb_field("", "VmHWM:"), None);
        assert_eq!(parse_kb_field("VmPeak:\t 1 kB\n", "VmHWM:"), None);
        assert_eq!(parse_kb_field("VmHWM:\tnot-a-number kB\n", "VmHWM:"), None);
        assert_eq!(parse_kb_field("VmHWM:\t 1 kB\n", "VmRSS:"), None);
    }

    #[test]
    fn unitless_values_are_rejected_not_misscaled() {
        assert_eq!(parse_kb_field("VmHWM:\t  123456\n", "VmHWM:"), None);
    }

    #[test]
    fn unknown_units_are_rejected() {
        assert_eq!(parse_kb_field("VmHWM:\t  123456 MB\n", "VmHWM:"), None);
        assert_eq!(parse_kb_field("VmHWM:\t  123456 KiB\n", "VmHWM:"), None);
        assert_eq!(
            parse_kb_field("VmHWM:\t  123456 kB extra\n", "VmHWM:"),
            None
        );
    }

    #[test]
    fn overflowing_values_are_rejected_not_wrapped() {
        let status = format!("VmHWM:\t  {} kB\n", u64::MAX);
        assert_eq!(parse_kb_field(&status, "VmHWM:"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_readout_reports_a_positive_peak() {
        let peak = peak_rss_bytes().expect("Linux exposes /proc/self/status");
        assert!(peak > 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_readout_reports_a_current_rss_no_larger_than_the_peak() {
        let current = current_rss_bytes().expect("Linux exposes /proc/self/status");
        let peak = peak_rss_bytes().expect("Linux exposes /proc/self/status");
        assert!(current > 0);
        assert!(current <= peak);
    }
}
