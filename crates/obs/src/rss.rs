//! Process peak-RSS readout for the bench summaries.

/// The peak resident set size (`VmHWM`) of the current process in bytes,
/// read from `/proc/self/status`.  Returns `None` off Linux (the procfs
/// read simply fails) or when the field is missing or malformed.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Extracts `VmHWM` from a `/proc/<pid>/status` document.  The kernel
/// reports the value in kibibytes (`VmHWM:   123456 kB`).
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_kernel_format() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nThreads:\t1\n";
        assert_eq!(parse_vm_hwm(status), Some(123456 * 1024));
    }

    #[test]
    fn missing_or_malformed_fields_yield_none() {
        assert_eq!(parse_vm_hwm(""), None);
        assert_eq!(parse_vm_hwm("VmPeak:\t 1 kB\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_readout_reports_a_positive_peak() {
        let peak = peak_rss_bytes().expect("Linux exposes /proc/self/status");
        assert!(peak > 0);
    }
}
