//! Point-in-time telemetry snapshots and their JSON form.
//!
//! [`TelemetrySnapshot`] is a plain owned struct: no atomics, no `Arc`s, no
//! lifetimes — safe to move across threads, diff against another snapshot,
//! or serialize.  The JSON is hand-rolled (the offline workspace has no
//! `serde_json`) in the same style as `imdpp_bench::BenchSummary`:
//!
//! ```json
//! {
//!   "counters": { "engine.applies": 3 },
//!   "gauges": { "engine.epoch": 3 },
//!   "histograms": {
//!     "engine.apply_ns": {
//!       "count": 3, "sum": 1964033, "max": 812249,
//!       "p50": 524287, "p90": 1048575, "p99": 812249,
//!       "buckets": [[20, 2], [21, 1]]
//!     }
//!   }
//! }
//! ```

use std::io::Write as _;
use std::path::Path;

/// One histogram's state at snapshot time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The registered metric name.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
    /// Median estimate (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 90th-percentile estimate (bucket upper bound, clamped to `max`).
    pub p90: u64,
    /// 99th-percentile estimate (bucket upper bound, clamped to `max`).
    pub p99: u64,
    /// The non-empty `(bucket index, count)` pairs in index order; bucket
    /// `k ≥ 1` covers `[2^(k-1), 2^k - 1]` and bucket `0` covers `{0}`.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Every registered metric of one [`crate::Telemetry`] at one moment, with
/// names sorted ascending within each kind.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[must_use = "a snapshot is a point-in-time read; dropping it unread wastes the registry pass"]
pub struct TelemetrySnapshot {
    /// `(name, total)` per registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per registered gauge.
    pub gauges: Vec<(String, u64)>,
    /// One entry per registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// The total of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when no metric is registered (always the case for snapshots of
    /// a disabled registry).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        push_map(&mut out, "counters", &self.counters, true);
        push_map(&mut out, "gauges", &self.gauges, true);
        out.push_str("  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {{ ", escape(&h.name)));
            out.push_str(&format!(
                "\"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                h.count, h.sum, h.max, h.p50, h.p90, h.p99
            ));
            for (j, (bucket, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{bucket}, {count}]"));
            }
            out.push_str("] }");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes [`TelemetrySnapshot::to_json`] to `path`, creating parent
    /// directories as needed.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Appends `"key": { "name": value, ... },` to `out`.
fn push_map(out: &mut String, key: &str, entries: &[(String, u64)], trailing_comma: bool) {
    out.push_str(&format!("  \"{key}\": {{"));
    for (i, (name, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{}\": {value}", escape(name)));
    }
    if !entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
    if trailing_comma {
        out.push(',');
    }
    out.push('\n');
}

/// Escapes the characters JSON string literals cannot carry raw.
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.counter("b.count").add(2);
        t.counter("a.count").add(1);
        t.gauge("epoch").set(7);
        t.histogram("lat_ns").record(3);
        t.histogram("lat_ns").record(900);
        t.snapshot()
    }

    #[test]
    fn snapshot_sorts_names_and_answers_lookups() {
        let snap = sample();
        assert_eq!(
            snap.counters,
            vec![("a.count".to_string(), 1), ("b.count".to_string(), 2)]
        );
        assert_eq!(snap.gauge("epoch"), Some(7));
        let h = snap.histogram("lat_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 903);
        assert!((h.mean() - 451.5).abs() < 1e-12);
        assert!(!snap.is_empty());
    }

    #[test]
    fn json_contains_every_section() {
        let json = sample().to_json();
        assert!(json.contains("\"counters\": {"));
        assert!(json.contains("\"a.count\": 1"));
        assert!(json.contains("\"gauges\": {"));
        assert!(json.contains("\"epoch\": 7"));
        assert!(json.contains("\"lat_ns\": { \"count\": 2, \"sum\": 903"));
        assert!(json.contains("\"buckets\": [[2, 1], [10, 1]]"));
        // Balanced braces and brackets — a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn empty_snapshot_serializes_to_empty_maps() {
        let json = TelemetrySnapshot::default().to_json();
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn write_to_creates_parent_directories() {
        let dir = std::env::temp_dir().join("imdpp-obs-snapshot-test");
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("nested").join("metrics.json");
        sample().write_to(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert!(read.contains("\"epoch\": 7"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
