//! The shared base-2 histogram cell behind [`crate::Histogram`] handles.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::snapshot::HistogramSnapshot;

/// Bucket `0` holds the value `0`; bucket `k ≥ 1` holds `[2^(k-1), 2^k - 1]`.
/// 65 buckets cover the whole `u64` range.
pub(crate) const NUM_BUCKETS: usize = 65;

/// The bucket index of `value`: the bit width of `value` (0 for 0).
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The largest value bucket `index` can hold.
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// The lock-free histogram cell: per-bucket counts plus exact sum / max,
/// all maintained with relaxed atomics (recording order carries no
/// meaning; totals are exact because every op is a read-modify-write).
/// The observation count is not stored — every record increments exactly
/// one bucket, so readers derive it as the bucket-count sum, keeping the
/// hot record path at three atomic ops.
#[derive(Debug)]
pub(crate) struct HistCell {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistCell {
    fn default() -> Self {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl HistCell {
    #[inline]
    pub(crate) fn record(&self, value: u64) {
        // lint: allow(atomic-ordering) — each cell is an independent
        // statistic; no cross-cell invariant needs publishing, so relaxed
        // RMWs suffice (the documented obs policy).
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // lint: allow(atomic-ordering) — independent statistic, see above.
        self.sum.fetch_add(value, Ordering::Relaxed);
        // lint: allow(atomic-ordering) — independent statistic, see above.
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        // lint: allow(atomic-ordering) — monotone counters; a torn
        // cross-bucket view only ever under-counts in-flight records.
        self.buckets.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy with the quantiles resolved from the bucket
    /// counts.  A quantile reports its bucket's upper bound clamped to the
    /// observed maximum, so `p50 ≤ p90 ≤ p99 ≤ max` always holds and the
    /// relative error stays within the 2× bucket width.
    pub(crate) fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<(u8, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                // lint: allow(atomic-ordering) — snapshots are advisory; a
                // concurrent record may or may not be included, and relaxed
                // loads of monotone cells never invent values.
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some((i as u8, count))
            })
            .collect();
        let count: u64 = buckets.iter().map(|&(_, c)| c).sum();
        // lint: allow(atomic-ordering) — advisory snapshot read, see above.
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // The rank of the q-quantile observation, 1-based.
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0;
            for &(index, c) in &buckets {
                seen += c;
                if seen >= target {
                    return bucket_upper_bound(index as usize).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            // lint: allow(atomic-ordering) — advisory snapshot read, see above.
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every bucket k ≥ 1 spans exactly [2^(k-1), 2^k - 1].
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "lower edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "upper edge of bucket {k}");
            assert_eq!(bucket_upper_bound(k), hi);
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn snapshot_reports_exact_count_sum_max() {
        let cell = HistCell::default();
        for v in [0u64, 1, 1, 3, 900] {
            cell.record(v);
        }
        let snap = cell.snapshot("h");
        assert_eq!(snap.name, "h");
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 905);
        assert_eq!(snap.max, 900);
        // 0 → bucket 0; the two 1s → bucket 1; 3 → bucket 2; 900 → bucket 10.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 2), (2, 1), (10, 1)]);
    }

    #[test]
    fn quantiles_walk_the_buckets_and_clamp_to_max() {
        let cell = HistCell::default();
        // 98 small values and 2 large ones.
        for _ in 0..98 {
            cell.record(5); // bucket 3, upper bound 7
        }
        cell.record(1000); // bucket 10
        cell.record(1500); // bucket 11, upper bound 2047 — clamped to max
        let snap = cell.snapshot("h");
        assert_eq!(snap.p50, 7);
        assert_eq!(snap.p90, 7);
        assert_eq!(snap.p99, 1023);
        assert_eq!(snap.max, 1500);
        assert!(snap.p50 <= snap.p90 && snap.p90 <= snap.p99 && snap.p99 <= snap.max);

        // A single observation pins every quantile to the max.
        let one = HistCell::default();
        one.record(42);
        let snap = one.snapshot("one");
        assert_eq!((snap.p50, snap.p90, snap.p99), (42, 42, 42));

        // Empty histograms report zeros.
        let empty = HistCell::default().snapshot("empty");
        assert_eq!((empty.count, empty.p50, empty.p99, empty.max), (0, 0, 0, 0));
    }
}
