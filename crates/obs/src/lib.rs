//! # imdpp-obs
//!
//! Zero-dependency telemetry for the IMDPP suite: lock-free atomic
//! counters, fixed-bucket base-2 latency histograms, gauge cells and a
//! span-timer RAII guard, all hanging off a cloneable [`Telemetry`]
//! registry.
//!
//! ## Design
//!
//! * **Registration is rare, recording is hot.**  [`Telemetry::counter`] /
//!   [`Telemetry::gauge`] / [`Telemetry::histogram`] take a `Mutex` once to
//!   intern the metric by name and hand back a cheap cloneable handle; every
//!   subsequent [`Counter::add`] / [`Histogram::record`] is a single relaxed
//!   atomic op on the shared cell — safe to call from shard workers.
//! * **Disabled mode costs one branch.**  [`Telemetry::disabled`] carries no
//!   registry at all; handles resolved from it hold `None` and every record
//!   call is one `Option` test.  [`Histogram::start`] on a disabled handle
//!   never even reads the clock.
//! * **Telemetry never feeds the RNG or alters control flow.**  The suite's
//!   determinism invariant — semantic counters bit-identical across the
//!   shards × threads grid — holds *through* this crate because recording
//!   only ever folds values into atomics; nothing downstream reads them.
//!
//! ## Example
//!
//! ```
//! use imdpp_obs::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! let solves = telemetry.counter("engine.solves");
//! let latency = telemetry.histogram("engine.solve_ns");
//!
//! {
//!     let _span = latency.start(); // records on drop
//!     solves.incr();
//! }
//!
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("engine.solves"), Some(1));
//! assert_eq!(snap.histogram("engine.solve_ns").unwrap().count, 1);
//! assert!(snap.to_json().starts_with('{'));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod hist;
mod rss;
mod snapshot;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hist::HistCell;

pub use rss::{current_rss_bytes, peak_rss_bytes};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};

/// The environment variable naming a file path to dump a
/// [`TelemetrySnapshot`] to (see [`metrics_env_path`]).
pub const METRICS_ENV: &str = "IMDPP_METRICS";

/// The metrics dump path requested via the `IMDPP_METRICS` environment
/// variable, if set and non-empty.  Harnesses call this once per run and
/// pair it with [`TelemetrySnapshot::write_to`].
pub fn metrics_env_path() -> Option<std::path::PathBuf> {
    match std::env::var(METRICS_ENV) {
        Ok(path) if !path.is_empty() => Some(std::path::PathBuf::from(path)),
        _ => None,
    }
}

/// The interned metric cells, keyed by name.  Maps hold `Arc`s to the cells
/// so handles can record without touching the registry lock again.
#[derive(Debug, Default)]
struct Inner {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistCell>>>,
}

/// A cloneable telemetry registry.
///
/// Clones share one set of metric cells ([`Telemetry`] is a shallow `Arc`
/// handle), so a registry threaded through the engine, the sketch and the
/// shard workers aggregates into a single [`TelemetrySnapshot`].  The
/// [`Telemetry::disabled`] form carries no registry; see the crate docs for
/// the cost model.  `Default` is the *live* form ([`Telemetry::new`]) —
/// opting out of recording is always explicit.
#[derive(Clone, Debug)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A live registry: handles resolved from it record for real.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op registry: every handle resolved from it is a no-op whose
    /// record path is a single branch, and [`Telemetry::snapshot`] is empty.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Resolves (registering on first use) the monotonic counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut map = inner.counters.lock().expect("telemetry registry poisoned");
            Arc::clone(map.entry(name).or_default())
        }))
    }

    /// Resolves (registering on first use) the last-value gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut map = inner.gauges.lock().expect("telemetry registry poisoned");
            Arc::clone(map.entry(name).or_default())
        }))
    }

    /// Resolves (registering on first use) the base-2 histogram `name`.
    /// Values are whatever unit the recorder chooses; latency metrics in the
    /// suite record nanoseconds (and are named `*_ns`).
    pub fn histogram(&self, name: &'static str) -> Histogram {
        Histogram(self.inner.as_ref().map(|inner| {
            let mut map = inner
                .histograms
                .lock()
                .expect("telemetry registry poisoned");
            Arc::clone(map.entry(name).or_default())
        }))
    }

    /// A consistent-enough point-in-time copy of every registered metric
    /// (values are read with relaxed ordering; concurrent recorders may or
    /// may not be included).  Disabled registries snapshot empty.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let Some(inner) = &self.inner else {
            return TelemetrySnapshot::default();
        };
        let read_map = |map: &Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>| {
            map.lock()
                .expect("telemetry registry poisoned")
                .iter()
                // lint: allow(atomic-ordering) — snapshot of independent
                // cells; the registry lock orders the map itself, and a
                // relaxed load of each monotone cell never invents values.
                .map(|(&name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
                .collect()
        };
        TelemetrySnapshot {
            counters: read_map(&inner.counters),
            gauges: read_map(&inner.gauges),
            histograms: inner
                .histograms
                .lock()
                .expect("telemetry registry poisoned")
                .iter()
                .map(|(&name, cell)| cell.snapshot(name))
                .collect(),
        }
    }
}

/// A monotonic counter handle; cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter (what a disabled registry resolves to).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            // lint: allow(atomic-ordering) — independent monotone counter;
            // nothing is published through it, so a relaxed RMW suffices.
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total (0 on a no-op handle).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            // lint: allow(atomic-ordering) — advisory read of a monotone
            // counter; relaxed loads never invent values.
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-value gauge handle; cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge (what a disabled registry resolves to).
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            // lint: allow(atomic-ordering) — last-writer-wins gauge; no
            // other memory is published through the store.
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// The current value (0 on a no-op handle).
    pub fn value(&self) -> u64 {
        self.0
            .as_ref()
            // lint: allow(atomic-ordering) — advisory read of a
            // last-writer-wins gauge.
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A base-2 histogram handle; cloning shares the cell.
///
/// Bucket `0` holds the value `0` and bucket `k ≥ 1` holds
/// `[2^(k-1), 2^k - 1]`, so 65 buckets cover the whole `u64` range with
/// ≤ 2× relative quantile error — plenty for latency distributions.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistCell>>);

impl Histogram {
    /// A detached no-op histogram (what a disabled registry resolves to).
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.record(value);
        }
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Starts a span whose elapsed nanoseconds are recorded when the guard
    /// drops.  On a no-op handle the clock is never read.  The guard borrows
    /// this handle (no refcount traffic on the hot path), so the handle must
    /// outlive the span — which it does naturally when handles live in a
    /// metrics struct and spans are method-scoped.
    #[must_use = "the span records on drop; binding it to `_` drops immediately"]
    pub fn start(&self) -> SpanTimer<'_> {
        SpanTimer {
            span: self.0.as_deref().map(|cell| (Instant::now(), cell)),
        }
    }

    /// Number of recorded observations (0 on a no-op handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |cell| cell.count())
    }
}

/// RAII guard started by [`Histogram::start`]: records the span's elapsed
/// nanoseconds into the histogram when dropped.
#[derive(Debug)]
pub struct SpanTimer<'a> {
    span: Option<(Instant, &'a HistCell)>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some((started, cell)) = self.span.take() {
            cell.record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let t = Telemetry::new();
        assert!(t.is_enabled());
        let c = t.counter("c");
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
        // Re-resolving by name shares the cell; so does cloning the handle.
        t.counter("c").add(1);
        c.clone().add(1);
        assert_eq!(c.value(), 7);

        let g = t.gauge("g");
        g.set(9);
        g.set(3);
        assert_eq!(g.value(), 3);

        let snap = t.snapshot();
        assert_eq!(snap.counter("c"), Some(7));
        assert_eq!(snap.gauge("g"), Some(3));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::new();
        let c = t.clone().counter("shared");
        c.add(2);
        assert_eq!(t.snapshot().counter("shared"), Some(2));
    }

    #[test]
    fn default_is_the_live_registry() {
        let t = Telemetry::default();
        assert!(t.is_enabled());
        t.counter("c").incr();
        assert_eq!(t.snapshot().counter("c"), Some(1));
    }

    #[test]
    fn disabled_registry_is_a_no_op() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("c");
        let g = t.gauge("g");
        let h = t.histogram("h");
        c.add(10);
        g.set(10);
        h.record(10);
        drop(h.start());
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        let snap = t.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.counter("c"), None);
    }

    #[test]
    fn noop_handles_match_disabled_resolution() {
        Counter::noop().incr();
        Gauge::noop().set(1);
        Histogram::noop().record(1);
        assert_eq!(Counter::noop().value(), 0);
        assert_eq!(Histogram::noop().count(), 0);
        // Default handles are no-ops too.
        Counter::default().incr();
        assert_eq!(Counter::default().value(), 0);
    }

    #[test]
    fn span_timer_records_elapsed_nanos() {
        let t = Telemetry::new();
        let h = t.histogram("span_ns");
        {
            let _span = h.start();
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = t.snapshot();
        let hist = snap.histogram("span_ns").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.sum >= 1_000_000, "slept ≥ 1ms, recorded {}", hist.sum);
        assert!(hist.max >= 1_000_000);
    }

    #[test]
    fn record_duration_uses_nanoseconds() {
        let t = Telemetry::new();
        let h = t.histogram("d");
        h.record_duration(Duration::from_micros(3));
        assert_eq!(t.snapshot().histogram("d").unwrap().sum, 3_000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let t = Telemetry::new();
        let threads = 8;
        let per_thread = 10_000u64;
        // lint: allow(spawn) — test harness threads hammering the registry;
        // no engine work is scheduled here.
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = t.counter("hits");
                let h = t.histogram("vals");
                scope.spawn(move || {
                    for i in 0..per_thread {
                        c.incr();
                        h.record(i);
                    }
                });
            }
        });
        let snap = t.snapshot();
        let total = threads * per_thread;
        assert_eq!(snap.counter("hits"), Some(total));
        let hist = snap.histogram("vals").unwrap();
        assert_eq!(hist.count, total);
        assert_eq!(hist.max, per_thread - 1);
        assert_eq!(
            hist.sum,
            threads * (per_thread * (per_thread - 1) / 2),
            "per-bucket sums must not lose concurrent increments"
        );
    }

    #[test]
    fn metrics_env_path_requires_a_non_empty_value() {
        // Process-global env: run all three cases in one test body.
        std::env::remove_var(METRICS_ENV);
        assert_eq!(metrics_env_path(), None);
        std::env::set_var(METRICS_ENV, "");
        assert_eq!(metrics_env_path(), None);
        std::env::set_var(METRICS_ENV, "/tmp/metrics.json");
        assert_eq!(
            metrics_env_path(),
            Some(std::path::PathBuf::from("/tmp/metrics.json"))
        );
        std::env::remove_var(METRICS_ENV);
    }
}
