//! Declarative description of a synthetic dataset.

use imdpp_diffusion::ImdppError;
use serde::{Deserialize, Serialize};

/// The random-graph model used for the friendship topology.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SocialModel {
    /// Preferential attachment with the given number of links per new node
    /// (heavy-tailed degrees, the default for the Table II datasets).
    PreferentialAttachment {
        /// Edges attached by each arriving node.
        links_per_node: usize,
    },
    /// Watts–Strogatz small world (used for the dense course classes).
    SmallWorld {
        /// Even number of lattice neighbours.
        neighbours: usize,
        /// Rewiring probability.
        rewire: f64,
    },
    /// Erdős–Rényi with the given edge probability.
    Random {
        /// Edge probability.
        edge_probability: f64,
    },
}

/// Distribution of the item importances `w_x` (Table II reports the average).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ImportanceDistribution {
    /// Every item has the same importance.
    Uniform {
        /// The shared importance value.
        value: f64,
    },
    /// Log-normal-like prices (Douban / Yelp / Amazon use website prices);
    /// importances are `exp(mu + sigma · z)` with `z ~ N(0, 1)`, clamped to
    /// `[0.05, 20]`.
    LogNormal {
        /// Location parameter of the underlying normal.
        mu: f64,
        /// Scale parameter of the underlying normal.
        sigma: f64,
    },
    /// Uniformly random in `[lo, hi]` (Gowalla's importances are random in
    /// the paper because the website is offline).
    Range {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

/// Full synthetic dataset description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Human-readable dataset name.
    pub name: String,
    /// Number of users.
    pub users: usize,
    /// Number of items.
    pub items: usize,
    /// Whether friendships are directed (Amazon+Pokec) or undirected.
    pub directed_friendships: bool,
    /// Friendship topology model.
    pub social_model: SocialModel,
    /// Target average initial influence strength (Table II row).
    pub avg_influence_strength: f64,
    /// Item importance distribution (Table II's "avg. item importance").
    pub importance: ImportanceDistribution,
    /// Number of feature nodes in the KG.
    pub kg_features: usize,
    /// Number of brand nodes in the KG.
    pub kg_brands: usize,
    /// Number of category nodes in the KG.
    pub kg_categories: usize,
    /// Number of keyword nodes in the KG.
    pub kg_keywords: usize,
    /// Average number of features attached to each item.
    pub features_per_item: usize,
    /// Average number of keywords attached to each item.
    pub keywords_per_item: usize,
    /// Fraction of item pairs receiving an explicit `RelatedTo` fact
    /// ("also bought" style edges).
    pub related_pair_fraction: f64,
    /// Range of the initial user preferences `P_pref(u, x, 0)`.
    pub base_preference_range: (f64, f64),
    /// Scale of the hiring-cost model (`c ∝ scale · degree / preference`).
    pub cost_scale: f64,
    /// Uniform initial meta-graph weighting.
    pub initial_metagraph_weight: f64,
    /// Random seed controlling every generated component.
    pub seed: u64,
}

impl DatasetConfig {
    /// Basic validation of ranges and sizes.
    pub fn validate(&self) -> Result<(), ImdppError> {
        if self.users == 0 || self.items == 0 {
            return Err(ImdppError::invalid("users and items must be positive"));
        }
        if !(0.0..=1.0).contains(&self.avg_influence_strength) {
            return Err(ImdppError::OutOfRange {
                name: "avg_influence_strength",
                value: self.avg_influence_strength,
                min: 0.0,
                max: 1.0,
            });
        }
        let (lo, hi) = self.base_preference_range;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return Err(ImdppError::invalid(
                "base_preference_range must be a sub-range of [0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.related_pair_fraction) {
            return Err(ImdppError::OutOfRange {
                name: "related_pair_fraction",
                value: self.related_pair_fraction,
                min: 0.0,
                max: 1.0,
            });
        }
        if self.cost_scale <= 0.0 {
            return Err(ImdppError::invalid("cost_scale must be positive"));
        }
        Ok(())
    }

    /// Returns a copy with a different scale (users and items multiplied by
    /// `factor`, with minimums of 20 users and 5 items).  Used by the
    /// experiment harness's `--scale` flag.
    pub fn scaled(&self, factor: f64) -> DatasetConfig {
        let mut c = self.clone();
        // Entity pools that are absent (0) in the preset stay absent so that
        // the KG keeps its node-type mix at any scale.
        let scale_pool = |count: usize, min: usize| -> usize {
            if count == 0 {
                0
            } else {
                ((count as f64 * factor).round() as usize).max(min)
            }
        };
        c.users = ((self.users as f64 * factor).round() as usize).max(20);
        c.items = ((self.items as f64 * factor).round() as usize).max(5);
        c.kg_features = scale_pool(self.kg_features, 3);
        c.kg_brands = scale_pool(self.kg_brands, 2);
        c.kg_categories = scale_pool(self.kg_categories, 2);
        c.kg_keywords = scale_pool(self.kg_keywords, 2);
        c
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog::DatasetKind;

    #[test]
    fn presets_validate() {
        for kind in DatasetKind::all() {
            kind.config().validate().unwrap();
        }
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        let mut c = DatasetKind::YelpSmall.config();
        c.avg_influence_strength = 1.5;
        assert!(c.validate().is_err());
        let mut c = DatasetKind::YelpSmall.config();
        c.base_preference_range = (0.9, 0.1);
        assert!(c.validate().is_err());
        let mut c = DatasetKind::YelpSmall.config();
        c.users = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaling_preserves_minimums() {
        let c = DatasetKind::AmazonTiny.config().scaled(0.001);
        assert!(c.users >= 20);
        assert!(c.items >= 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaling_up_multiplies_sizes() {
        let base = DatasetKind::YelpSmall.config();
        let big = base.scaled(2.0);
        assert_eq!(big.users, base.users * 2);
        assert_eq!(big.items, base.items * 2);
    }
}
